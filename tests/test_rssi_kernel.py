"""Bit-for-bit equivalence of the vectorized RSSI substrate, plus the
O(1) event-count and counter-lifecycle regressions that rode along.

The batched radio APIs (``mean_rssi_many``, ``sample_rssi_batch``,
``average_rssi_grid``, ``walls_crossed_many``) are pure optimizations:
every test here compares them against the scalar reference paths with
``==`` on raw float64 values — no tolerances — across all three
testbeds and several seeds.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.config import VoiceGuardConfig
from repro.core.events import GuardLog
from repro.core.recognition import SpeakerProfile, TrafficRecognition
from repro.net.addresses import IPv4Address, endpoint
from repro.net.packet import Packet, Protocol, next_packet_number, reset_packet_numbers
from repro.net.proxy import ProxiedFlow
from repro.radio.propagation import PropagationModel
from repro.radio.testbeds import testbed_by_name as build_testbed
from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator

# Exhaustive bit-for-bit sweeps over testbeds x seeds: nightly material.
pytestmark = pytest.mark.slow

TESTBEDS = ("house", "apartment", "office")
SEEDS = (3, 7, 11)


def grid_points(testbed):
    return [mp.point for _, mp in sorted(testbed.plan.points.items())]


# -- deterministic kernel ---------------------------------------------------
class TestMeanRssiEquivalence:
    @pytest.mark.parametrize("name", TESTBEDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_memoized_equals_uncached(self, name, seed):
        testbed = build_testbed(name)
        model = PropagationModel(testbed.plan, seed=seed)
        tx = testbed.speaker_point(0)
        for rx in grid_points(testbed):
            first = model.mean_rssi(tx, rx)
            assert first == model.mean_rssi_uncached(tx, rx)
            assert first == model.mean_rssi(tx, rx)  # memo hit

    @pytest.mark.parametrize("name", TESTBEDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_many_equals_scalar(self, name, seed):
        testbed = build_testbed(name)
        model = PropagationModel(testbed.plan, seed=seed)
        tx = testbed.speaker_point(0)
        points = grid_points(testbed)
        batched = model.mean_rssi_many(tx, points)
        fresh = PropagationModel(testbed.plan, seed=seed)
        scalar = [fresh.mean_rssi(tx, rx) for rx in points]
        assert [float(v) for v in batched] == scalar

    def test_many_mixes_cached_and_missing(self):
        testbed = build_testbed("house")
        model = PropagationModel(testbed.plan, seed=5)
        tx = testbed.speaker_point(0)
        points = grid_points(testbed)
        warm = [model.mean_rssi(tx, rx) for rx in points[::3]]  # every third
        batched = model.mean_rssi_many(tx, points)
        assert [float(v) for v in batched[::3]] == warm
        fresh = PropagationModel(testbed.plan, seed=5)
        assert [float(v) for v in batched] == [
            fresh.mean_rssi(tx, rx) for rx in points
        ]

    def test_caches_invalidate_when_plan_changes(self):
        testbed = build_testbed("house")
        plan = testbed.plan
        model = PropagationModel(plan, seed=5)
        tx = testbed.speaker_point(0)
        rx = grid_points(testbed)[-1]
        before = model.mean_rssi(tx, rx)
        version = plan.version
        wall = plan.add_wall(
            ((tx.x + rx.x) / 2 - 5.0, (tx.y + rx.y) / 2),
            ((tx.x + rx.x) / 2 + 5.0, (tx.y + rx.y) / 2),
            floor=0,
        )
        try:
            assert plan.version > version
            after = model.mean_rssi(tx, rx)
            assert after == model.mean_rssi_uncached(tx, rx)
            # The new wall may or may not cross this exact path, but a
            # stale memo returning ``before`` without recomputing would
            # be indistinguishable — so check the crossing count too.
            assert plan.walls_crossed(tx, rx) == plan.walls_crossed_scalar(tx, rx)
            assert isinstance(after, float) and after >= model.params.rssi_floor
        finally:
            plan.walls.remove(wall)
            plan._invalidate_geometry()
        assert model.mean_rssi(tx, rx) == before


class TestWallCrossingEquivalence:
    @pytest.mark.parametrize("name", TESTBEDS)
    def test_many_equals_scalar_loop(self, name):
        testbed = build_testbed(name)
        plan = testbed.plan
        tx = testbed.speaker_point(0)
        points = grid_points(testbed)
        counts = plan.walls_crossed_many(tx, points)
        assert [int(c) for c in counts] == [
            plan.walls_crossed_scalar(tx, rx) for rx in points
        ]
        # The memoized scalar entry point agrees and now hits the cache.
        assert [plan.walls_crossed(tx, rx) for rx in points] == [
            int(c) for c in counts
        ]

    @pytest.mark.parametrize("name", TESTBEDS)
    def test_cross_floor_and_door_paths(self, name):
        testbed = build_testbed(name)
        plan = testbed.plan
        points = grid_points(testbed)
        # Every pair among a spread of grid points, both directions.
        subset = points[:: max(1, len(points) // 8)]
        for a in subset:
            for b in subset:
                assert plan.walls_crossed_scalar(a, b) == int(
                    plan.wall_array.crossing_mask(a, b).sum()
                )


# -- sampled kernel ---------------------------------------------------------
class TestSampledEquivalence:
    @pytest.mark.parametrize("name", TESTBEDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sample_batch_matches_scalar_stream(self, name, seed):
        testbed = build_testbed(name)
        model = PropagationModel(testbed.plan, seed=seed)
        tx = testbed.speaker_point(0)
        rx = grid_points(testbed)[len(grid_points(testbed)) // 2]
        blocked = [True, True, False, True, False, False, False, True, False]
        scalar_rng = np.random.default_rng(seed + 100)
        scalar = [
            model.sample_rssi(tx, rx, scalar_rng, body_blocked=flag)
            for flag in blocked
        ]
        batch_rng = np.random.default_rng(seed + 100)
        batch = model.sample_rssi_batch(tx, rx, batch_rng, blocked)
        assert scalar == [float(v) for v in batch]
        # Both consumed the same stretch of the bitstream.
        assert scalar_rng.integers(1 << 30) == batch_rng.integers(1 << 30)

    def test_sample_batch_empty(self):
        testbed = build_testbed("house")
        model = PropagationModel(testbed.plan, seed=1)
        tx = testbed.speaker_point(0)
        out = model.sample_rssi_batch(tx, tx, np.random.default_rng(0), [])
        assert out.shape == (0,)

    @pytest.mark.parametrize("name", TESTBEDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_average_batch_matches_scalar(self, name, seed):
        testbed = build_testbed(name)
        model = PropagationModel(testbed.plan, seed=seed)
        tx = testbed.speaker_point(0)
        for rx in grid_points(testbed)[::7]:
            scalar = model.average_rssi(tx, rx, np.random.default_rng(seed))
            batch = model.average_rssi_batch(tx, rx, np.random.default_rng(seed))
            assert scalar == batch

    @pytest.mark.parametrize("name", TESTBEDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_average_grid_matches_scalar_loop(self, name, seed):
        testbed = build_testbed(name)
        tx = testbed.speaker_point(0)
        points = grid_points(testbed)
        scalar_model = PropagationModel(testbed.plan, seed=seed)
        scalar_rng = np.random.default_rng(seed + 1)
        scalar = [
            scalar_model.average_rssi(tx, rx, scalar_rng) for rx in points
        ]
        grid_model = PropagationModel(testbed.plan, seed=seed)
        grid = grid_model.average_rssi_grid(
            tx, points, np.random.default_rng(seed + 1)
        )
        assert scalar == [float(v) for v in grid]

    def test_average_rejects_bad_sample_counts(self):
        testbed = build_testbed("house")
        model = PropagationModel(testbed.plan, seed=1)
        tx = testbed.speaker_point(0)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            model.average_rssi(tx, tx, rng, samples=0)
        with pytest.raises(ValueError):
            model.average_rssi_batch(tx, tx, rng, samples=0)
        with pytest.raises(ValueError):
            model.average_rssi_grid(tx, [tx], rng, samples=0)


# -- event queue: O(1) live count ------------------------------------------
class TestEventQueueLiveCount:
    def test_len_tracks_push_pop_cancel(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(10)]
        assert len(queue) == 10
        handles[3].cancel()
        handles[7].cancel()
        assert len(queue) == 8
        handles[3].cancel()  # idempotent
        assert len(queue) == 8
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            popped.append(event.time)
        assert len(popped) == 8
        assert 3.0 not in popped and 7.0 not in popped
        assert len(queue) == 0

    def test_cancel_after_pop_does_not_double_count(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.pop().time == 1.0
        first.cancel()  # already left the heap: must not decrement again
        assert len(queue) == 1
        assert queue.pop().time == 2.0
        assert len(queue) == 0

    def test_len_matches_heap_scan(self):
        rng = np.random.default_rng(42)
        queue = EventQueue()
        handles = []
        for step in range(500):
            action = rng.integers(3)
            if action == 0 or not handles:
                handles.append(queue.push(float(rng.integers(100)), lambda: None))
            elif action == 1:
                handles[int(rng.integers(len(handles)))].cancel()
            else:
                queue.pop()
            # Entries are (time, seq, event) tuples; handle-free post()
            # entries carry None and are always live.
            live_scan = sum(
                1
                for entry in queue._heap
                if entry[2] is None or not entry[2].cancelled
            )
            assert len(queue) == live_scan

    def test_pending_events_is_constant_time(self):
        sim = Simulator()
        for i in range(5000):
            sim.schedule(float(i), lambda: None)
        # The count must come from the incremental counter, not a heap
        # scan: reading it must not touch the heap at all.
        heap = sim._queue._heap

        class Exploding(list):
            def __iter__(self):  # pragma: no cover - failure path
                raise AssertionError("pending_events scanned the heap")

        sim._queue._heap = Exploding(heap)
        try:
            assert sim.pending_events == 5000
        finally:
            sim._queue._heap = heap


# -- counter lifecycle -------------------------------------------------------
class TestCounterLifecycle:
    def test_packet_numbers_reset(self):
        reset_packet_numbers()
        assert next_packet_number() == 1
        assert next_packet_number() == 2
        packet = Packet(
            src=endpoint("192.168.1.2", 50000),
            dst=endpoint("54.1.1.1", 443),
            protocol=Protocol.TCP,
            payload_len=100,
        )
        assert packet.number == 3
        reset_packet_numbers(start=10)
        assert next_packet_number() == 10
        reset_packet_numbers()
        assert next_packet_number() == 1

    def test_window_ids_are_per_instance(self):
        def fresh_recognition():
            sim = Simulator()
            recognition = TrafficRecognition(sim, VoiceGuardConfig(), GuardLog())
            recognition.add_speaker(IPv4Address("192.168.1.200"), SpeakerProfile.ECHO)
            state = recognition.speaker_state(IPv4Address("192.168.1.200"))
            state.avs_ip = IPv4Address("54.1.1.1")
            state.avs_ip_source = "dns"
            return sim, recognition

        def first_window_id(sim, recognition):
            flow = ProxiedFlow(
                flow_id=1,
                protocol=Protocol.TCP,
                client=endpoint("192.168.1.200", 50000),
                server=endpoint("54.1.1.1", 443),
            )
            packet = Packet(
                src=endpoint("192.168.1.200", 50000),
                dst=endpoint("54.1.1.1", 443),
                protocol=Protocol.TCP,
                payload_len=277,
            )
            recognition.observe(flow, packet)
            return recognition.log.events[-1].window_id

        assert first_window_id(*fresh_recognition()) == 1
        # A second engine in the same process starts from 1 again.
        assert first_window_id(*fresh_recognition()) == 1

    def test_closed_flows_are_pruned(self):
        sim = Simulator()
        recognition = TrafficRecognition(sim, VoiceGuardConfig(), GuardLog())
        recognition.add_speaker(IPv4Address("192.168.1.200"), SpeakerProfile.ECHO)
        state = recognition.speaker_state(IPv4Address("192.168.1.200"))
        state.avs_ip = IPv4Address("54.1.1.1")
        state.avs_ip_source = "dns"
        ids = itertools.count(1)
        flows = []
        for _ in range(20):
            flow = ProxiedFlow(
                flow_id=next(ids),
                protocol=Protocol.TCP,
                client=endpoint("192.168.1.200", 50000),
                server=endpoint("54.1.1.1", 443),
            )
            packet = Packet(
                src=flow.client, dst=flow.server,
                protocol=Protocol.TCP, payload_len=55,
            )
            recognition.observe(flow, packet)
            flows.append(flow)
        assert recognition.tracked_flow_count() == 20
        for flow in flows[:15]:
            recognition.on_flow_closed(flow)
        assert recognition.tracked_flow_count() == 5
        recognition.on_flow_closed(flows[0])  # idempotent for unknown flows
        assert recognition.tracked_flow_count() == 5


# -- the figure-8/9 pipeline stays deterministic ------------------------------
class TestRssiMapPipeline:
    def test_rssi_map_unchanged_by_batching(self):
        # The figure pipeline uses average_rssi_grid; replaying the
        # same stream through the scalar API must give the same values.
        from repro.experiments.rssi_maps import SAMPLES_PER_LOCATION, run_rssi_map
        from repro.home.environment import HomeEnvironment

        result = run_rssi_map("apartment", 0, seed=8)
        testbed = build_testbed("apartment")
        env = HomeEnvironment(testbed, deployment=0, seed=8)
        rng = env.rng.stream("rssi-map")
        scalar = {
            number: env.model.average_rssi(
                env.speaker_beacon.position, mp.point, rng,
                samples=SAMPLES_PER_LOCATION,
            )
            for number, mp in sorted(testbed.plan.points.items())
        }
        for reading in result.readings:
            assert reading.rssi == scalar[reading.number]
