"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue
from repro.sim.process import PeriodicTask, Timer, call_repeatedly


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.5).now == 5.5

    def test_rejects_negative_start(self):
        with pytest.raises(SimulationError):
            SimClock(-1.0)

    def test_advances_forward(self):
        clock = SimClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_rejects_time_reversal(self):
        clock = SimClock(2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)

    def test_advance_to_same_time_is_ok(self):
        clock = SimClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, fired.append, ("c",))
        queue.push(1.0, fired.append, ("a",))
        queue.push(2.0, fired.append, ("b",))
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for name in "abc":
            queue.push(1.0, fired.append, (name,))
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == ["a", "b", "c"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        handle = queue.push(1.0, fired.append, ("a",))
        queue.push(2.0, fired.append, ("b",))
        handle.cancel()
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == ["b"]

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        handle.cancel()
        assert len(queue) == 1

    def test_peek_time_skips_cancelled_head(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        handle.cancel()
        assert queue.peek_time() == 5.0

    def test_rejects_non_callable(self):
        with pytest.raises(SimulationError):
            EventQueue().push(1.0, "not-callable")  # type: ignore[arg-type]


class TestSimulator:
    def test_schedule_and_run(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == 2.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until_stops_at_deadline(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(10.0, fired.append, "late")
        sim.run_until(5.0)
        assert fired == ["early"]
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_run_until_advances_clock_without_events(self, sim):
        sim.run_until(7.0)
        assert sim.now == 7.0

    def test_events_can_schedule_events(self, sim):
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_max_events_bounds_run(self, sim):
        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        fired = sim.run(max_events=25)
        assert fired == 25

    def test_run_for_relative(self, sim):
        sim.run_until(3.0)
        sim.run_for(2.0)
        assert sim.now == 5.0

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False


class TestTimer:
    def test_fires_after_interval(self, sim):
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run()
        assert fired == [2.0]

    def test_restart_postpones(self, sim):
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run_until(1.0)
        timer.restart()
        sim.run()
        assert fired == [3.0]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        timer.cancel()
        sim.run()
        assert fired == []

    def test_start_is_idempotent_while_running(self, sim):
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        timer.start()
        sim.run()
        assert fired == [2.0]

    def test_negative_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            Timer(sim, -1.0, lambda: None)


class TestPeriodicTask:
    def test_fires_periodically(self, sim):
        times = []
        task = PeriodicTask(sim, 1.0, times.append)
        task.start()
        sim.run_until(3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_stop_inside_callback(self, sim):
        times = []

        def callback(now):
            times.append(now)
            if len(times) == 2:
                task.stop()

        task = PeriodicTask(sim, 1.0, callback)
        task.start()
        sim.run_until(10.0)
        assert times == [1.0, 2.0]

    def test_first_delay_override(self, sim):
        times = []
        task = PeriodicTask(sim, 1.0, times.append, first_delay=0.0)
        task.start()
        sim.run_until(2.5)
        assert times == [0.0, 1.0, 2.0]

    def test_zero_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 0.0, lambda now: None)

    def test_call_repeatedly_exact_count(self, sim):
        times = []
        call_repeatedly(sim, 0.5, times.append, count=4, first_delay=0.0)
        sim.run_until(10.0)
        assert len(times) == 4

    def test_call_repeatedly_rejects_zero_count(self, sim):
        with pytest.raises(SimulationError):
            call_repeatedly(sim, 0.5, lambda now: None, count=0)


class TestRngHub:
    def test_same_name_same_stream_object(self, hub):
        assert hub.stream("a") is hub.stream("a")

    def test_different_names_independent(self, hub):
        a = hub.stream("a").random(5)
        b = hub.stream("b").random(5)
        assert list(a) != list(b)

    def test_reproducible_across_hubs(self):
        from repro.sim.random import RngHub
        one = RngHub(7).stream("x").random(5)
        two = RngHub(7).stream("x").random(5)
        assert list(one) == list(two)

    def test_forks_are_independent(self, hub):
        child_a = hub.fork("day1").stream("x").random(3)
        child_b = hub.fork("day2").stream("x").random(3)
        assert list(child_a) != list(child_b)

    def test_bounded_lognormal_respects_bounds(self, rng):
        from repro.sim.random import bounded_lognormal
        values = [bounded_lognormal(rng, 1.0, 0.8, 0.2, 2.5) for _ in range(500)]
        assert min(values) >= 0.2
        assert max(values) <= 2.5

    def test_bounded_lognormal_mean_roughly_right(self, rng):
        from repro.sim.random import bounded_lognormal
        values = [bounded_lognormal(rng, 1.0, 0.3, 0.01, 10.0) for _ in range(4000)]
        assert abs(sum(values) / len(values) - 1.0) < 0.05

    def test_bounded_lognormal_rejects_bad_args(self, rng):
        from repro.sim.random import bounded_lognormal
        with pytest.raises(ValueError):
            bounded_lognormal(rng, -1.0, 0.5, 0.0, 1.0)
        with pytest.raises(ValueError):
            bounded_lognormal(rng, 1.0, 0.5, 2.0, 1.0)
