"""Shared fixtures.

Scenario builds cost ~1 s each (threshold calibration plus, for the
house, 75 training trace walks), so the expensive read-mostly ones are
session-scoped.  Tests that mutate a scenario build their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.random import RngHub
from repro.sim.simulator import Simulator


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="regenerate the committed golden-trace fixtures "
             "(tests/goldens/) instead of asserting against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture
def sim() -> Simulator:
    return Simulator()

@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def hub() -> RngHub:
    return RngHub(seed=99)
