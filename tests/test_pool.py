"""Warm-start scenario pool, fleet full-build parity, and the
fast-vs-full cross-validation statistics.

The load-bearing contract here is byte identity: a home restored from
a pool template (deepcopy + rehome) must produce exactly the guard
event stream a freshly built world produces.  Everything else — the
5x fleet benchmark, the ``fleet-validate`` statistics, million-home
full-fidelity claims — leans on that invariant.
"""

from __future__ import annotations

import math

import pytest

from repro.core.config import VoiceGuardConfig
from repro.core.recognizers import clear_recognizer_memo
from repro.errors import ConfigError, WorkloadError
from repro.experiments.bench_sim import guard_event_stream
from repro.experiments.fleet import (
    FleetConfig,
    FleetProgressMeter,
    clear_scenario_pool,
    run_fleet,
)
from repro.experiments.fleet_validate import (
    CHI2_CRITICAL_DF1,
    chi2_2x2,
    run_fleet_validate,
)
from repro.experiments.parallel import derive_seed
from repro.experiments.pool import (
    ScenarioPool,
    build_home_cold,
    pool_key,
    snapshot_hazards,
    template_seed,
)
from repro.experiments.synthesis import HomeSpec, PopulationModel
from repro.experiments.workload import SevenDayWorkload
from repro.obs.metrics import QuantileSketch, ks_critical_value, sketch_ks_distance
from repro.sim.random import RngHub

# Apartment-only, tiny workloads: the cheapest populations/worlds that
# still exercise the whole packet-level path.
CHEAP_POPULATION = PopulationModel(
    testbed_mix=(("apartment", 1.0),),
    plan_scales=(1.0,),
    attack_prevalence=0.5,
    legit_commands_mean=2.0,
    attacks_mean=1.0,
)


def make_spec(index=0, testbed="apartment", deployment=0, plan_scale=1.0,
              owner_count=1, device_kind="smartphone", legit=2, attacks=1,
              push_loss=0.0):
    return HomeSpec(
        index=index,
        shard=0,
        seed=derive_seed(99, "test.pool.home", index),
        testbed=testbed,
        deployment=deployment,
        plan_scale=plan_scale,
        owner_count=owner_count,
        device_kind=device_kind,
        legit_commands=legit,
        attacks=attacks,
        away_fraction=0.3,
        body_block_fraction=0.2,
        push_loss=push_loss,
        threshold_margin=0.5,
    )


def run_home(scenario, spec):
    """Simulate the spec's workload and return the guard event stream."""
    workload = SevenDayWorkload(scenario)
    workload.run(spec.legit_commands, spec.attacks)
    scenario.speaker.settle_all()
    return guard_event_stream(scenario.guard)


class TestPoolIdentity:
    def test_pooled_stream_matches_cold_build(self):
        """The tentpole invariant, across buckets and with faults armed."""
        specs = [
            make_spec(index=0),
            make_spec(index=1, deployment=1, owner_count=2,
                      device_kind="smartwatch"),
            make_spec(index=2, push_loss=0.02),  # fault injector armed
        ]
        pool = ScenarioPool()
        for spec in specs:
            pooled = run_home(pool.acquire(spec), spec)
            cold = run_home(build_home_cold(spec), spec)
            assert pooled == cold, f"stream diverged for spec {spec.index}"
        # Three specs, two world buckets (0 and 2 share one).
        assert pool.template_builds == 2
        assert pool.restores == 3

    def test_restores_are_isolated_from_pool_history(self):
        """Same spec, same stream — no matter what ran on the pool before."""
        spec_a = make_spec(index=0)
        spec_b = make_spec(index=1, push_loss=0.02)
        pool = ScenarioPool()
        first = run_home(pool.acquire(spec_a), spec_a)
        run_home(pool.acquire(spec_b), spec_b)  # perturb pool + globals
        again = run_home(pool.acquire(spec_a), spec_a)
        assert first == again

    def test_template_reused_within_bucket(self):
        pool = ScenarioPool()
        spec = make_spec(index=0)
        pool.acquire(spec)
        pool.acquire(make_spec(index=5))  # same bucket fields
        assert pool.template_builds == 1
        assert pool.restores == 2
        pool.clear()
        pool.acquire(spec)
        assert pool.template_builds == 2

    def test_template_seed_is_bucket_not_home(self):
        """Two homes in one bucket build from one seed; buckets differ."""
        a = make_spec(index=0)
        b = make_spec(index=7)
        c = make_spec(index=1, deployment=1)
        assert pool_key(a) == pool_key(b)
        assert template_seed(pool_key(a)) == template_seed(pool_key(b))
        assert template_seed(pool_key(a)) != template_seed(pool_key(c))


def _only_recognizer(scenario):
    """The single trained recognizer installed on the scenario's guard."""
    recognizers = scenario.guard.recognition.window_recognizers
    assert len(recognizers) == 1
    return next(iter(recognizers.values()))


class TestPoolLearnedRecognizers:
    """Warm-start identity extends to guards with trained recognizers."""

    def test_pooled_mlp_weights_and_stream_match_cold_build(self):
        clear_recognizer_memo()
        config = VoiceGuardConfig(recognizer="mlp")
        spec = make_spec(index=0)
        pooled_scenario = ScenarioPool(config=config).acquire(spec)
        pooled_weights = _only_recognizer(pooled_scenario).weight_bytes()
        pooled_stream = run_home(pooled_scenario, spec)
        cold_scenario = build_home_cold(spec, config=config)
        # Bit-identical weights AND a byte-identical guard event stream:
        # training draws only from its dedicated streams, so the rehome
        # reseed leaves pooled and cold guards indistinguishable.
        assert _only_recognizer(cold_scenario).weight_bytes() == pooled_weights
        assert run_home(cold_scenario, spec) == pooled_stream

    def test_memo_warm_template_rebuild_is_byte_identical(self):
        # pool.clear() drops the templates but not the recognizer memo:
        # the rebuilt template trains from the memo (zero stream draws)
        # and the restored home must still replay the same bytes.
        clear_recognizer_memo()
        config = VoiceGuardConfig(recognizer="knn")
        spec = make_spec(index=0)
        pool = ScenarioPool(config=config)
        first = run_home(pool.acquire(spec), spec)
        pool.clear()
        warm = run_home(pool.acquire(spec), spec)
        assert pool.template_builds == 2
        assert warm == first
        clear_recognizer_memo()


class TestSnapshotHazards:
    def test_template_is_closure_free(self):
        pool = ScenarioPool()
        entry = pool.template(pool_key(make_spec()))
        assert snapshot_hazards(entry.scenario) == []

    def test_planted_closure_is_detected(self):
        pool = ScenarioPool()
        entry = pool.template(pool_key(make_spec()))
        captured = object()
        entry.scenario.guard._planted_callback = lambda: captured
        hazards = snapshot_hazards(entry.scenario)
        assert any("_planted_callback" in hazard for hazard in hazards)


class TestRngHubReseed:
    def test_reseed_matches_fresh_hub(self):
        hub = RngHub(1)
        hub.stream("a").normal(size=8)  # advance existing stream state
        hub.reseed(2)
        fresh = RngHub(2)
        assert (hub.stream("a").normal(size=4).tolist()
                == fresh.stream("a").normal(size=4).tolist())
        # A stream first created *after* the reseed must be
        # indistinguishable too (memo-warm builds skip some streams).
        assert (hub.stream("b").normal(size=4).tolist()
                == fresh.stream("b").normal(size=4).tolist())
        assert hub.seed == 2


class TestFleetFullBuild:
    def test_config_rejects_unknown_full_build(self):
        with pytest.raises(WorkloadError):
            FleetConfig(homes=4, shards=2, seed=1, full_build="warm")

    @pytest.mark.slow
    def test_pooled_and_cold_fleets_render_identically(self):
        clear_scenario_pool()
        kwargs = dict(homes=4, shards=2, seed=11, chunk_size=2,
                      fidelity="full", population=CHEAP_POPULATION)
        pooled = run_fleet(FleetConfig(full_build="pooled", **kwargs),
                           workers=1)
        cold = run_fleet(FleetConfig(full_build="cold", **kwargs), workers=1)
        assert pooled.render() == cold.render()


class TestProgressMeter:
    def test_counts_and_final_emission(self):
        messages = []
        meter = FleetProgressMeter(10, emit=messages.append,
                                   min_interval=0.0)
        meter.update({"metrics": {"counters": {"fleet.homes": 4}}})
        meter.update({"metrics": {"counters": {"fleet.homes": 6}}})
        assert meter.done == 10
        assert messages[0].startswith("fleet: 4/10 homes (40%)")
        assert messages[-1].startswith("fleet: 10/10 homes (100%)")

    def test_metrics_free_payload_falls_back_to_counts(self):
        messages = []
        meter = FleetProgressMeter(3, emit=messages.append, min_interval=0.0)
        meter.update({"per_testbed": {"apartment": {"homes": 1},
                                      "house": {"homes": 2}}})
        assert meter.done == 3

    def test_metrics_free_payloads_surface_in_the_progress_line(self):
        # The folded snapshot logs a counted warning for metric-less
        # results; the live progress line must carry the same count.
        messages = []
        meter = FleetProgressMeter(4, emit=messages.append, min_interval=0.0)
        meter.update({"metrics": {"counters": {"fleet.homes": 1}}})
        meter.update({"per_testbed": {"house": {"homes": 1}}})
        meter.update({"per_testbed": {"house": {"homes": 2}}})
        assert meter.missing_metrics == 2
        assert "w/o metrics" not in messages[0]
        assert "[1 chunks w/o metrics]" in messages[1]
        assert "[2 chunks w/o metrics]" in messages[-1]

    def test_fully_metriced_run_emits_no_warning(self):
        messages = []
        meter = FleetProgressMeter(2, emit=messages.append, min_interval=0.0)
        meter.update({"metrics": {"counters": {"fleet.homes": 2}}})
        assert meter.missing_metrics == 0
        assert "w/o metrics" not in messages[-1]

    def test_rate_limit_suppresses_intermediate_emissions(self):
        messages = []
        meter = FleetProgressMeter(4, emit=messages.append,
                                   min_interval=3600.0)
        meter.update({"metrics": {"counters": {"fleet.homes": 1}}})
        assert len(messages) == 1  # the first update always emits
        meter.update({"metrics": {"counters": {"fleet.homes": 1}}})
        assert len(messages) == 1  # within the interval, not final
        meter.update({"metrics": {"counters": {"fleet.homes": 2}}})
        assert len(messages) == 2  # final emission always fires
        assert messages[-1].startswith("fleet: 4/4 homes")


class TestStatistics:
    def test_chi2_known_value(self):
        # (30,10) vs (10,30): chi2 = 80 * (30*30 - 10*10)^2 / 40^4 = 20
        assert chi2_2x2(30, 10, 10, 30) == pytest.approx(20.0)

    def test_chi2_identical_rows_is_zero(self):
        assert chi2_2x2(15, 5, 15, 5) == pytest.approx(0.0)

    def test_chi2_degenerate_margins_are_zero(self):
        assert chi2_2x2(0, 0, 3, 4) == 0.0  # empty row
        assert chi2_2x2(0, 5, 0, 7) == 0.0  # empty column
        assert CHI2_CRITICAL_DF1 == pytest.approx(6.635, abs=1e-3)

    def test_ks_identical_sketches_is_zero(self):
        a, b = QuantileSketch(), QuantileSketch()
        for value in (1.0, 2.0, 5.0, 9.0):
            a.add(value)
            b.add(value)
        assert sketch_ks_distance(a, b) == 0.0

    def test_ks_disjoint_sketches_is_one(self):
        a, b = QuantileSketch(), QuantileSketch()
        for _ in range(10):
            a.add(1.0)
            b.add(100.0)
        assert sketch_ks_distance(a, b) == pytest.approx(1.0)

    def test_ks_zero_heavy_side_counts(self):
        a, b = QuantileSketch(), QuantileSketch()
        for _ in range(10):
            a.add(0.0)  # all mass in the zero bucket
            b.add(3.0)
        assert sketch_ks_distance(a, b) == pytest.approx(1.0)

    def test_ks_empty_side_is_nan(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.add(1.0)
        assert math.isnan(sketch_ks_distance(a, b))

    def test_ks_alpha_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            sketch_ks_distance(QuantileSketch(alpha=0.01),
                               QuantileSketch(alpha=0.02))

    def test_ks_critical_value(self):
        c = math.sqrt(-0.5 * math.log(0.005))
        assert ks_critical_value(100, 100) == pytest.approx(
            c * math.sqrt(200 / 10000.0))
        # More samples, tighter threshold.
        assert ks_critical_value(400, 400) < ks_critical_value(100, 100)
        assert math.isnan(ks_critical_value(0, 10))


@pytest.mark.slow
class TestFleetValidate:
    def test_cross_validation_structure(self):
        clear_scenario_pool()
        result = run_fleet_validate(homes=6, shards=2, seed=3,
                                    population=CHEAP_POPULATION)
        assert result.homes == 6
        assert [c.testbed for c in result.comparisons] == ["apartment"]
        comparison = result.comparisons[0]
        assert comparison.fast_counts["homes"] == 6
        assert comparison.full_counts["homes"] == 6
        # The outcome chi2 statistics are always finite numbers.
        for value in (comparison.chi2_false_block, comparison.chi2_blocked,
                      comparison.chi2_timeout):
            assert value == value and value >= 0.0
        rendered = result.render()
        assert "Fleet fidelity cross-validation" in rendered
        assert ("pass" in rendered) or ("FAIL" in rendered)
        assert "homes/sec" in result.render_throughput()


@pytest.mark.slow
class TestCli:
    def test_fleet_validate_cli_runs(self, capsys):
        from repro.__main__ import main

        clear_scenario_pool()
        assert main(["fleet-validate", "--homes", "4", "--shards", "2",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fleet fidelity cross-validation" in out

    def test_fleet_progress_cli_runs(self, capsys):
        from repro.__main__ import main

        assert main(["fleet", "--homes", "64", "--shards", "2",
                     "--seed", "1", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "Fleet simulation" in captured.out
        assert "fleet: 64/64 homes" in captured.err
