"""Tests for metrics, regression, traces, and report rendering."""

from __future__ import annotations

import math

import pytest

from repro.analysis.metrics import ConfusionMatrix
from repro.analysis.regression import linear_fit
from repro.analysis.reporting import render_histogram, render_table
from repro.analysis.traces import RssiTrace
from repro.radio.bluetooth import RssiSample


class TestConfusionMatrix:
    def test_paper_table1_numbers(self):
        # Table I: 132 TP, 2 FN, 149 TN, 0 FP.
        matrix = ConfusionMatrix(
            true_positive=132, false_negative=2, true_negative=149, false_positive=0,
        )
        assert matrix.accuracy == pytest.approx(0.9929, abs=1e-3)
        assert matrix.precision == 1.0
        assert matrix.recall == pytest.approx(0.9851, abs=1e-3)

    def test_record_routes_counts(self):
        matrix = ConfusionMatrix()
        matrix.record(True, True)
        matrix.record(True, False)
        matrix.record(False, True)
        matrix.record(False, False)
        assert (matrix.true_positive, matrix.false_negative,
                matrix.false_positive, matrix.true_negative) == (1, 1, 1, 1)
        assert matrix.total == 4
        assert matrix.accuracy == 0.5

    def test_empty_matrix_is_nan(self):
        matrix = ConfusionMatrix()
        assert math.isnan(matrix.accuracy)
        assert math.isnan(matrix.precision)
        assert math.isnan(matrix.recall)
        assert math.isnan(matrix.f1)

    def test_f1_harmonic_mean(self):
        matrix = ConfusionMatrix(true_positive=8, false_positive=2, false_negative=2)
        assert matrix.f1 == pytest.approx(0.8)

    def test_merge(self):
        a = ConfusionMatrix(true_positive=1, false_positive=2)
        b = ConfusionMatrix(true_positive=3, true_negative=4)
        merged = a.merged(b)
        assert merged.true_positive == 4
        assert merged.false_positive == 2
        assert merged.true_negative == 4

    def test_render_contains_labels(self):
        matrix = ConfusionMatrix(true_positive=5, true_negative=5)
        text = matrix.render()
        assert "Accuracy" in text and "Precision" in text and "Recall" in text


class TestLinearFit:
    def test_perfect_line(self):
        fit = linear_fit([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_flat_line(self):
        fit = linear_fit([0, 1, 2], [4, 4, 4])
        assert fit.slope == pytest.approx(0.0)
        assert fit.intercept == pytest.approx(4.0)

    def test_predict(self):
        fit = linear_fit([0, 1], [0, 2])
        assert fit.predict(3.0) == pytest.approx(6.0)

    def test_noisy_r_squared_below_one(self, rng):
        xs = list(range(40))
        ys = [2 * x + float(rng.normal(0, 3)) for x in xs]
        fit = linear_fit(xs, ys)
        assert 0.8 < fit.r_squared < 1.0
        assert fit.slope == pytest.approx(2.0, abs=0.3)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1], [2])

    def test_degenerate_times_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1, 1, 1], [1, 2, 3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1, 2, 3])


class TestRssiTrace:
    def _samples(self, values, start=100.0, period=0.2):
        return [
            RssiSample(rssi=v, time=start + i * period, beacon_name="b", scanner_name="s")
            for i, v in enumerate(values)
        ]

    def test_from_samples_rebases_time(self):
        trace = RssiTrace.from_samples(self._samples([1.0, 2.0, 3.0]))
        assert trace.times[0] == 0.0
        assert trace.times[-1] == pytest.approx(0.4)

    def test_fit_matches_samples(self):
        trace = RssiTrace.from_samples(self._samples([0.0, 1.0, 2.0, 3.0]))
        fit = trace.fit()
        assert fit.slope == pytest.approx(5.0)  # 1 unit per 0.2 s

    def test_span(self):
        trace = RssiTrace.from_samples(self._samples([0.0] * 40))
        assert trace.span == pytest.approx(7.8)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RssiTrace.from_samples([])


class TestRendering:
    def test_table_alignment(self):
        text = render_table("Title", ["a", "b"], [[1, 2], ["long-value", 4]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert all("|" in line for line in lines[2:] if "-" not in line[:2])

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table("t", ["a", "b"], [[1]])

    def test_histogram_counts(self):
        text = render_histogram("H", [0.1, 0.2, 0.9, 1.5], bins=[0.0, 0.5, 1.0, 2.0])
        assert "2" in text  # first bin holds two values

    def test_histogram_rejects_single_edge(self):
        with pytest.raises(ValueError):
            render_histogram("H", [1.0], bins=[0.0])

    def test_histogram_includes_right_edge_value(self):
        text = render_histogram("H", [2.0], bins=[0.0, 1.0, 2.0])
        last_line = text.splitlines()[-1]
        assert "   1" in last_line
