"""Golden-trace regression suite.

Three canonical runs at a fixed seed — a released owner command, a
blocked remote replay, and a degraded-mode grant during a home-wide
push outage — each captured as a committed JSON fixture holding the
full span forest, the guard's command-event stream, and the typed
resilience trail.  The tests assert *exact* equality: any change to
span structure, timestamps, attributes, or guard behaviour shows up as
a fixture diff rather than silently shifting.

Regenerate after an intentional behaviour change with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-goldens

and review the fixture diff like any other code change.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.audio.speech import full_utterance_duration
from repro.audio.voiceprint import replay_of
from repro.core.config import VoiceGuardConfig
from repro.core.decision import Verdict
from repro.experiments.scenarios import Scenario, build_scenario
from repro.faults.plan import FaultPlan, offline_outage
from repro.obs.export import span_to_dict
from repro.radio.geometry import distance

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"
SEED = 11

# Sim time when a golden scenario's build completes (24 s calibration
# walk + 6 s settle); the degraded case's outage window is keyed to it.
BUILD_DONE = 30.0
OUTAGE = (60.0, 300.0)


# ---------------------------------------------------------------------------
# Scenario scripts
# ---------------------------------------------------------------------------

def _golden_scenario(config=None, fault_plan=None) -> Scenario:
    return build_scenario(
        "house", "echo", seed=SEED, owner_count=1,
        with_floor_tracking=False, anomalous_rate=0.0,
        config=config, fault_plan=fault_plan, tracing=True,
    )


def _speak(scenario: Scenario, rng_name: str, replay_from=None) -> float:
    """One utterance: the owner's own, or a replay played at a point."""
    env = scenario.env
    owner = scenario.owners[0]
    rng = env.rng.stream(rng_name)
    command = scenario.corpus.sample(rng)
    duration = full_utterance_duration(command, rng)
    utterance = owner.speak(command.text, duration)
    if replay_from is None:
        env.play_utterance(utterance, owner.device_position())
    else:
        env.play_utterance(replay_of(utterance, rng), replay_from)
    return duration


def _build_legit() -> Scenario:
    """Owner beside the speaker; one command, released."""
    scenario = _golden_scenario()
    env = scenario.env
    scenario.owners[0].teleport(
        env.testbed.speaker_room(0).center(height=0.0))
    duration = _speak(scenario, "golden.legit")
    env.sim.run_for(duration + 14.0)
    return scenario


def _build_blocked() -> Scenario:
    """Owner in the farthest room; a replay beside the speaker, blocked."""
    scenario = _golden_scenario()
    env = scenario.env
    far_room = max(
        env.testbed.plan.rooms.values(),
        key=lambda room: distance(room.center(height=1.2),
                                  env.speaker_beacon.position),
    )
    scenario.owners[0].teleport(far_room.center(height=0.0))
    attack_source = env.testbed.speaker_room(0).center(height=1.0)
    duration = _speak(scenario, "golden.blocked", replay_from=attack_source)
    env.sim.run_for(duration + 20.0)
    return scenario


def _build_degraded() -> Scenario:
    """Push outage: the first command warms the proximity cache live;
    the second finds every device offline and is granted degraded."""
    scenario = _golden_scenario(
        config=VoiceGuardConfig(proximity_cache_ttl=240.0),
        fault_plan=FaultPlan(seed=SEED, offline_windows=(offline_outage(*OUTAGE),)),
    )
    env = scenario.env
    scenario.owners[0].teleport(
        env.testbed.speaker_room(0).center(height=0.0))
    duration = _speak(scenario, "golden.degraded.warm")
    env.sim.run_for(duration + 14.0)
    # Into the outage: every push NACKs, the cache stands in.
    env.sim.run_for(OUTAGE[0] + 10.0 - env.sim.now)
    duration = _speak(scenario, "golden.degraded.hit")
    env.sim.run_for(duration + 14.0)
    return scenario


CASES = {
    "legit": _build_legit,
    "blocked": _build_blocked,
    "degraded": _build_degraded,
}


# ---------------------------------------------------------------------------
# Snapshot serialization
# ---------------------------------------------------------------------------

def _event_dict(event) -> dict:
    return {
        "window_id": event.window_id,
        "flow_id": event.flow_id,
        "speaker_ip": event.speaker_ip,
        "protocol": event.protocol,
        "opened_at": event.opened_at,
        "classification": event.classification.value if event.classification else None,
        "classified_at": event.classified_at,
        "classify_packet_count": event.classify_packet_count,
        "verdict": event.verdict.value if event.verdict else None,
        "verdict_at": event.verdict_at,
        "released_at": event.released_at,
        "discarded_at": event.discarded_at,
        "held_records": event.held_records,
        "rssi_reports": [repr(report) for report in event.rssi_reports],
    }


def _resilience_dict(event) -> dict:
    return {
        "type": event.type.value,
        "time": event.time,
        "window_id": event.window_id,
        "device_name": event.device_name,
        "attempt": event.attempt,
    }


def snapshot(scenario: Scenario) -> dict:
    """Everything a golden fixture pins, as plain JSON."""
    return {
        "spans": [span_to_dict(s) for s in scenario.env.obs.tracer.spans],
        "events": [_event_dict(e) for e in scenario.guard.log.events],
        "resilience": [_resilience_dict(e) for e in scenario.guard.log.resilience],
        "summary": scenario.guard.summary(),
    }


# ---------------------------------------------------------------------------
# Tests
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_trace(name, update_goldens):
    scenario = CASES[name]()
    snap = snapshot(scenario)

    # Sanity-check the behaviour the fixture claims to capture, so a
    # regenerated golden can't silently encode the wrong outcome.
    commands = scenario.guard.log.commands()
    assert commands, f"golden case {name!r} produced no command window"
    last = commands[-1]
    if name == "legit":
        assert last.verdict is Verdict.LEGITIMATE
        assert last.released_at is not None
    elif name == "blocked":
        assert last.verdict is Verdict.MALICIOUS
        assert last.discarded_at is not None
    else:  # degraded
        assert last.verdict is Verdict.LEGITIMATE
        counts = scenario.guard.log.resilience_counts()
        assert counts.get("degraded_grant", 0) >= 1
        assert counts.get("device_offline", 0) >= 1

    path = GOLDEN_DIR / f"trace_{name}.json"
    text = json.dumps(snap, indent=2, sort_keys=True) + "\n"
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; run with --update-goldens"
    )
    expected = json.loads(path.read_text(encoding="utf-8"))
    assert json.loads(text) == expected


def test_disabled_tracing_event_stream_matches_golden(update_goldens):
    """A tracing-disabled run's event stream is byte-identical to the
    committed baseline — the no-op tracer provably changes nothing —
    and a tracing-enabled twin reproduces the same stream."""
    scenario = build_scenario(
        "house", "echo", seed=SEED, owner_count=1,
        with_floor_tracking=False, anomalous_rate=0.0, tracing=False,
    )
    env = scenario.env
    scenario.owners[0].teleport(env.testbed.speaker_room(0).center(height=0.0))
    duration = _speak(scenario, "golden.legit")
    env.sim.run_for(duration + 14.0)
    assert not scenario.env.obs.tracer.enabled
    assert len(scenario.env.obs.tracer) == 0
    stream = [_event_dict(e) for e in scenario.guard.log.events]

    path = GOLDEN_DIR / "events_baseline.json"
    text = json.dumps(stream, indent=2, sort_keys=True) + "\n"
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; run with --update-goldens"
    )
    assert json.loads(text) == json.loads(path.read_text(encoding="utf-8"))

    # The traced legit golden must carry the very same event stream.
    traced = json.loads((GOLDEN_DIR / "trace_legit.json").read_text(
        encoding="utf-8"))
    assert traced["events"] == json.loads(text)


def test_default_recognizer_and_identity_shim_match_golden():
    """The recognizer subsystem provably changes nothing by default.

    The legit golden rebuilt with (a) the default signature recognizer
    spelled out explicitly and (b) an identity traffic morpher installed
    as a live record shim must reproduce ``events_baseline.json``
    byte-for-byte: the shim chain and the recognizer dispatch are
    transparent until someone actually configures them."""
    from repro.attacks.morphing import MorphingAdversary, TrafficMorpher

    scenario = build_scenario(
        "house", "echo", seed=SEED, owner_count=1,
        with_floor_tracking=False, anomalous_rate=0.0, tracing=False,
        config=VoiceGuardConfig(recognizer="signature"),
    )
    adversary = MorphingAdversary(TrafficMorpher(), seed=2024)
    adversary.install(scenario.guard.proxy)
    env = scenario.env
    scenario.owners[0].teleport(env.testbed.speaker_room(0).center(height=0.0))
    duration = _speak(scenario, "golden.legit")
    env.sim.run_for(duration + 14.0)
    assert not scenario.guard.recognition.window_recognizers
    assert adversary.records_shaped > 0

    stream = [_event_dict(e) for e in scenario.guard.log.events]
    path = GOLDEN_DIR / "events_baseline.json"
    expected = json.loads(path.read_text(encoding="utf-8"))
    assert json.loads(json.dumps(stream, sort_keys=True)) == expected
