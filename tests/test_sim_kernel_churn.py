"""The timer-churn fix: heap compaction, cancel bookkeeping,
deadline-bumping timers, FIFO-floor pruning, and the kernel's
byte-identity guarantee.

The headline regression test models the leak this PR fixes: a
long-lived TCP flow re-arms its retransmission timer on every advancing
ACK (cancel + re-push).  On the pre-PR queue every cycle strands one
dead event, so the heap grows without bound over a fleet-length run; on
the compacting queue the heap stays within a small constant factor of
the live count, with pop order unchanged.  The legacy queue is kept
runnable (``repro.sim.compat``), so the test demonstrates the failure
it guards against instead of asserting it blind.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.addresses import Endpoint, IPv4Address
from repro.net.link import Host, Network, TapHost
from repro.net.packet import Packet, Protocol
from repro.sim import compat
from repro.sim.events import EventQueue, LegacyEventQueue
from repro.sim.process import DeadlineTimer
from repro.sim.random import RngHub
from repro.sim.simulator import Simulator


def _churn(queue, cycles, rearm_gap=1.0, rto=30.0):
    """A long-lived flow's RTO pattern: each segment's ACK cancels the
    pending retransmission and re-arms it ``rto`` ahead.  Returns the
    last (still-armed) handle."""
    handle = queue.push(rto, lambda: None)
    for i in range(1, cycles + 1):
        handle.cancel()
        handle = queue.push(i * rearm_gap + rto, lambda: None)
    return handle


class TestHeapStaysBounded:
    CYCLES = 5000

    def test_rearming_flow_keeps_heap_small(self):
        queue = EventQueue()
        _churn(queue, self.CYCLES)
        assert len(queue) == 1  # only the last re-arm is live
        # The regression bar: dead entries must not accumulate.  The
        # compaction threshold allows a handful, never thousands.
        assert len(queue._heap) <= 16

    def test_legacy_queue_leaks_one_dead_event_per_cycle(self):
        # The pre-PR behaviour this PR fixes — the same workload on the
        # legacy queue strands (almost) every cancelled entry.
        queue = LegacyEventQueue()
        _churn(queue, self.CYCLES)
        assert len(queue) == 1
        assert len(queue._heap) > self.CYCLES * 0.9

    def test_pop_order_unchanged_by_compaction(self):
        # Interleave churn with unrelated events; both queues must pop
        # the survivors in the same order.
        def build(queue):
            times = [7.0, 3.0, 11.0, 5.0, 2.0, 13.0, 0.5]
            for t in times:
                queue.push(t, lambda: None)
            _churn(queue, 200, rearm_gap=0.01, rto=4.0)
            order = []
            while True:
                event = queue.pop()
                if event is None:
                    return order
                order.append((event.time, event.sequence))

        assert build(EventQueue()) == build(LegacyEventQueue())

    def test_compaction_spares_handle_free_posts(self):
        queue = EventQueue()
        for i in range(20):
            queue.post(float(i), lambda: None)
        _churn(queue, 100)
        # All 20 posts plus the one live timer survive compaction.
        assert len(queue) == 21
        popped = [queue.pop_entry() for _ in range(21)]
        assert [entry[0] for entry in popped[:20]] == [float(i) for i in range(20)]


class TestCancelBookkeeping:
    def test_cancel_after_pop_is_a_no_op(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.pop().time == 1.0
        handle.cancel()  # already fired: must not decrement again
        assert len(queue) == 1
        assert queue.pop().time == 2.0
        assert len(queue) == 0

    def test_cancel_after_compact_is_a_no_op(self):
        queue = EventQueue()
        keeper = queue.push(100.0, lambda: None)
        doomed = [queue.push(float(i), lambda: None) for i in range(30)]
        for handle in doomed:
            handle.cancel()  # crosses the compaction threshold (twice)
        assert len(queue._heap) < 10  # compaction ran; 30 dead entries gone
        snapshot = (queue._live, queue._dead, len(queue._heap))
        for handle in doomed:
            handle.cancel()  # re-cancel events compaction already removed
        assert (queue._live, queue._dead, len(queue._heap)) == snapshot
        assert len(queue) == 1
        assert not keeper.cancelled
        assert queue.pop().time == 100.0
        assert queue.pop() is None

    def test_double_cancel_while_queued(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert len(queue) == 1
        assert queue.pop().time == 2.0

    def test_peek_prunes_dead_head_exactly_once(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0
        first.cancel()  # head already pruned by peek
        assert len(queue) == 1


class TestDeadlineTimer:
    def test_fires_exactly_at_deadline(self, sim):
        fired = []
        timer = DeadlineTimer(sim, lambda: fired.append(sim.now))
        timer.schedule_in(5.0)
        sim.run()
        assert fired == [5.0]
        assert not timer.armed

    def test_bumping_later_adds_no_heap_entries(self, sim):
        timer = DeadlineTimer(sim, lambda: None)
        timer.schedule_in(30.0)
        baseline = len(sim._queue._heap)
        for i in range(1, 500):
            sim._clock._now = float(i)  # segments arriving, RTO pushed out
            timer.schedule_in(30.0)
        # The whole churn storm rides the single outstanding wakeup.
        assert len(sim._queue._heap) == baseline

    def test_bumped_deadline_fires_at_new_time_only(self, sim):
        fired = []
        timer = DeadlineTimer(sim, lambda: fired.append(sim.now))
        timer.schedule_at(10.0)
        sim.schedule(5.0, lambda: timer.schedule_at(20.0))
        sim.run()
        assert fired == [20.0]

    def test_cancel_turns_pending_wakeup_into_no_op(self, sim):
        fired = []
        timer = DeadlineTimer(sim, lambda: fired.append(sim.now))
        timer.schedule_at(10.0)
        sim.schedule(5.0, timer.cancel)
        sim.run()
        assert fired == []
        assert not timer.armed

    def test_rescheduling_earlier_fires_earlier(self, sim):
        fired = []
        timer = DeadlineTimer(sim, lambda: fired.append(sim.now))
        timer.schedule_at(50.0)
        sim.schedule(1.0, lambda: timer.schedule_at(8.0))
        sim.run()
        assert fired == [8.0]

    def test_cancel_then_rearm_fires_once(self, sim):
        fired = []
        timer = DeadlineTimer(sim, lambda: fired.append(sim.now))
        timer.schedule_at(10.0)
        sim.schedule(2.0, timer.cancel)
        sim.schedule(3.0, lambda: timer.schedule_at(12.0))
        sim.run()
        assert fired == [12.0]

    def test_periodic_rearm_from_callback(self, sim):
        fired = []

        def beat():
            fired.append(sim.now)
            if len(fired) < 4:
                timer.schedule_in(30.0)

        timer = DeadlineTimer(sim, beat)
        timer.schedule_in(30.0)
        sim.run()
        assert fired == [30.0, 60.0, 90.0, 120.0]


class TestJitterBufferEquivalence:
    def test_block_draws_match_scalar_draws_bitwise(self):
        # Network.send buffers jitter draws 256 at a time; golden-trace
        # identity relies on random(n) yielding the exact doubles n
        # scalar random() calls would.
        block = np.random.default_rng(1234).random(256).tolist()
        scalar_rng = np.random.default_rng(1234)
        scalars = [float(scalar_rng.random()) for _ in range(256)]
        assert block == scalars
        assert all(isinstance(value, float) for value in block)


class TestDeliveryFloorPruning:
    PATHS = 200  # distinct (src_ip, dst_ip, protocol) paths over the run

    def _flood(self, network, sim):
        """A fleet of devices talking to one sink, in bursts with idle
        time in between — each device is a new (src, dst, protocol)
        floor entry, and every drain makes the previous burst's floors
        stale.  The pre-PR dict kept all of them forever."""
        sink = Host("sink", IPv4Address("10.0.1.1"))
        network.attach(sink)
        sink.register_udp_any(lambda packet: None)
        for index in range(self.PATHS):
            device = Host(f"d{index}", IPv4Address(f"10.0.0.{1 + index}"))
            network.attach(device)
            device.send(Packet(src=Endpoint(device.ip, 1),
                               dst=Endpoint(sink.ip, 9),
                               protocol=Protocol.UDP, payload_len=1))
            if index % 40 == 39:
                sim.run()  # drain the burst: time passes every floor
        sim.run()
        return network

    def test_floors_do_not_accumulate_per_path(self, sim):
        network = Network(sim, RngHub(5))
        self._flood(network, sim)
        # 200 distinct paths were used; stale floors must have been
        # pruned instead of retained one-per-path forever.
        assert len(network._last_delivery) < self.PATHS / 2

    def test_legacy_path_retains_every_floor(self, sim):
        compat.use_legacy_kernel(True)
        try:
            network = Network(sim, RngHub(5))
            self._flood(network, sim)
            assert len(network._last_delivery) == self.PATHS  # the pre-PR leak
        finally:
            compat.use_legacy_kernel(False)

    def test_path_cache_is_bounded_under_ephemeral_ports(self, sim):
        # The routing cache is keyed by (origin, src, dst) endpoints;
        # ephemeral ports make that key space unbounded, so the cache
        # must wipe itself rather than grow one entry per flow.
        network = Network(sim, RngHub(9))
        a = Host("a", IPv4Address("192.168.1.10"))
        b = Host("b", IPv4Address("192.168.1.11"))
        network.attach(a)
        network.attach(b)
        b.register_udp_any(lambda packet: None)
        for port in range(1024, 1024 + 5000):
            a.send(Packet(src=Endpoint(a.ip, port), dst=Endpoint(b.ip, 9),
                          protocol=Protocol.UDP, payload_len=1))
            if port % 500 == 0:
                sim.run()
        sim.run()
        assert len(network._path_cache) <= 4096

    def test_fifo_still_holds_across_prunes(self, sim):
        network = Network(sim, RngHub(7))
        network._prune_at = 1  # prune on every send
        a = Host("a", IPv4Address("192.168.1.10"))
        b = Host("b", IPv4Address("192.168.1.11"))
        network.attach(a)
        network.attach(b)
        order = []
        b.register_udp_handler(9, lambda p: order.append(p.payload_len))
        for size in range(1, 40):
            a.send(Packet(src=Endpoint(a.ip, 1), dst=Endpoint(b.ip, 9),
                          protocol=Protocol.UDP, payload_len=size))
        sim.run()
        assert order == list(range(1, 40))


class TestTapRoutingEdges:
    def _fabric(self, sim):
        network = Network(sim, RngHub(3))
        speaker = Host("speaker", IPv4Address("192.168.1.200"))
        cloud = Host("cloud", IPv4Address("54.1.1.1"))
        tap = TapHost("tap", IPv4Address("192.168.1.50"))
        for host in (speaker, cloud, tap):
            network.attach(host)
        return network, speaker, cloud, tap

    def test_tap_reinjection_reaches_true_destination(self, sim):
        network, speaker, cloud, tap = self._fabric(sim)
        network.install_tap(speaker.ip, tap)
        received = []
        cloud.register_udp_handler(9, received.append)
        held = []

        def hold_then_release(packet):
            held.append(packet)
            sim.post(0.5, tap.bridge, packet)  # re-inject later

        tap.intercept = hold_then_release  # type: ignore[assignment]
        speaker.send(Packet(src=Endpoint(speaker.ip, 1),
                            dst=Endpoint(cloud.ip, 9),
                            protocol=Protocol.UDP, payload_len=3))
        sim.run()
        # Intercepted exactly once; the re-injected copy bypasses the
        # tap (origin is the tap) and lands on the real destination.
        assert len(held) == 1
        assert [p.payload_len for p in received] == [3]

    def test_remove_tap_with_packet_in_flight(self, sim):
        network, speaker, cloud, tap = self._fabric(sim)
        network.install_tap(speaker.ip, tap)
        intercepted, received = [], []
        tap.intercept = intercepted.append  # type: ignore[assignment]
        cloud.register_udp_handler(9, received.append)
        # Packet 1 departs while the tap is installed...
        speaker.send(Packet(src=Endpoint(speaker.ip, 1),
                            dst=Endpoint(cloud.ip, 9),
                            protocol=Protocol.UDP, payload_len=1))
        # ...the tap is unplugged before it arrives...
        network.remove_tap(speaker.ip)
        # ...and packet 2 departs after removal.
        speaker.send(Packet(src=Endpoint(speaker.ip, 1),
                            dst=Endpoint(cloud.ip, 9),
                            protocol=Protocol.UDP, payload_len=2))
        sim.run()
        # Routing was resolved at send time: the in-flight packet still
        # lands on the tap, the later one goes direct.
        assert [p.payload_len for p in intercepted] == [1]
        assert [p.payload_len for p in received] == [2]

    def test_reinstalled_tap_invalidates_cached_paths(self, sim):
        network, speaker, cloud, tap = self._fabric(sim)
        received, intercepted = [], []
        cloud.register_udp_handler(9, received.append)
        tap.intercept = intercepted.append  # type: ignore[assignment]

        def shoot(size):
            speaker.send(Packet(src=Endpoint(speaker.ip, 1),
                                dst=Endpoint(cloud.ip, 9),
                                protocol=Protocol.UDP, payload_len=size))
            sim.run()

        shoot(1)  # no tap: direct (and the path is now cached)
        network.install_tap(speaker.ip, tap)
        shoot(2)  # cache must have been invalidated by install_tap
        network.remove_tap(speaker.ip)
        shoot(3)  # and again by remove_tap
        assert [p.payload_len for p in received] == [1, 3]
        assert [p.payload_len for p in intercepted] == [2]

    def test_udp_any_shadows_per_port_handlers(self, sim):
        network, speaker, cloud, tap = self._fabric(sim)
        per_port, catch_all = [], []
        cloud.register_udp_handler(9, per_port.append)
        speaker.send(Packet(src=Endpoint(speaker.ip, 1),
                            dst=Endpoint(cloud.ip, 9),
                            protocol=Protocol.UDP, payload_len=1))
        sim.run()
        cloud.register_udp_any(catch_all.append)
        for port in (9, 10):  # registered port and an unregistered one
            speaker.send(Packet(src=Endpoint(speaker.ip, 1),
                                dst=Endpoint(cloud.ip, port),
                                protocol=Protocol.UDP, payload_len=port))
        sim.run()
        # Once the catch-all is installed it takes every UDP packet,
        # including ones a per-port handler would otherwise claim.
        assert [p.payload_len for p in per_port] == [1]
        assert sorted(p.payload_len for p in catch_all) == [9, 10]


class TestKernelByteIdentity:
    @pytest.mark.slow
    def test_guard_event_stream_identical_across_kernels(self):
        # The whole-PR invariant, end to end: the same scenario seed
        # must produce the same guard decisions, at the same simulated
        # times, on the optimized and the legacy kernel.
        from repro.experiments.bench_sim import _run_cell

        fast = _run_cell(False, seed=11, legit=6, malicious=4,
                         episode_gap=None)
        legacy = _run_cell(True, seed=11, legit=6, malicious=4,
                           episode_gap=None)
        assert fast[1] == legacy[1]  # guard event streams
        assert fast[2] == legacy[2]  # final simulated clock
        assert len(fast[1]) > 0
