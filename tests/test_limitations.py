"""The paper's acknowledged limitations, demonstrated (Section VII).

A faithful reproduction shows the scheme failing exactly where the
paper says it fails — these are regression tests for the *limitations*:

* the non-applicable scenario: the owner's phone is left charging next
  to the speaker while the owner is elsewhere and an attacker is near;
* proximity cannot distinguish a live guest *standing next to the
  owner*: if any registered device is near the speaker, anyone in the
  room can issue commands (the paper's trust model accepts this — the
  owner would notice).
"""

from __future__ import annotations

import pytest

from repro.attacks.replay import ReplayAttack
from repro.audio.speech import full_utterance_duration
from repro.audio.voiceprint import UtteranceSource
from repro.experiments.scenarios import build_scenario
from repro.speakers.base import InteractionOutcome


@pytest.fixture()
def scenario():
    return build_scenario(
        "house", "echo", deployment=0, seed=121,
        owner_count=1, with_floor_tracking=False,
    )


class TestNonApplicableScenario:
    def test_phone_charging_next_to_speaker_defeats_the_guard(self, scenario):
        """Paper Section VII: if (1) the phone charges near the speaker,
        (2) the owner is away, and (3) an attacker is near, the attack
        succeeds — the guard sees a high RSSI from the abandoned phone."""
        env = scenario.env
        owner = scenario.owners[0]
        phone = scenario.devices[0]

        # The phone stays on the table next to the speaker: model by
        # pinning the scanner's position provider to a fixed spot.
        charging_spot = env.speaker_beacon.position.offset(dx=0.5)
        phone.scanner.position_provider = lambda: charging_spot
        phone.scanner.body_blocked_provider = None  # nobody carries it

        # The owner leaves the house (far upstairs corner).
        owner.teleport(env.testbed.device_point(75).offset(dz=-1.0))
        env.sim.run_for(2.0)

        attack = ReplayAttack(env, env.rng.stream("limit"), victim=owner.voiceprint)
        rng = env.rng.stream("limit.cmd")
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        attack.launch(command.text, duration, env.testbed.device_point(3))
        env.sim.run_for(duration + 18.0)

        record = list(scenario.speaker.interactions.values())[-1]
        record.settle()
        # The known limitation: the attack executes.
        assert record.outcome is InteractionOutcome.EXECUTED

    def test_same_attack_blocked_when_phone_is_carried(self, scenario):
        """Control arm: with the phone on the owner, the attack dies."""
        env = scenario.env
        owner = scenario.owners[0]
        owner.teleport(env.testbed.device_point(75).offset(dz=-1.0))
        env.sim.run_for(2.0)
        attack = ReplayAttack(env, env.rng.stream("limit2"), victim=owner.voiceprint)
        rng = env.rng.stream("limit2.cmd")
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        attack.launch(command.text, duration, env.testbed.device_point(3))
        env.sim.run_for(duration + 18.0)
        record = list(scenario.speaker.interactions.values())[-1]
        record.settle()
        assert record.outcome is InteractionOutcome.BLOCKED


class TestGuestNextToOwner:
    def test_guest_command_accepted_when_owner_present(self, scenario):
        """Proximity proves *someone legitimate is nearby*, not who is
        speaking; a guest speaking while the owner stands there passes
        (and the paper argues the owner would simply intervene)."""
        env = scenario.env
        owner = scenario.owners[0]
        owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))
        env.sim.run_for(1.0)
        guest = env.add_person("guest", env.testbed.device_point(4).offset(dz=-1.0),
                               is_owner=False)
        rng = env.rng.stream("guest.cmd")
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        utterance = guest.speak(command.text, duration)
        assert utterance.source is UtteranceSource.LIVE_GUEST
        env.play_utterance(utterance, guest.device_position())
        env.sim.run_for(duration + 18.0)
        record = list(scenario.speaker.interactions.values())[-1]
        record.settle()
        assert record.outcome is InteractionOutcome.EXECUTED
