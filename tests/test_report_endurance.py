"""Tests for the consolidated report, hold endurance, and the
dual-speaker helper."""

from __future__ import annotations

import pytest

from repro.audio.speech import full_utterance_duration
from repro.errors import WorkloadError
from repro.experiments.hold_endurance import run_hold_endurance
from repro.experiments.report import ReportSection, ReproductionReport
from repro.experiments.scenarios import add_second_speaker, build_scenario

# Endurance sweeps simulate long holds across both actuators; they belong
# to the nightly full-suite run, not the per-push gate.
pytestmark = pytest.mark.slow


class TestHoldEndurance:
    def test_proxy_survives_long_holds(self):
        result = run_hold_endurance(holds=(2.0, 30.0), seed=29)
        proxy = [t for t in result.trials if t.actuator == "transparent proxy"]
        assert all(t.session_survived and t.executed_after_release for t in proxy)
        assert result.max_survivable_hold("transparent proxy") == 30.0

    def test_discard_is_unrecoverable(self):
        result = run_hold_endurance(holds=(2.0,), seed=31)
        dropped = [t for t in result.trials if t.actuator == "ack-and-discard"]
        assert all(not t.executed_after_release for t in dropped)
        assert result.max_survivable_hold("ack-and-discard") == 0.0

    def test_render_mentions_both_actuators(self):
        result = run_hold_endurance(holds=(2.0,), seed=29)
        text = result.render()
        assert "transparent proxy" in text and "ack-and-discard" in text


class TestReportContainer:
    def test_render_and_lookup(self):
        report = ReproductionReport(sections=[
            ReportSection("alpha", "body-a", 0.1),
            ReportSection("beta", "body-b", 0.2),
        ])
        text = report.render()
        assert "alpha" in text and "body-b" in text
        assert report.section("beta").text == "body-b"
        with pytest.raises(KeyError):
            report.section("gamma")


class TestDualSpeaker:
    def test_one_guard_two_speakers(self):
        scenario = build_scenario(
            "house", "echo", deployment=0, seed=111,
            owner_count=1, with_floor_tracking=False,
        )
        google = add_second_speaker(scenario, "google")
        env = scenario.env
        owner = scenario.owners[0]
        owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))
        rng = env.rng.stream("dual")
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        env.play_utterance(owner.speak(command.text, duration), owner.device_position())
        env.sim.run_for(duration + 20.0)
        echo_ok = any(r.executed_at for r in scenario.speaker.interactions.values())
        google_ok = any(r.executed_at for r in google.interactions.values())
        assert echo_ok and google_ok

    def test_second_echo_rejected(self):
        scenario = build_scenario(
            "house", "echo", deployment=0, seed=113,
            owner_count=1, calibrate=False, with_floor_tracking=False,
        )
        with pytest.raises(WorkloadError):
            add_second_speaker(scenario, "echo")

    def test_double_google_rejected(self):
        scenario = build_scenario(
            "house", "echo", deployment=0, seed=115,
            owner_count=1, calibrate=False, with_floor_tracking=False,
        )
        add_second_speaker(scenario, "google")
        with pytest.raises(WorkloadError):
            add_second_speaker(scenario, "google")
