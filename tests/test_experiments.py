"""Tests for the experiment runners (small scales; the full-scale
regenerations live in benchmarks/)."""

from __future__ import annotations

import pytest

from repro.audio.voiceprint import UtteranceSource
from repro.experiments.fig3 import group_spikes
from repro.experiments.fig6 import corpus_report
from repro.experiments.rssi_tables import PAPER_COUNTS, PAPER_TABLES
from repro.experiments.runner import run_rssi_experiment, score_interactions
from repro.experiments.scenarios import (
    _sensor_trigger_offset,
    build_scenario,
    train_trace_classifier,
)
from repro.experiments.workload import SevenDayWorkload
from repro.speakers.base import InteractionRecord


class TestScenarioBuilder:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_scenario("house", "echo", deployment=0, seed=81, owner_count=2)

    def test_full_wiring(self, scenario):
        assert scenario.speaker.connected
        assert scenario.guard is not None
        assert scenario.motion_sensor is not None
        assert scenario.trace_classifier is not None and scenario.trace_classifier.trained
        assert len(scenario.owners) == len(scenario.devices) == 2

    def test_thresholds_calibrated_per_device(self, scenario):
        assert set(scenario.calibrations) == {"phone1", "phone2"}
        for result in scenario.calibrations.values():
            assert -13.0 < result.threshold < -4.0

    def test_devices_registered(self, scenario):
        assert len(scenario.guard.registry) == 2

    def test_avs_tracked(self, scenario):
        state = scenario.guard.recognition.speaker_state(scenario.speaker.ip)
        assert state.avs_ip is not None

    def test_unknown_speaker_kind_rejected(self):
        from repro.errors import WorkloadError
        with pytest.raises(WorkloadError):
            build_scenario("house", "homepod")

    def test_office_defaults_to_watch(self):
        scenario = build_scenario(
            "office", "echo", seed=83, calibrate=False, with_floor_tracking=False,
        )
        assert scenario.devices[0].kind == "smartwatch"

    def test_without_guard(self):
        scenario = build_scenario(
            "house", "echo", seed=85, with_guard=False,
            calibrate=False, with_floor_tracking=False,
        )
        assert scenario.guard is None
        assert scenario.speaker.connected

    def test_sensor_trigger_offset_for_stair_routes(self):
        from repro.radio.testbeds import house_testbed
        testbed = house_testbed()
        up = _sensor_trigger_offset(testbed, "up")
        route1 = _sensor_trigger_offset(testbed, "route1")
        assert 0.0 < up < 4.0
        assert route1 == 0.0


class TestScoring:
    def _record(self, source, executed):
        record = InteractionRecord(
            interaction_id=1, text="x", source=source, speaker_label="a",
            started_at=0.0, speech_ends_at=1.0,
        )
        if executed:
            record.executed_at = 2.0
        record.settle()
        return record

    def test_attack_blocked_is_true_positive(self):
        matrix = score_interactions([self._record(UtteranceSource.REPLAY, False)])
        assert matrix.true_positive == 1

    def test_attack_executed_is_false_negative(self):
        matrix = score_interactions([self._record(UtteranceSource.REPLAY, True)])
        assert matrix.false_negative == 1

    def test_owner_executed_is_true_negative(self):
        matrix = score_interactions([self._record(UtteranceSource.LIVE_OWNER, True)])
        assert matrix.true_negative == 1

    def test_owner_blocked_is_false_positive(self):
        matrix = score_interactions([self._record(UtteranceSource.LIVE_OWNER, False)])
        assert matrix.false_positive == 1


class TestWorkload:
    def test_small_run_scores_well(self):
        result = run_rssi_experiment(
            "apartment", "echo", 0, seed=87, legit_count=12, malicious_count=8,
        )
        assert result.legit_total == 12
        assert result.malicious_total == 8
        assert result.matrix.accuracy >= 0.85

    def test_workload_respects_counts(self):
        scenario = build_scenario(
            "apartment", "echo", deployment=0, seed=89, owner_count=1,
        )
        workload = SevenDayWorkload(scenario)
        result = workload.run(legit_count=6, malicious_count=4)
        assert result.legit_issued == 6
        assert result.malicious_issued == 4
        assert result.skipped_unheard == 0
        assert len(result.episodes) == 10

    def test_away_points_exclude_stairs(self):
        scenario = build_scenario(
            "house", "echo", deployment=0, seed=91, owner_count=1,
            calibrate=False, with_floor_tracking=False,
        )
        workload = SevenDayWorkload(scenario)
        plan = scenario.env.testbed.plan
        rooms = {plan.point(n).room_name for n in workload._away_points}
        assert "stairwell" not in rooms


class TestPaperConstants:
    def test_paper_tables_cover_all_cells(self):
        for testbed in ("house", "apartment", "office"):
            assert set(PAPER_TABLES[testbed]) == set(PAPER_COUNTS[testbed])
            for (speaker, loc), (legit, malicious) in PAPER_COUNTS[testbed].items():
                assert legit > 0 and malicious > 0

    def test_paper_cell_strings_match_counts(self):
        for testbed, cells in PAPER_TABLES.items():
            for key, (legit_str, mal_str) in cells.items():
                legit_total = int(legit_str.split("/")[1])
                mal_total = int(mal_str.split("/")[1])
                assert (legit_total, mal_total) == PAPER_COUNTS[testbed][key]


class TestFigureHelpers:
    def test_group_spikes_by_idle_gap(self):
        events = [(0.0, 10), (0.5, 20), (5.0, 30), (5.1, 40)]
        spikes = group_spikes(events, idle_gap=2.5)
        assert len(spikes) == 2
        assert spikes[0].lengths == [10, 20]
        assert spikes[1].lengths == [30, 40]
        assert spikes[0].total_bytes == 30
        assert spikes[1].packet_count == 2

    def test_corpus_report_renders(self):
        text = corpus_report()
        assert "alexa" in text and "google" in text

    def test_trace_training_respects_overrides(self):
        scenario = build_scenario(
            "house", "echo", deployment=0, seed=93, owner_count=1,
            calibrate=False, with_floor_tracking=False,
        )
        classifier = train_trace_classifier(
            scenario, repetitions={"up": 3, "down": 3, "route1": 3,
                                   "route2": 2, "route3": 2},
        )
        assert classifier.trained
