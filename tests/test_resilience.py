"""Fault injection and the resilient decision path.

Covers the injector determinism contract, the ISSUE's decision-path
edge cases (all devices offline, retry succeeding on the final attempt,
degraded-cache expiry racing a late report, fail-open vs fail-closed at
100 % push loss), the ``pushes_sent`` accounting fix, and the
resilience experiment's same-seed reproducibility and retry dominance.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.metrics import percentile, summarize_resilience
from repro.core.config import VoiceGuardConfig
from repro.core.decision import DecisionContext, RssiDecisionMethod, Verdict
from repro.core.registry import DeviceRegistry
from repro.core.resilience import ProximityCache, ResilienceEventType
from repro.errors import ConfigError
from repro.experiments.resilience import run_resilience_cell
from repro.experiments.scenarios import build_scenario
from repro.experiments.workload import SevenDayWorkload
from repro.faults.plan import (
    ANY_DEVICE,
    FaultInjector,
    FaultPlan,
    OfflineWindow,
    offline_outage,
)
from repro.home.environment import HomeEnvironment
from repro.radio.geometry import Point
from repro.radio.testbeds import apartment_testbed
from repro.sim.simulator import Simulator

NEAR = Point(2.2, 4.2, 0)  # beside the apartment speaker
BENIGN_PLAN = FaultPlan()  # arms the injector without any faults


def make_world(fault_plan=None, **method_kwargs):
    """An apartment with two phone owners and a wired decision method."""
    env = HomeEnvironment(apartment_testbed(), deployment=0, seed=9,
                          fault_plan=fault_plan)
    alice = env.add_person("alice", NEAR)
    bob = env.add_person("bob", Point(9.0, 1.0, 0))  # far: bath, behind walls
    phone1 = env.add_smartphone("phone1", alice)
    phone2 = env.add_smartphone("phone2", bob)
    registry = DeviceRegistry()
    registry.register(phone1, threshold=-8.0)
    registry.register(phone2, threshold=-8.0)
    method = RssiDecisionMethod(
        env.sim, env.push, registry, env.speaker_beacon, **method_kwargs
    )
    return env, (alice, bob), (phone1, phone2), registry, method


def decide(env, method, horizon=8.0):
    results = []
    method.decide(
        DecisionContext(window_id=1, speaker_ip="x", requested_at=env.sim.now),
        results.append,
    )
    env.sim.run_for(horizon)
    assert results, "decision never resolved"
    return results[0]


# -- fault plan / injector ---------------------------------------------------
class TestFaultPlan:
    def test_probability_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(push_loss=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(report_loss=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(push_extra_delay=-1.0)

    def test_offline_window_validation_and_coverage(self):
        with pytest.raises(ConfigError):
            OfflineWindow("phone1", 5.0, 5.0)
        window = OfflineWindow("phone1", 10.0, 20.0)
        assert window.covers("phone1", 10.0)
        assert not window.covers("phone1", 20.0)  # half-open
        assert not window.covers("phone2", 15.0)
        outage = offline_outage(0.0, 1.0)
        assert outage.device == ANY_DEVICE
        assert outage.covers("anything", 0.5)

    def test_windows_normalized_to_tuple(self):
        plan = FaultPlan(offline_windows=[offline_outage(0.0, 1.0)])
        assert isinstance(plan.offline_windows, tuple)
        hash(plan)  # frozen + tuple-ized: usable as a cache key

    def test_inactive_injector_never_injects(self):
        sim = Simulator()
        injector = FaultInjector(sim, plan=None)
        assert not injector.active
        assert not injector.push_dropped("phone1")
        assert injector.push_extra_delay("phone1") == 0.0
        assert not injector.device_offline("phone1")
        assert injector.total_injected == 0

    def test_same_seed_same_fault_sequence(self):
        plan = FaultPlan(seed=42, push_loss=0.5, report_loss=0.3)
        rolls = []
        for _ in range(2):
            injector = FaultInjector(Simulator(), plan)
            rolls.append([
                (injector.push_dropped("d"), injector.report_dropped("d"))
                for _ in range(64)
            ])
        assert rolls[0] == rolls[1]
        assert any(push for push, _ in rolls[0])
        assert any(not push for push, _ in rolls[0])

    def test_channels_draw_independent_streams(self):
        # Enabling a second channel must not change the first channel's
        # sequence — each rolls its own seeded stream.
        base = FaultInjector(Simulator(), FaultPlan(seed=7, push_loss=0.4))
        both = FaultInjector(
            Simulator(), FaultPlan(seed=7, push_loss=0.4, scan_failure=0.4)
        )
        base_rolls = [base.push_dropped("d") for _ in range(64)]
        mixed_rolls = []
        for _ in range(64):
            both.scan_failed("s")  # interleaved draws on another channel
            mixed_rolls.append(both.push_dropped("d"))
        assert base_rolls == mixed_rolls

    def test_counts_and_events(self):
        sim = Simulator()
        injector = FaultInjector(sim, FaultPlan(seed=1, push_loss=1.0))
        assert injector.push_dropped("phone1")
        assert injector.count("push_loss") == 1
        assert injector.total_injected == 1
        assert injector.events[0].channel == "push_loss"
        assert injector.events[0].target == "phone1"


# -- push accounting (satellite: count only scheduled deliveries) -----------
class TestPushAccounting:
    def test_lost_push_not_counted_as_sent(self):
        env, _, _, _, method = make_world(fault_plan=BENIGN_PLAN)
        env.faults.push_dropped = lambda name: True  # script: lose everything
        result = decide(env, method)
        assert env.push.pushes_sent == 0
        assert env.push.pushes_lost == 2
        assert result.verdict is Verdict.TIMEOUT
        assert not result.reports

    def test_healthy_push_counted_once_scheduled(self):
        env, _, _, _, method = make_world()
        assert env.faults is None  # no plan -> no injector at all
        result = decide(env, method)
        assert env.push.pushes_sent == 2
        assert env.push.pushes_lost == 0
        assert result.verdict is Verdict.LEGITIMATE


# -- decision-path edge cases ------------------------------------------------
class TestDecisionResilience:
    def test_all_devices_offline_resolves_early(self):
        plan = FaultPlan(offline_windows=(offline_outage(0.0, 1e9),))
        env, _, _, _, method = make_world(fault_plan=plan, timeout=5.0)
        resolved_at = []
        results = []

        def on_result(result):
            resolved_at.append(env.sim.now)
            results.append(result)

        method.decide(
            DecisionContext(window_id=1, speaker_ip="x", requested_at=env.sim.now),
            on_result,
        )
        env.sim.run_for(8.0)
        assert results
        result = results[0]
        assert result.verdict is Verdict.TIMEOUT
        assert result.offline_devices == ["phone1", "phone2"]
        assert not result.reports
        # Resolved on the last NACK, not by burning the full timeout.
        kinds = [e.type for e in method.events]
        assert kinds.count(ResilienceEventType.DEVICE_OFFLINE) == 2
        assert ResilienceEventType.DECISION_TIMEOUT not in kinds
        assert resolved_at[0] < 5.0  # NACKs land within push delivery time

    def test_retry_succeeds_on_final_attempt(self):
        env, _, _, _, method = make_world(
            fault_plan=BENIGN_PLAN,
            timeout=12.0, push_retries=2, retry_base=0.5, retry_cap=2.0,
        )
        drops = {"phone1": 2, "phone2": 2}  # lose the first two attempts each

        def scripted_drop(name):
            if drops[name] > 0:
                drops[name] -= 1
                return True
            return False

        env.faults.push_dropped = scripted_drop
        result = decide(env, method, horizon=15.0)
        assert result.verdict is Verdict.LEGITIMATE
        assert result.satisfied_by == "phone1"
        assert result.retries >= 2  # phone1 needed both extra attempts
        retry_attempts = [
            e.attempt for e in method.events
            if e.type is ResilienceEventType.PUSH_RETRY and e.device_name == "phone1"
        ]
        assert retry_attempts == [2, 3]

    def test_offline_requery_next_best_device(self):
        plan = FaultPlan(offline_windows=(OfflineWindow("phone2", 0.0, 1e9),))
        env, _, _, _, method = make_world(fault_plan=plan, push_retries=1,
                                          retry_base=3.0, retry_cap=6.0)
        result = decide(env, method)
        assert result.verdict is Verdict.LEGITIMATE
        assert result.offline_devices == ["phone2"]
        kinds = [e.type for e in method.events]
        assert ResilienceEventType.DEVICE_OFFLINE in kinds
        requeried = [e.device_name for e in method.events
                     if e.type is ResilienceEventType.OFFLINE_REQUERY]
        assert requeried in ([], ["phone1"]) or "phone1" in requeried

    def test_degraded_cache_expiry_races_late_report(self):
        env, _, _, _, method = make_world(
            fault_plan=BENIGN_PLAN,
            timeout=0.2,  # shorter than any possible push+scan round trip
            proximity_cache_ttl=60.0,
        )
        # Query 1: the report can only arrive *after* the deadline — a
        # TIMEOUT verdict whose late report then refreshes the cache.
        first = decide(env, method)
        assert first.verdict is Verdict.TIMEOUT
        assert method.proximity_cache.entry("phone1") is not None

        # Query 2, inside the TTL, under total push loss: the cached
        # proximity stands in for live evidence.
        env.faults.push_dropped = lambda name: True
        second = decide(env, method)
        assert second.verdict is Verdict.LEGITIMATE
        assert second.degraded
        assert second.satisfied_by == "phone1"
        assert method.degraded_grants == 1

        # Query 3, after the TTL expires: the entry is stale, the grant
        # is refused, and the verdict falls back to TIMEOUT.
        env.sim.run_for(61.0)
        third = decide(env, method)
        assert third.verdict is Verdict.TIMEOUT
        assert not third.degraded
        kinds = [e.type for e in method.events]
        assert ResilienceEventType.DEGRADED_GRANT in kinds
        assert ResilienceEventType.DEGRADED_MISS in kinds

    def test_live_below_threshold_report_beats_cache(self):
        # A device that answered below threshold must not vouch from the
        # cache, however fresh its positive entry is.
        env, people, _, _, method = make_world(
            fault_plan=BENIGN_PLAN, timeout=6.0, proximity_cache_ttl=600.0,
        )
        method.proximity_cache.update("phone1", env.sim.now, True)
        method.proximity_cache.update("phone2", env.sim.now, True)
        people[0].teleport(Point(9.0, 1.0, 0))  # both owners now far away
        result = decide(env, method, horizon=10.0)
        assert result.verdict is Verdict.MALICIOUS
        assert not result.degraded
        assert len(result.reports) == 2

    def test_default_config_keeps_single_shot_protocol(self):
        env, _, _, _, method = make_world()
        assert method.push_retries == 0
        result = decide(env, method)
        assert result.retries == 0
        assert not method.events
        assert env.push.pushes_sent == 2  # exactly one push per device


class TestFailPolicyUnderTotalLoss:
    def _run(self, fail_open):
        config = VoiceGuardConfig(fail_open=fail_open)
        plan = FaultPlan(seed=5, push_loss=1.0)
        scenario = build_scenario("apartment", "echo", deployment=0, seed=11,
                                  owner_count=2, config=config, fault_plan=plan)
        SevenDayWorkload(scenario).run(3, 2)
        scenario.speaker.settle_all()
        return scenario

    def test_fail_open_releases_fail_closed_blocks(self):
        open_scenario = self._run(fail_open=True)
        closed_scenario = self._run(fail_open=False)
        for scenario in (open_scenario, closed_scenario):
            assert scenario.env.push.pushes_sent == 0
            assert scenario.env.push.pushes_lost > 0
            commands = scenario.guard.command_events()
            assert commands
            assert all(c.verdict is Verdict.TIMEOUT for c in commands)
        open_handler = open_scenario.guard.handler
        closed_handler = closed_scenario.guard.handler
        assert open_handler.commands_blocked == 0
        assert open_handler.commands_released > 0
        assert closed_handler.commands_released == 0
        assert closed_handler.commands_blocked > 0


# -- proximity cache / metrics ----------------------------------------------
class TestProximityCache:
    def test_zero_ttl_disables(self):
        cache = ProximityCache(ttl=0.0)
        cache.update("phone1", 1.0, True)
        assert not cache.enabled
        assert cache.fresh_proof(1.5) is None

    def test_keeps_freshest_entry_and_purges(self):
        cache = ProximityCache(ttl=10.0)
        cache.update("phone1", 5.0, True)
        cache.update("phone1", 3.0, False)  # older: ignored
        assert cache.entry("phone1") == (5.0, True)
        assert cache.fresh_proof(14.0) == "phone1"
        assert cache.fresh_proof(16.0) is None  # aged out
        assert cache.purge_stale(16.0) == 1
        assert cache.entry("phone1") is None

    def test_floor_check_applies_at_grant_time(self):
        cache = ProximityCache(ttl=10.0)
        cache.update("phone1", 5.0, True)
        assert cache.fresh_proof(6.0, lambda name: False) is None
        assert cache.fresh_proof(6.0, lambda name: True) == "phone1"


class TestMetrics:
    def test_percentile(self):
        assert math.isnan(percentile([], 50.0))
        assert percentile([3.0], 95.0) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 100.0) == 4.0
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_summarize_resilience(self):
        class Stub:
            def __init__(self, verdict, latency):
                self.verdict = verdict
                self.decision_latency = latency

        events = [
            Stub(Verdict.LEGITIMATE, 1.0),
            Stub(Verdict.LEGITIMATE, 2.0),
            Stub(Verdict.MALICIOUS, 3.0),
            Stub(Verdict.TIMEOUT, 5.0),
        ]
        counts = {"push_retry": 4, "offline_requery": 1,
                  "device_offline": 2, "degraded_grant": 1}
        summary = summarize_resilience(events, counts)
        assert summary.decisions == 4
        assert summary.timeouts == 1
        assert summary.degraded_grants == 1
        assert summary.live_grants == 1  # one of the two grants was degraded
        assert summary.retries == 5
        assert summary.offline_events == 2
        assert summary.availability == 0.75
        assert summary.latency_p50 == 2.5

    def test_availability_nan_when_no_decisions(self):
        assert math.isnan(summarize_resilience([]).availability)


# -- the resilience experiment ----------------------------------------------
class TestResilienceExperiment:
    def test_same_seed_reproduces_cell(self):
        cells = [
            run_resilience_cell("apartment", 0.3, "retry2", seed=7,
                                legit_count=6, malicious_count=5)
            for _ in range(2)
        ]
        assert cells[0].row() == cells[1].row()
        assert cells[0].faults_injected == cells[1].faults_injected > 0

    def test_retry_dominates_single_attempt_availability(self):
        single = run_resilience_cell("apartment", 0.5, "single", seed=7,
                                     legit_count=8, malicious_count=6)
        retry = run_resilience_cell("apartment", 0.5, "retry2", seed=7,
                                    legit_count=8, malicious_count=6)
        assert retry.summary.availability > single.summary.availability
        assert retry.summary.retries > 0
        assert retry.summary.timeouts < single.summary.timeouts

    def test_zero_loss_cell_runs_faultless(self):
        cell = run_resilience_cell("office", 0.0, "single", seed=3,
                                   legit_count=6, malicious_count=5)
        assert cell.faults_injected == 0
        assert cell.summary.timeouts == 0
        assert cell.summary.availability == 1.0
