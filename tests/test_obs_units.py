"""Unit tests for the observability layer's pieces.

The property and golden suites pin the end-to-end behaviour; these
tests exercise each exported surface in isolation — span lifecycle,
metric instruments, exporters, report rendering, snapshot plumbing —
plus the zero-command rate guards fixed alongside the layer.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.metrics import ConfusionMatrix
from repro.analysis.reporting import fmt_percent, render_metrics_snapshot
from repro.errors import ConfigError
from repro.experiments.parallel import collect_metric_snapshots
from repro.obs.export import (
    CLASSIFY_SPAN,
    DECISION_SPAN,
    HOLD_SPAN,
    PUSH_SPAN,
    WINDOW_SPAN,
    phase_breakdown,
    render_phase_table,
    render_waterfall,
    span_to_dict,
    spans_to_jsonl,
    write_spans_jsonl,
)
from repro.obs.metrics import MetricsRegistry, histogram_quantile, merge_snapshots
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, Observability, SpanTracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0


# ---------------------------------------------------------------------------
# Tracer / span lifecycle
# ---------------------------------------------------------------------------

def test_span_lifecycle_and_queries():
    clock = FakeClock()
    tracer = SpanTracer(clock)
    root = tracer.begin("root", window_id=7)
    clock.now = 1.0
    child = tracer.begin("child", parent=root).set(device="tv")
    child.event("retry", attempt=2)
    clock.now = 2.5
    child.finish(status="report")
    clock.now = 4.0
    child.finish(status="late")  # idempotent: end time must not move
    root.finish()

    assert root.start == 0.0 and root.end == 4.0 and root.duration == 4.0
    assert child.end == 2.5 and child.duration == 1.5
    assert child.attrs == {"device": "tv", "status": "late"}
    assert child.events[0].name == "retry" and child.events[0].time == 1.0
    assert tracer.roots() == [root]
    assert tracer.children_of(root) == [child]
    assert tracer.named("child") == [child]
    assert len(tracer) == 2


def test_span_context_manager_finishes_on_exit():
    clock = FakeClock()
    tracer = SpanTracer(clock)
    with tracer.span("phase") as span:
        clock.now = 3.0
    assert span.finished and span.duration == 3.0


def test_begin_with_null_parent_makes_a_root():
    tracer = SpanTracer(FakeClock())
    span = tracer.begin("orphan", parent=NULL_SPAN)
    assert span.parent_id is None
    assert tracer.roots() == [span]


def test_tracer_rejects_clockless_clock():
    with pytest.raises(ConfigError):
        SpanTracer(object())


def test_observability_modes():
    obs = Observability()
    assert obs.tracer is NULL_TRACER and not obs.tracing
    assert obs.metrics.counter("x") is obs.metrics.counter("x")

    traced = Observability(FakeClock(), tracing=True)
    assert traced.tracing and traced.tracer.enabled

    with pytest.raises(ConfigError):
        Observability(tracing=True)  # tracing needs a clock


def test_null_tracer_queries_are_empty():
    assert NULL_TRACER.begin("x") is NULL_SPAN
    with NULL_TRACER.span("y") as span:
        assert span is NULL_SPAN
    assert NULL_TRACER.roots() == []
    assert NULL_TRACER.children_of(NULL_SPAN) == []
    assert NULL_TRACER.named("x") == []
    assert len(NULL_TRACER) == 0


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def test_gauge_tracks_high_water():
    registry = MetricsRegistry()
    gauge = registry.gauge("held")
    gauge.inc(3)
    gauge.inc(2)
    gauge.dec(4)
    assert gauge.value == 1.0
    assert gauge.high_water == 5.0


def test_scope_prefixes_names():
    registry = MetricsRegistry()
    scope = registry.scope("proxy")
    assert scope.counter("flows").name == "proxy.flows"
    assert scope.counter("flows") is registry.counter("proxy.flows")
    assert scope.gauge("open").name == "proxy.open"
    assert scope.histogram("hold").name == "proxy.hold"


def test_histogram_quantile_from_snapshot():
    registry = MetricsRegistry()
    hist = registry.histogram("latency", edges=(1.0, 2.0, 4.0))
    for value in (0.5, 0.9, 1.5, 3.0, 9.0):
        hist.record(value)
    snap = registry.snapshot()["histograms"]["latency"]
    assert histogram_quantile(snap, 0.0) == 1.0  # first populated bucket edge
    assert histogram_quantile(snap, 0.5) == 2.0
    assert histogram_quantile(snap, 0.8) == 4.0
    assert histogram_quantile(snap, 1.0) == 9.0  # overflow -> recorded max
    with pytest.raises(ConfigError):
        histogram_quantile(snap, 1.5)
    empty = MetricsRegistry().histogram("e", edges=(1.0,))
    empty_snap = {"edges": list(empty.edges), "counts": list(empty.counts),
                  "count": 0, "total": 0.0, "min": None, "max": None}
    assert math.isnan(histogram_quantile(empty_snap, 0.5))


def test_merge_snapshots_gauges_and_none_entries():
    first, second = MetricsRegistry(), MetricsRegistry()
    first.gauge("open").set(3.0)
    second.gauge("open").set(5.0)
    second.gauge("open").set(2.0)  # high water stays 5
    merged = merge_snapshots([first.snapshot(), None, second.snapshot()])
    assert merged["gauges"]["open"] == {"value": 3.0, "high_water": 5.0}

    mismatched = MetricsRegistry()
    mismatched.histogram("h", edges=(1.0,)).record(0.5)
    other = MetricsRegistry()
    other.histogram("h", edges=(2.0,)).record(0.5)
    with pytest.raises(ConfigError):
        merge_snapshots([mismatched.snapshot(), other.snapshot()])


# ---------------------------------------------------------------------------
# Export: JSONL, phase breakdown, waterfall
# ---------------------------------------------------------------------------

def _pipeline_forest():
    """A hand-built span forest shaped like one guarded command."""
    clock = FakeClock()
    tracer = SpanTracer(clock)
    root = tracer.begin(WINDOW_SPAN, window_id=1, classification="command")
    classify = tracer.begin(CLASSIFY_SPAN, parent=root)
    clock.now = 0.4
    classify.finish()
    hold = tracer.begin(HOLD_SPAN, parent=root)
    decision = tracer.begin(DECISION_SPAN, parent=root, devices=2)
    slow = tracer.begin(PUSH_SPAN, parent=decision, device="slow", attempt=1)
    fast = tracer.begin(PUSH_SPAN, parent=decision, device="fast", attempt=1)
    clock.now = 0.7
    fast.finish(status="report", rssi=-42)
    clock.now = 1.2
    slow.finish(status="report", rssi=-60)
    decision.finish(verdict="legitimate", degraded=False, retries=0)
    decision.event("late-note")  # events may land after finish
    clock.now = 1.3
    hold.finish(records=4, outcome="released")
    root.finish(outcome="released")
    return tracer


def test_span_to_dict_and_jsonl(tmp_path):
    tracer = _pipeline_forest()
    root = tracer.roots()[0]
    payload = span_to_dict(root)
    assert payload["name"] == WINDOW_SPAN
    assert payload["attrs"]["window_id"] == 1
    assert payload["parent_id"] is None

    # Non-JSON attribute values fall back to str().
    odd = tracer.begin("odd", marker=object())
    assert isinstance(span_to_dict(odd)["attrs"]["marker"], str)

    text = spans_to_jsonl(tracer.spans)
    lines = text.splitlines()
    assert len(lines) == len(tracer)
    assert all(json.loads(line)["span_id"] for line in lines)

    target = write_spans_jsonl(tracer, tmp_path / "nested" / "spans.jsonl")
    assert target.read_text(encoding="utf-8") == text + "\n"


def test_phase_breakdown_reconstructs_fig4_timings():
    rows = phase_breakdown(_pipeline_forest())
    assert len(rows) == 1
    row = rows[0]
    assert row.window_id == 1
    assert row.classification == "command"
    assert row.recognition == pytest.approx(0.4)
    assert row.hold == pytest.approx(0.9)
    assert row.decision == pytest.approx(0.8)
    assert row.push_rtt == pytest.approx(0.3)  # fastest reporting device
    assert row.verdict == "legitimate"
    assert row.outcome == "released"

    table = render_phase_table(rows)
    assert "push rtt" in table and "0.300s" in table and "released" in table


def test_phase_breakdown_handles_missing_children():
    clock = FakeClock()
    tracer = SpanTracer(clock)
    root = tracer.begin(WINDOW_SPAN, window_id=2)
    clock.now = 1.0
    root.finish()  # no classify/hold/decision children at all
    row = phase_breakdown(tracer)[0]
    assert row.recognition is None and row.decision is None
    assert row.push_rtt is None and row.verdict == "-"
    assert "—" in render_phase_table([row])


def test_render_waterfall_filters_roots():
    tracer = _pipeline_forest()
    tracer.begin("proxy.flow", flow_id=9).finish(reason="closed")
    everything = render_waterfall(tracer)
    assert "proxy.flow" in everything and WINDOW_SPAN in everything
    commands_only = render_waterfall(tracer, roots=[WINDOW_SPAN])
    assert "proxy.flow" not in commands_only
    assert "#" in commands_only  # bars drawn
    assert "· late-note" in commands_only  # span events annotated


# ---------------------------------------------------------------------------
# Reporting and snapshot plumbing
# ---------------------------------------------------------------------------

def test_render_metrics_snapshot_tables_and_fallback():
    registry = MetricsRegistry()
    registry.counter("decision.queries").inc(3)
    registry.gauge("proxy.open").set(2.0)
    registry.histogram("decision.latency", edges=(1.0, 2.0)).record(1.5)
    registry.histogram("push.rtt", edges=(1.0,))  # empty -> dashes
    text = render_metrics_snapshot(registry.snapshot())
    assert "decision.queries" in text and "counter" in text
    assert "2 (high 2)" in text
    assert "decision.latency" in text and "1.5" in text
    assert "—" in text  # the empty histogram row

    assert "(no metrics recorded)" in render_metrics_snapshot({})


def test_collect_metric_snapshots_mixed_results():
    class WithMetrics:
        metrics = {"counters": {"n": 1}}

    class Without:
        metrics = None

    results = [WithMetrics(), Without(), {"metrics": {"counters": {"n": 2}}},
               {"other": 1}, None]
    snapshots = collect_metric_snapshots(results)
    assert snapshots == [{"counters": {"n": 1}}, {"counters": {"n": 2}}]
    merged = merge_snapshots(snapshots)
    assert merged["counters"]["n"] == 3


# ---------------------------------------------------------------------------
# Zero-command rate guards (bugfix riding along with the layer)
# ---------------------------------------------------------------------------

def test_confusion_matrix_renders_empty_without_nan():
    text = ConfusionMatrix().render()
    assert "nan" not in text.lower()
    assert "—" in text


def test_fmt_percent_nan_is_a_dash():
    assert fmt_percent(float("nan")) == "—"
    assert fmt_percent(0.5) == "50.00%"


# ---------------------------------------------------------------------------
# Quantile sketch (fleet latency percentiles)
# ---------------------------------------------------------------------------

class TestQuantileSketch:
    def _sketch(self, values, alpha=0.01):
        from repro.obs.metrics import QuantileSketch

        sketch = QuantileSketch(alpha)
        for value in values:
            sketch.add(value)
        return sketch

    def test_relative_error_bound(self):
        import random

        rng = random.Random(5)
        values = sorted(rng.uniform(0.5, 40.0) for _ in range(5000))
        sketch = self._sketch(values, alpha=0.01)
        for q in (0.05, 0.5, 0.9, 0.99):
            exact = values[max(0, math.ceil(q * len(values)) - 1)]
            approx = sketch.quantile(q)
            assert abs(approx - exact) <= 0.011 * exact

    def test_merge_matches_all_at_once(self):
        left = self._sketch([1.0, 2.0, 3.0, 100.0])
        right = self._sketch([0.5, 4.0, 0.0, 2.5])
        combined = self._sketch([1.0, 2.0, 3.0, 100.0, 0.5, 4.0, 0.0, 2.5])
        left.merge(right)
        assert left.to_dict() == combined.to_dict()

    def test_merge_alpha_mismatch_rejected(self):
        from repro.obs.metrics import QuantileSketch

        with pytest.raises(ConfigError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_negative_value_rejected(self):
        from repro.obs.metrics import QuantileSketch

        with pytest.raises(ConfigError):
            QuantileSketch().add(-1.0)

    def test_empty_quantile_is_nan(self):
        from repro.obs.metrics import QuantileSketch

        assert math.isnan(QuantileSketch().quantile(0.5))

    def test_roundtrip_through_dict(self):
        from repro.obs.metrics import QuantileSketch

        sketch = self._sketch([0.0, 1.5, 2.5, 9.0])
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.to_dict() == sketch.to_dict()
        assert clone.quantile(0.9) == sketch.quantile(0.9)

    def test_zero_values_tracked(self):
        sketch = self._sketch([0.0, 0.0, 5.0])
        assert sketch.quantile(0.5) == 0.0


def test_collect_metric_snapshots_warns_on_dropped_results(caplog):
    import logging

    results = [{"metrics": {"counters": {"n": 1}}}, {"other": 1}, None]
    with caplog.at_level(logging.WARNING, logger="repro.experiments.parallel"):
        snapshots = collect_metric_snapshots(results)
    assert snapshots == [{"counters": {"n": 1}}]
    messages = [r.getMessage() for r in caplog.records]
    assert any("2 of 3" in m for m in messages)


def test_collect_metric_snapshots_all_present_is_silent(caplog):
    import logging

    results = [{"metrics": {"counters": {"n": 1}}}]
    with caplog.at_level(logging.WARNING, logger="repro.experiments.parallel"):
        collect_metric_snapshots(results)
    assert not caplog.records
