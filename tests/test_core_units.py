"""Unit tests for the guard's sub-modules: config, registry, decision,
floor classifier, threshold calibration, recognition classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import VoiceGuardConfig
from repro.core.decision import (
    DecisionContext,
    DecisionModule,
    RssiDecisionMethod,
    Verdict,
)
from repro.core.events import CommandEvent, GuardLog, TrafficClass
from repro.core.floor import FloorLevelTracker, TraceClassifier, TraceFeatures
from repro.core.recognition import classify_echo_lengths, finalize_echo_lengths
from repro.core.registry import DeviceRegistry
from repro.core.threshold import ThresholdCalibrator, perimeter_route
from repro.errors import ConfigError, RegistrationError
from repro.home.environment import HomeEnvironment
from repro.radio.geometry import Point
from repro.radio.testbeds import apartment_testbed, house_testbed


class TestConfig:
    def test_defaults_valid(self):
        config = VoiceGuardConfig()
        assert config.idle_gap == 2.5
        assert config.classification_max_packets == 7

    @pytest.mark.parametrize("kwargs", [
        {"idle_gap": 0.0},
        {"classification_timeout": -1.0},
        {"classification_max_packets": 1},
        {"decision_timeout": 0.0},
        {"decision_timeout": 10.0, "max_hold": 5.0},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            VoiceGuardConfig(**kwargs)


class TestEchoClassifier:
    def test_marker_decides_command_early(self):
        assert classify_echo_lengths([277, 138]) is TrafficClass.COMMAND
        assert classify_echo_lengths([75]) is TrafficClass.COMMAND

    def test_marker_beyond_first_five_ignored(self):
        lengths = [300, 131, 113, 121, 96, 138, 50]
        assert classify_echo_lengths(lengths) is not TrafficClass.COMMAND

    def test_fixed_pattern_decides_command(self):
        for pattern in ((131, 277, 131, 113), (131, 113, 113, 113), (131, 121, 277, 131)):
            assert classify_echo_lengths([277, *pattern]) is TrafficClass.COMMAND

    def test_fixed_pattern_needs_first_packet_in_range(self):
        assert classify_echo_lengths([100, 131, 277, 131, 113, 50, 50]) is TrafficClass.UNKNOWN

    def test_pair_decides_response(self):
        assert classify_echo_lengths([55, 61, 77, 33]) is TrafficClass.RESPONSE

    def test_pair_as_sixth_and_seventh(self):
        lengths = [55, 61, 89, 97, 105, 77, 33]
        assert classify_echo_lengths(lengths) is TrafficClass.RESPONSE

    def test_pair_must_be_adjacent(self):
        assert classify_echo_lengths([77, 55, 33, 61, 89, 97, 105]) is TrafficClass.UNKNOWN

    def test_undecided_until_enough_packets(self):
        assert classify_echo_lengths([300, 131]) is None

    def test_unknown_after_seven(self):
        assert classify_echo_lengths([55, 61, 89, 97, 105, 126, 55]) is TrafficClass.UNKNOWN

    def test_finalize_defaults_to_unknown(self):
        assert finalize_echo_lengths([300]) is TrafficClass.UNKNOWN
        assert finalize_echo_lengths([55, 77, 33]) is TrafficClass.RESPONSE


class TestRegistry:
    def test_register_and_lookup(self, sim):
        registry = DeviceRegistry()
        device = _FakeDevice("phone")
        entry = registry.register(device, threshold=-8.0)
        assert entry.threshold == -8.0
        assert "phone" in registry
        assert len(registry) == 1

    def test_unapproved_registration_rejected(self):
        registry = DeviceRegistry()
        with pytest.raises(RegistrationError):
            registry.register(_FakeDevice("attacker"), -8.0, approved_by_owner=False)

    def test_duplicate_rejected(self):
        registry = DeviceRegistry()
        registry.register(_FakeDevice("phone"), -8.0)
        with pytest.raises(RegistrationError):
            registry.register(_FakeDevice("phone"), -9.0)

    def test_unregister(self):
        registry = DeviceRegistry()
        registry.register(_FakeDevice("phone"), -8.0)
        registry.unregister("phone")
        assert "phone" not in registry
        with pytest.raises(RegistrationError):
            registry.unregister("phone")

    def test_update_threshold(self):
        registry = DeviceRegistry()
        registry.register(_FakeDevice("phone"), -8.0)
        registry.update_threshold("phone", -6.5)
        assert registry.get("phone").threshold == -6.5


class _FakeDevice:
    def __init__(self, name):
        self.name = name


class TestDecisionMethod:
    @pytest.fixture
    def world(self):
        env = HomeEnvironment(apartment_testbed(), deployment=0, seed=9)
        person = env.add_person("alice", Point(2, 4, 0))
        phone = env.add_smartphone("phone", person)
        registry = DeviceRegistry()
        registry.register(phone, threshold=-8.0)
        method = RssiDecisionMethod(
            env.sim, env.push, registry, env.speaker_beacon, timeout=5.0,
        )
        return env, person, phone, registry, method

    def _decide(self, env, method):
        results = []
        method.decide(
            DecisionContext(window_id=1, speaker_ip="x", requested_at=env.sim.now),
            results.append,
        )
        env.sim.run_for(8.0)
        assert results
        return results[0]

    def test_near_owner_is_legitimate(self, world):
        env, person, phone, registry, method = world
        person.teleport(Point(2.2, 4.2, 0))
        result = self._decide(env, method)
        assert result.verdict is Verdict.LEGITIMATE
        assert result.satisfied_by == "phone"

    def test_far_owner_is_malicious(self, world):
        env, person, phone, registry, method = world
        person.teleport(Point(9.0, 1.0, 0))  # bath, behind walls
        result = self._decide(env, method)
        assert result.verdict is Verdict.MALICIOUS
        assert result.reports

    def test_no_devices_is_malicious(self, world):
        env, person, phone, registry, method = world
        registry.unregister("phone")
        result = self._decide(env, method)
        assert result.verdict is Verdict.MALICIOUS

    def test_multi_user_or_rule(self, world):
        env, person, phone, registry, method = world
        person.teleport(Point(9.0, 1.0, 0))  # first owner away
        other = env.add_person("bob", Point(2.0, 4.2, 0))  # second near
        registry.register(env.add_smartphone("phone2", other), threshold=-8.0)
        result = self._decide(env, method)
        assert result.verdict is Verdict.LEGITIMATE
        assert result.satisfied_by == "phone2"

    def test_floor_veto_blocks_despite_rssi(self, world):
        env, person, phone, registry, method = world
        person.teleport(Point(2.2, 4.2, 0))
        method.floor_check = lambda name: False
        result = self._decide(env, method)
        assert result.verdict is Verdict.MALICIOUS
        assert "phone" in result.floor_vetoed

    def test_decision_module_counts(self, world):
        env, person, phone, registry, method = world
        module = DecisionModule(method)
        module.decide(
            DecisionContext(window_id=1, speaker_ip="x", requested_at=0.0),
            lambda r: None,
        )
        assert module.decisions_made == 1


class TestTraceClassifier:
    def _features(self, slope, intercept, n=10, spread=0.05):
        rng = np.random.default_rng(1)
        return [
            TraceFeatures(slope + rng.normal(0, spread), intercept + rng.normal(0, spread * 10))
            for _ in range(n)
        ]

    @pytest.fixture
    def trained(self):
        classifier = TraceClassifier()
        classifier.fit({
            "up": self._features(-1.7, -10),
            "down": self._features(2.1, -20),
            "route1": self._features(0.0, -3),
            "route2": self._features(-1.6, -12),
            "route3": self._features(1.6, -18),
        })
        return classifier

    def test_flat_slope_is_route1(self, trained):
        assert trained.classify(TraceFeatures(0.3, -25.0)) == "route1"

    def test_slope_gate_matches_paper(self, trained):
        # Paper: |slope| < 1 means in-room movement.
        assert trained.classify(TraceFeatures(0.99, -20)) == "route1"
        assert trained.classify(TraceFeatures(1.01, -18)) != "route1"

    def test_up_down_classified(self, trained):
        assert trained.classify(TraceFeatures(-1.72, -10.2)) == "up"
        assert trained.classify(TraceFeatures(2.05, -20.3)) == "down"

    def test_routes_2_3_separated_by_intercept(self, trained):
        assert trained.classify(TraceFeatures(-1.65, -12.1)) == "route2"
        assert trained.classify(TraceFeatures(1.7, -18.2)) == "route3"

    def test_untrained_gate_only(self):
        classifier = TraceClassifier()
        assert classifier.classify(TraceFeatures(0.2, -5)) == "route1"
        assert classifier.classify(TraceFeatures(-2.0, -5)) == "up"
        assert classifier.classify(TraceFeatures(2.0, -5)) == "down"

    def test_empty_training_rejected(self):
        with pytest.raises(ConfigError):
            TraceClassifier().fit({})

    def test_route_without_traces_rejected(self):
        with pytest.raises(ConfigError):
            TraceClassifier().fit({"up": []})

    def test_invalid_gate_rejected(self):
        with pytest.raises(ConfigError):
            TraceClassifier(slope_gate=0.0)


class TestFloorTracker:
    @pytest.fixture
    def tracked(self):
        env = HomeEnvironment(house_testbed(), deployment=0, seed=11)
        person = env.add_person("alice", Point(2, 4, 0))
        phone = env.add_smartphone("phone", person)
        classifier = TraceClassifier()  # gate-only
        tracker = FloorLevelTracker(
            env.sim, env.speaker_beacon, classifier,
            speaker_floor=0, floor_count=2,
        )
        tracker.track(phone)
        return env, person, phone, tracker

    def test_initial_floor_is_speaker_floor(self, tracked):
        env, person, phone, tracker = tracked
        assert tracker.floor_of("phone") == 0
        assert tracker.floor_ok("phone")

    def test_unknown_device_passes(self, tracked):
        env, person, phone, tracker = tracked
        assert tracker.floor_ok("stranger")

    def test_up_walk_updates_floor(self, tracked):
        env, person, phone, tracker = tracked
        route = env.testbed.routes["up"]
        person.follow(route)
        env.sim.run_for(1.5)
        tracker.on_motion(env.sim.now)
        env.sim.run_for(12.0)
        assert tracker.floor_of("phone") == 1
        assert not tracker.floor_ok("phone")
        assert tracker.trace_events[-1].label == "up"

    def test_stationary_trace_keeps_floor(self, tracked):
        env, person, phone, tracker = tracked
        tracker.on_motion(env.sim.now)
        env.sim.run_for(12.0)
        assert tracker.floor_of("phone") == 0
        assert tracker.trace_events[-1].label == "route1"

    def test_floor_clamped_to_building(self, tracked):
        env, person, phone, tracker = tracked
        tracker._floors["phone"] = 0
        # Fake two successive "down" classifications.
        tracker.classifier.classify = lambda f: "down"  # type: ignore[assignment]
        tracker.on_motion(env.sim.now)
        env.sim.run_for(12.0)
        assert tracker.floor_of("phone") == 0  # clamped at ground

    def test_concurrent_motion_does_not_double_record(self, tracked):
        env, person, phone, tracker = tracked
        tracker.on_motion(env.sim.now)
        tracker.on_motion(env.sim.now)  # second event mid-recording
        env.sim.run_for(12.0)
        assert len(tracker.trace_events) == 1


class TestThresholdCalibration:
    def test_calibration_walk_produces_threshold(self):
        env = HomeEnvironment(apartment_testbed(), deployment=0, seed=13)
        person = env.add_person("alice", Point(2, 4, 0))
        phone = env.add_smartphone("phone", person)
        room = env.testbed.speaker_room(0)
        result = ThresholdCalibrator(env).calibrate(phone, room)
        assert result.sample_count > 10
        assert result.threshold == min(result.samples)
        # In the paper's scale the room walk bottoms out around -6..-10.
        assert -13.0 < result.threshold < -4.0

    def test_perimeter_route_stays_in_room(self):
        tb = apartment_testbed()
        room = tb.speaker_room(0)
        route = perimeter_route(room, inset=0.5)
        for t in np.linspace(0, route.duration, 30):
            p = route.position_at(float(t))
            assert room.x0 <= p.x <= room.x1
            assert room.y0 <= p.y <= room.y1

    def test_perimeter_route_rejects_tiny_room(self):
        from repro.radio.floorplan import Room
        tiny = Room("tiny", 0, 0, 0.5, 0.5, floor=0)
        with pytest.raises(ConfigError):
            perimeter_route(tiny)


class TestGuardLog:
    def test_log_filters(self):
        log = GuardLog()
        a = log.add(CommandEvent(1, 1, "ip", "tcp", opened_at=1.0))
        a.classification = TrafficClass.COMMAND
        b = log.add(CommandEvent(2, 1, "ip", "tcp", opened_at=2.0))
        b.classification = TrafficClass.RESPONSE
        assert len(log) == 2
        assert log.commands() == [a]
        assert log.between(1.5, 3.0) == [b]

    def test_event_derived_metrics(self):
        event = CommandEvent(1, 1, "ip", "tcp", opened_at=10.0)
        assert event.hold_duration is None
        assert event.decision_latency is None
        event.verdict_at = 11.5
        event.released_at = 11.6
        assert event.decision_latency == pytest.approx(1.5)
        assert event.hold_duration == pytest.approx(1.6)
