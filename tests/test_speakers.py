"""Speaker traffic-model tests: signatures, interactions, clouds.

Integration-level behaviour (through the network and guard) is covered
in test_integration.py; these tests pin the traffic *grammar* itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audio.speech import full_utterance_duration
from repro.core.recognition import classify_echo_lengths
from repro.core.events import TrafficClass
from repro.experiments.scenarios import build_scenario
from repro.speakers import signatures as sig
from repro.speakers.base import InteractionOutcome
from repro.speakers.interaction import EchoTrafficModel, GoogleTrafficModel


@pytest.fixture
def echo_model(rng):
    return EchoTrafficModel(rng)


class TestSignatureConstants:
    def test_avs_signature_matches_paper(self):
        assert sig.AVS_CONNECT_SIGNATURE == (
            63, 33, 653, 131, 73, 131, 188, 73, 131, 73, 131, 73, 131, 77, 33, 33,
        )

    def test_heartbeat_matches_paper(self):
        assert sig.HEARTBEAT_LEN == 41
        assert sig.HEARTBEAT_PERIOD == 30.0

    def test_other_signatures_differ_from_avs(self):
        for domain, signature in sig.OTHER_AMAZON_SIGNATURES.items():
            assert tuple(signature) != sig.AVS_CONNECT_SIGNATURE[: len(signature)], domain

    def test_phase_markers(self):
        assert sig.PHASE1_MARKERS == (138, 75)
        assert sig.PHASE2_MARKER_PAIR == (77, 33)

    def test_filler_pools_avoid_markers(self):
        assert not set(sig.PHASE1_MARKERS) & set(sig.PHASE1_FILLER_POOL)
        assert not set(sig.PHASE2_MARKER_PAIR) & set(sig.PHASE2_PREFIX_POOL)
        assert not set(sig.PHASE1_MARKERS) & set(sig.PHASE2_PREFIX_POOL)


class TestEchoTrafficModel:
    def test_marker_variant_has_marker_in_first_five(self, rng):
        model = EchoTrafficModel(rng, anomalous_rate=0.0, marker_rate=1.0)
        for _ in range(30):
            script = model.command_phase(3.0)
            first5 = [r.length for r in script.records[:5]]
            assert any(length in sig.PHASE1_MARKERS for length in first5)
            assert script.variant == "marker"

    def test_fixed_variant_matches_a_fixed_pattern(self, rng):
        model = EchoTrafficModel(rng, anomalous_rate=0.0, marker_rate=0.0)
        for _ in range(30):
            script = model.command_phase(3.0)
            lengths = [r.length for r in script.records[:5]]
            assert sig.PHASE1_FIRST_RANGE[0] <= lengths[0] <= sig.PHASE1_FIRST_RANGE[1]
            assert tuple(lengths[1:5]) in sig.PHASE1_FIXED_PATTERNS

    def test_anomalous_variant_evades_recognizer(self, rng):
        model = EchoTrafficModel(rng, anomalous_rate=1.0)
        for _ in range(30):
            script = model.command_phase(3.0)
            lengths = [r.length for r in script.records[:7]]
            assert classify_echo_lengths(lengths) in (TrafficClass.UNKNOWN, None)

    def test_command_phase_covers_speech_plus_upload(self, echo_model):
        script = echo_model.command_phase(4.0)
        assert script.duration > 4.0  # upload spike comes after speech
        assert len(script.records) > 10

    def test_upload_records_are_large(self, echo_model):
        script = echo_model.command_phase(3.0)
        tail = [r.length for r in script.records[-4:]]
        low, high = sig.AUDIO_RECORD_RANGE
        assert all(low <= length <= high for length in tail)

    def test_record_offsets_monotonic(self, echo_model):
        script = echo_model.command_phase(5.0)
        offsets = [r.offset for r in script.records]
        assert offsets == sorted(offsets)

    def test_response_spike_has_marker_pair_in_first_seven(self, echo_model):
        for _ in range(50):
            spike = echo_model.response_spike()
            lengths = [r.length for r in spike[: sig.PHASE2_MARKER_MAX_INDEX]]
            found = any(
                (a, b) == sig.PHASE2_MARKER_PAIR
                for a, b in zip(lengths, lengths[1:])
            )
            assert found

    def test_response_plan_distribution(self, rng):
        model = EchoTrafficModel(rng)
        counts = [len(model.response_plan()) for _ in range(600)]
        mean = float(np.mean(counts))
        assert 1.0 <= mean <= 1.3  # paper saw ~1.1 response spikes/invocation
        assert max(counts) <= 3

    def test_forced_response_segments(self, echo_model):
        echo_model.forced_response_segments = [8, 9, 8]
        plan = echo_model.response_plan()
        assert [seg.words for seg in plan] == [8, 9, 8]

    def test_invalid_anomalous_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            EchoTrafficModel(rng, anomalous_rate=1.5)


class TestGoogleTrafficModel:
    def test_transport_mix(self, rng):
        model = GoogleTrafficModel(rng)
        picks = [model.pick_transport() for _ in range(500)]
        quic_fraction = picks.count("quic") / len(picks)
        assert 0.3 < quic_fraction < 0.6

    def test_upload_script_nonempty_and_ordered(self, rng):
        model = GoogleTrafficModel(rng)
        script = model.command_upload(3.0)
        assert len(script) >= 4
        offsets = [r.offset for r in script]
        assert offsets == sorted(offsets)


class TestEchoDotLifecycle:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_scenario(
            "house", "echo", deployment=0, seed=31,
            owner_count=1, with_floor_tracking=False, calibrate=False,
        )

    def test_boot_connects_and_signs(self, scenario):
        assert scenario.speaker.connected
        state = scenario.guard.recognition.speaker_state(scenario.speaker.ip)
        assert state.avs_ip is not None

    def test_heartbeats_flow(self, scenario):
        before = scenario.avs_cloud.stats.heartbeats_answered
        scenario.env.sim.run_for(65.0)
        assert scenario.avs_cloud.stats.heartbeats_answered >= before + 2

    def test_interaction_executes_and_responds(self, scenario):
        env = scenario.env
        owner = scenario.owners[0]
        owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))
        command = scenario.corpus.sample(env.rng.stream("t"))
        duration = full_utterance_duration(command, env.rng.stream("t"))
        utterance = owner.speak(command.text, duration)
        env.play_utterance(utterance, owner.device_position())
        env.sim.run_for(duration + 20.0)
        records = [r for r in scenario.speaker.interactions.values()
                   if r.text == command.text]
        assert records and records[-1].outcome is InteractionOutcome.EXECUTED
        assert records[-1].responded_at is not None

    def test_reconnect_after_abort(self, scenario):
        env = scenario.env
        before = scenario.speaker.reconnect_count
        scenario.speaker._conn.abort("test-chaos")
        env.sim.run_for(6.0)
        assert scenario.speaker.reconnect_count == before + 1
        assert scenario.speaker.connected


class TestGoogleHomeLifecycle:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_scenario(
            "house", "google", deployment=0, seed=33,
            owner_count=1, with_floor_tracking=False, calibrate=False,
        )

    def test_idle_speaker_produces_no_sessions(self, scenario):
        assert scenario.speaker.sessions_opened == 0

    def test_command_opens_session_and_executes(self, scenario):
        env = scenario.env
        owner = scenario.owners[0]
        owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))
        for _ in range(4):  # cover both transports probabilistically
            command = scenario.corpus.sample(env.rng.stream("g"))
            duration = full_utterance_duration(command, env.rng.stream("g"))
            utterance = owner.speak(command.text, duration)
            env.play_utterance(utterance, owner.device_position())
            env.sim.run_for(duration + 20.0)
        records = scenario.speaker.settle_all()
        executed = [r for r in records if r.outcome is InteractionOutcome.EXECUTED]
        assert len(executed) == 4
        assert scenario.speaker.sessions_opened == 4

    def test_dns_precedes_every_session(self, scenario):
        # The Mini resolves www.google.com for each on-demand session.
        assert scenario.speaker.dns.queries_sent >= scenario.speaker.sessions_opened
