"""Tests for the parallel experiment engine: determinism across worker
counts, the on-disk result cache, crash surfacing, seed derivation, and
the NaN-free table rendering that rides along with it."""

from __future__ import annotations

import os

import pytest

from repro.analysis.metrics import ConfusionMatrix
from repro.analysis.reporting import fmt_percent, render_task_timings
from repro.errors import ExperimentError
from repro.experiments.parallel import (
    ExperimentEngine,
    ExperimentTask,
    code_version,
    derive_seed,
)
from repro.experiments.runner import RssiExperimentResult


# Module-level task functions: the pool pickles tasks by reference.

def _square(value, offset=0):
    return value * value + offset


def _touch_and_square(value, marker_dir):
    """Leaves a marker file per execution so cache hits are observable."""
    count = len(os.listdir(marker_dir))
    with open(os.path.join(marker_dir, f"exec-{count}"), "w"):
        pass
    return value * value


def _crash(code):
    os._exit(code)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, "table", "echo", 0) == derive_seed(3, "table", "echo", 0)

    def test_distinct_per_label(self):
        seeds = {derive_seed(3, "cell", i) for i in range(50)}
        assert len(seeds) == 50

    def test_distinct_per_base(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_in_32_bit_range(self):
        for base in (0, 7, 2**40):
            seed = derive_seed(base, "y")
            assert 0 <= seed < 2**32


class TestEngineBasics:
    def test_serial_preserves_order(self):
        engine = ExperimentEngine(workers=1)
        tasks = [ExperimentTask(fn=_square, args=(i,)) for i in range(5)]
        assert engine.run(tasks) == [0, 1, 4, 9, 16]

    def test_pool_preserves_order(self):
        engine = ExperimentEngine(workers=3)
        tasks = [ExperimentTask(fn=_square, args=(i,), label=f"sq/{i}")
                 for i in range(7)]
        assert engine.run(tasks) == [i * i for i in range(7)]

    def test_timings_recorded(self):
        engine = ExperimentEngine(workers=1)
        engine.run([ExperimentTask(fn=_square, args=(2,), label="one"),
                    ExperimentTask(fn=_square, args=(3,), label="two")])
        assert [t.label for t in engine.timings] == ["one", "two"]
        assert all(not t.cache_hit for t in engine.timings)
        text = render_task_timings(engine.timings)
        assert "one" in text and "2 tasks" in text

    def test_negative_workers_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentEngine(workers=-1)

    def test_workers_zero_means_cpu_count(self):
        engine = ExperimentEngine(workers=0)
        assert engine.workers == (os.cpu_count() or 1)

    def test_default_label_is_function_name(self):
        assert ExperimentTask(fn=_square).label == "_square"


class TestCache:
    def test_cache_hit_skips_execution(self, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        cache = tmp_path / "cache"
        task = ExperimentTask(fn=_touch_and_square, args=(4, str(markers)))
        first = ExperimentEngine(workers=1, use_cache=True, cache_dir=cache)
        assert first.run([task]) == [16]
        assert len(list(markers.iterdir())) == 1
        second = ExperimentEngine(workers=1, use_cache=True, cache_dir=cache)
        assert second.run([task]) == [16]
        assert len(list(markers.iterdir())) == 1  # not re-executed
        assert second.cache_hits == 1
        assert second.timings[0].cache_hit

    def test_cache_disabled_reexecutes(self, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        task = ExperimentTask(fn=_touch_and_square, args=(4, str(markers)))
        for _ in range(2):
            engine = ExperimentEngine(workers=1, use_cache=False,
                                      cache_dir=tmp_path / "cache")
            engine.run([task])
        assert len(list(markers.iterdir())) == 2

    def test_key_depends_on_arguments(self):
        a = ExperimentTask(fn=_square, args=(1,))
        b = ExperimentTask(fn=_square, args=(2,))
        c = ExperimentTask(fn=_square, args=(1,), kwargs={"offset": 5})
        assert a.cache_key() == ExperimentTask(fn=_square, args=(1,)).cache_key()
        assert len({a.cache_key(), b.cache_key(), c.cache_key()}) == 3

    def test_key_folds_in_code_version(self):
        task = ExperimentTask(fn=_square, args=(1,))
        key = task.cache_key()
        import repro.experiments.parallel as parallel_module
        original = parallel_module._code_version_cache
        try:
            parallel_module._code_version_cache = "different-code"
            assert task.cache_key() != key
        finally:
            parallel_module._code_version_cache = original

    def test_corrupt_entry_recomputed(self, tmp_path):
        cache = tmp_path / "cache"
        task = ExperimentTask(fn=_square, args=(6,))
        engine = ExperimentEngine(workers=1, use_cache=True, cache_dir=cache)
        assert engine.run([task]) == [36]
        (entry,) = list(cache.iterdir())
        entry.write_bytes(b"not a pickle")
        again = ExperimentEngine(workers=1, use_cache=True, cache_dir=cache)
        assert again.run([task]) == [36]

    def test_code_version_is_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16


class TestCrashSurfacing:
    def test_crashed_worker_raises_clear_error(self):
        engine = ExperimentEngine(workers=2)
        tasks = [ExperimentTask(fn=_crash, args=(3,), label="boom/a"),
                 ExperimentTask(fn=_crash, args=(3,), label="boom/b")]
        with pytest.raises(ExperimentError, match="worker crashed.*boom"):
            engine.run(tasks)

    def test_task_exception_propagates_serially(self):
        def bad():
            raise ValueError("broken task")

        engine = ExperimentEngine(workers=1)
        with pytest.raises(ValueError, match="broken task"):
            engine.run([ExperimentTask(fn=bad)])


class TestRssiTableParallel:
    SCALE = 0.1

    @pytest.fixture(scope="class")
    def serial(self):
        from repro.experiments.rssi_tables import run_rssi_table

        return run_rssi_table("apartment", seed=7, scale=self.SCALE)

    def test_pool_output_identical(self, serial):
        from repro.experiments.rssi_tables import run_rssi_table

        parallel = run_rssi_table("apartment", seed=7, scale=self.SCALE, workers=4)
        assert parallel.render() == serial.render()
        assert parallel.render_with_paper() == serial.render_with_paper()
        for a, b in zip(serial.cells, parallel.cells):
            assert a.matrix == b.matrix
            assert a.scenario_name == b.scenario_name

    def test_cached_rerun_matches(self, serial, tmp_path):
        from repro.experiments.rssi_tables import run_rssi_table

        cold = run_rssi_table("apartment", seed=7, scale=self.SCALE,
                              use_cache=True, cache_dir=tmp_path)
        warm = run_rssi_table("apartment", seed=7, scale=self.SCALE,
                              use_cache=True, cache_dir=tmp_path)
        assert cold.render() == serial.render()
        assert warm.render() == serial.render()


class TestCampaignParallel:
    def test_pool_output_identical(self):
        from repro.experiments.campaign import run_campaign

        serial = run_campaign(homes=2, seed=301)
        parallel = run_campaign(homes=2, seed=301, workers=4)
        assert parallel.homes == serial.homes
        assert parallel.render() == serial.render()


class TestNanRendering:
    def _empty_cell(self):
        return RssiExperimentResult(scenario_name="x/y/loc1",
                                    matrix=ConfusionMatrix())

    def test_fmt_percent_nan_is_dash(self):
        assert fmt_percent(float("nan")) == "—"
        assert fmt_percent(0.5) == "50.00%"
        assert fmt_percent(1.0, decimals=1) == "100.0%"

    def test_row_renders_dash_not_nan(self):
        row = self._empty_cell().row()
        assert row["accuracy"] == "—"
        assert row["precision"] == "—"
        assert row["recall"] == "—"

    def test_table_render_has_no_nan(self):
        from repro.experiments.rssi_tables import RssiTableResult

        table = RssiTableResult(testbed="house", cells=[self._empty_cell()])
        assert "nan" not in table.render()
        assert "—" in table.render()


class TestSeededInterval:
    def test_interval_reproducible(self):
        from repro.audio.voiceprint import UtteranceSource
        from repro.speakers.base import InteractionRecord

        records = []
        for index in range(20):
            record = InteractionRecord(
                interaction_id=index, text="x",
                source=UtteranceSource.REPLAY if index % 3 else UtteranceSource.LIVE_OWNER,
                speaker_label="s", started_at=0.0, speech_ends_at=1.0,
            )
            if index % 4:
                record.executed_at = 2.0
            record.settle()
            records.append(record)
        cell = RssiExperimentResult(scenario_name="a/b/loc1",
                                    matrix=ConfusionMatrix(), records=records)
        first = cell.accuracy_interval(seed=11)
        second = cell.accuracy_interval(seed=11)
        assert (first.low, first.high) == (second.low, second.high)


# Module-level for pool pickling (run_fold tests).

def _triple(value):
    return value * 3


class TestRunFold:
    def _tasks(self, n):
        return (ExperimentTask(fn=_triple, args=(i,), label=f"t{i}",
                               cacheable=False) for i in range(n))

    def test_serial_fold(self):
        engine = ExperimentEngine(workers=1, use_cache=False)
        total, count = engine.run_fold(self._tasks(10),
                                       lambda acc, v, task: acc + v,
                                       initial=0)
        assert total == sum(3 * i for i in range(10))
        assert count == 10

    def test_pool_fold_matches_serial(self):
        serial = ExperimentEngine(workers=1, use_cache=False)
        pooled = ExperimentEngine(workers=3, use_cache=False)
        fold = lambda acc, v, task: acc + v  # noqa: E731 - commutative
        expected, _ = serial.run_fold(self._tasks(20), fold, initial=0)
        actual, count = pooled.run_fold(self._tasks(20), fold, initial=0)
        assert actual == expected
        assert count == 20

    def test_pool_fold_bounded_window(self):
        engine = ExperimentEngine(workers=2, use_cache=False)
        total, count = engine.run_fold(self._tasks(12),
                                       lambda acc, v, task: acc + v,
                                       initial=0, window=2)
        assert total == sum(3 * i for i in range(12))
        assert count == 12

    def test_fold_receives_task(self):
        engine = ExperimentEngine(workers=1, use_cache=False)
        labels, _ = engine.run_fold(
            self._tasks(3),
            lambda acc, v, task: acc + [task.label],
            initial=[])
        assert labels == ["t0", "t1", "t2"]

    def test_empty_iterable(self):
        engine = ExperimentEngine(workers=1, use_cache=False)
        acc, count = engine.run_fold(iter(()), lambda a, v, t: a, initial=7)
        assert (acc, count) == (7, 0)


class TestCacheableFlag:
    def test_uncacheable_task_never_writes(self, tmp_path):
        marker = tmp_path / "markers"
        marker.mkdir()
        cache = tmp_path / "cache"
        task = ExperimentTask(fn=_touch_and_square, args=(4, str(marker)),
                              cacheable=False)
        for _ in range(2):
            engine = ExperimentEngine(workers=1, use_cache=True,
                                      cache_dir=cache)
            [result] = engine.run([task])
            assert result == 16
        assert len(list(marker.iterdir())) == 2  # executed both times
        assert not list(cache.glob("*.pkl"))

    def test_cacheable_task_still_cached(self, tmp_path):
        marker = tmp_path / "markers"
        marker.mkdir()
        cache = tmp_path / "cache"
        task = ExperimentTask(fn=_touch_and_square, args=(4, str(marker)))
        for _ in range(2):
            engine = ExperimentEngine(workers=1, use_cache=True,
                                      cache_dir=cache)
            engine.run([task])
        assert len(list(marker.iterdir())) == 1  # second run was a hit


class TestCacheTools:
    def test_stats_and_prune(self, tmp_path):
        from repro.experiments.parallel import cache_stats, prune_cache

        cache = tmp_path / "cache"
        engine = ExperimentEngine(workers=1, use_cache=True, cache_dir=cache)
        engine.run([ExperimentTask(fn=_square, args=(i,)) for i in range(3)])

        stats = cache_stats(cache_dir=cache)
        assert stats["entries"] == 3
        assert stats["bytes"] > 0

        report = prune_cache(cache_dir=cache)
        assert report["removed"] == 3
        assert report["bytes_reclaimed"] == stats["bytes"]
        assert cache_stats(cache_dir=cache)["entries"] == 0

    def test_prune_keep_days_keeps_fresh_entries(self, tmp_path):
        from repro.experiments.parallel import cache_stats, prune_cache

        cache = tmp_path / "cache"
        engine = ExperimentEngine(workers=1, use_cache=True, cache_dir=cache)
        engine.run([ExperimentTask(fn=_square, args=(1,))])
        report = prune_cache(cache_dir=cache, keep_days=1.0)
        assert report["removed"] == 0
        assert report["kept"] == 1
        assert cache_stats(cache_dir=cache)["entries"] == 1

    def test_prune_keep_days_drops_stale_entries(self, tmp_path):
        from repro.experiments.parallel import prune_cache

        cache = tmp_path / "cache"
        engine = ExperimentEngine(workers=1, use_cache=True, cache_dir=cache)
        engine.run([ExperimentTask(fn=_square, args=(1,))])
        stale = 10 * 86400
        for entry in cache.glob("*.pkl"):
            info = entry.stat()
            os.utime(entry, (info.st_atime - stale, info.st_mtime - stale))
        report = prune_cache(cache_dir=cache, keep_days=1.0)
        assert report["removed"] == 1

    def test_stats_on_missing_dir(self, tmp_path):
        from repro.experiments.parallel import cache_stats, prune_cache

        missing = tmp_path / "nope"
        assert cache_stats(cache_dir=missing)["entries"] == 0
        assert prune_cache(cache_dir=missing)["removed"] == 0


class TestPoolReleasesFutures:
    def test_large_fold_constant_accumulator(self):
        # 60 tasks through 2 workers with a window of 3: if the pool
        # path held every future/result, this would accumulate 60
        # payloads; the fold sees them exactly once each instead.
        engine = ExperimentEngine(workers=2, use_cache=False)
        seen = []
        _, count = engine.run_fold(
            (ExperimentTask(fn=_triple, args=(i,), cacheable=False)
             for i in range(60)),
            lambda acc, v, task: seen.append(v) or acc,
            initial=None, window=3)
        assert count == 60
        assert sorted(seen) == [3 * i for i in range(60)]
