"""Transparent proxy and TLS-session tests (Figure 4 mechanics)."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.addresses import Endpoint, IPv4Address
from repro.net.link import Host, Network
from repro.net.packet import Packet, Protocol
from repro.net.proxy import ForwarderDecision, TransparentProxy, UdpForwarder
from repro.net.tcp import TcpStack
from repro.net.tls import TlsSession, TlsViolation
from repro.net.udp import UdpFlow
from repro.sim.random import RngHub


class TestTlsSession:
    def test_in_sequence_records_accepted(self):
        session = TlsSession()
        for expected in range(5):
            assert session.accept_record(expected, now=0.0) is None
        assert session.records_received == 5

    def test_gap_triggers_violation(self):
        session = TlsSession()
        session.accept_record(0, now=0.0)
        violation = session.accept_record(2, now=1.5)
        assert isinstance(violation, TlsViolation)
        assert violation.expected_seq == 1
        assert violation.received_seq == 2

    def test_dead_session_rejects_everything(self):
        session = TlsSession()
        session.accept_record(1, now=0.0)  # immediate gap
        with pytest.raises(NetworkError):
            session.accept_record(2, now=0.1)

    def test_sender_sequence_increments(self):
        session = TlsSession()
        assert [session.next_send_seq() for _ in range(3)] == [0, 1, 2]

    def test_none_record_seq_rejected(self):
        session = TlsSession()
        with pytest.raises(NetworkError):
            session.accept_record(None, now=0.0)


@pytest.fixture
def proxied_world(sim):
    """speaker <-> proxy <-> server, proxy terminating TCP."""
    network = Network(sim, RngHub(5))
    speaker = Host("speaker", IPv4Address("192.168.1.200"))
    server = Host("server", IPv4Address("54.1.1.1"))
    network.attach(speaker)
    network.attach(server)
    speaker_stack = TcpStack(speaker)
    server_stack = TcpStack(server)
    proxy = TransparentProxy("guard", IPv4Address("192.168.1.50"))
    proxy.install(network, speaker.ip)
    server_received = []

    def accept(conn):
        conn.on_record = lambda c, p: server_received.append(p)

    server_stack.listen(443, accept)
    return sim, network, speaker_stack, server_stack, proxy, server_received


class TestTransparentProxy:
    def test_terminates_and_splices(self, proxied_world):
        sim, network, speaker, server, proxy, received = proxied_world
        conn = speaker.connect(Endpoint(IPv4Address("54.1.1.1"), 443))
        sim.run_for(1.0)
        assert conn.is_established
        assert proxy.open_flow_count == 1
        conn.send_record(100, tls_record_seq=0)
        sim.run_for(1.0)
        assert [p.payload_len for p in received] == [100]

    def test_flow_metadata(self, proxied_world):
        sim, network, speaker, server, proxy, received = proxied_world
        speaker.connect(Endpoint(IPv4Address("54.1.1.1"), 443))
        sim.run_for(1.0)
        flow = proxy.flows[0]
        assert flow.client.ip == IPv4Address("192.168.1.200")
        assert flow.server == Endpoint(IPv4Address("54.1.1.1"), 443)

    def test_hold_then_release_preserves_order(self, proxied_world):
        sim, network, speaker, server, proxy, received = proxied_world
        held_sizes = (10, 20, 30)
        proxy.record_policy = (
            lambda flow, p: ForwarderDecision.HOLD
            if p.payload_len in held_sizes else ForwarderDecision.FORWARD
        )
        conn = speaker.connect(Endpoint(IPv4Address("54.1.1.1"), 443))
        sim.run_for(1.0)
        for index, size in enumerate((10, 20, 30)):
            conn.send_record(size, tls_record_seq=index)
        sim.run_for(1.0)
        assert received == []  # parked
        flow = proxy.flows[0]
        assert len(flow.held) == 3
        proxy.release_held(flow)
        sim.run_for(1.0)
        assert [p.payload_len for p in received] == [10, 20, 30]

    def test_hold_keeps_connection_alive_for_a_long_time(self, proxied_world):
        sim, network, speaker, server, proxy, received = proxied_world
        proxy.record_policy = lambda flow, p: ForwarderDecision.HOLD
        conn = speaker.connect(Endpoint(IPv4Address("54.1.1.1"), 443))
        sim.run_for(1.0)
        conn.send_record(100, tls_record_seq=0)
        sim.run_for(40.0)  # dozens of seconds, as the paper requires
        assert conn.is_established
        proxy.release_held(proxy.flows[0])
        sim.run_for(1.0)
        assert [p.payload_len for p in received] == [100]

    def test_discard_then_forward_desyncs_tls(self, proxied_world):
        sim, network, speaker, server, proxy, received = proxied_world
        session = TlsSession()
        violations = []

        def accept_with_tls(conn):
            def on_record(c, p):
                violation = session.accept_record(p.tls_record_seq, sim.now)
                if violation:
                    violations.append(violation)
                    c.close()
            conn.on_record = on_record

        # Replace the plain listener wholesale.
        server._listeners.clear()
        server.listen(443, accept_with_tls)

        hold = {"active": True}
        proxy.record_policy = (
            lambda flow, p: ForwarderDecision.HOLD if hold["active"]
            else ForwarderDecision.FORWARD
        )
        conn = speaker.connect(Endpoint(IPv4Address("54.1.1.1"), 443))
        sim.run_for(1.0)
        conn.send_record(100, tls_record_seq=0)
        conn.send_record(200, tls_record_seq=1)
        sim.run_for(1.0)
        proxy.discard_held(proxy.flows[0])
        hold["active"] = False
        conn.send_record(300, tls_record_seq=2)  # out of TLS sequence now
        sim.run_for(2.0)
        assert violations and violations[0].received_seq == 2
        sim.run_for(3.0)
        assert not conn.is_established  # close propagated to the speaker

    def test_server_records_reach_speaker(self, proxied_world):
        sim, network, speaker, server, proxy, received = proxied_world
        downstream = []
        server._listeners.clear()

        def accept(conn):
            conn.on_record = lambda c, p: c.send_record(42, tls_record_seq=0)

        server.listen(443, accept)
        conn = speaker.connect(Endpoint(IPv4Address("54.1.1.1"), 443))
        conn.on_record = lambda c, p: downstream.append(p.payload_len)
        sim.run_for(1.0)
        conn.send_record(10, tls_record_seq=0)
        sim.run_for(1.0)
        assert downstream == [42]

    def test_snoopers_see_tapped_packets(self, proxied_world):
        sim, network, speaker, server, proxy, received = proxied_world
        seen = []
        proxy.add_snooper(lambda p: seen.append(p.protocol))
        speaker.host.send(Packet(
            src=Endpoint(speaker.host.ip, 5353),
            dst=Endpoint(IPv4Address("54.1.1.1"), 53),
            protocol=Protocol.UDP, payload_len=40,
        ))
        sim.run_for(1.0)
        assert Protocol.UDP in seen

    def test_drop_decision_discards_record(self, proxied_world):
        sim, network, speaker, server, proxy, received = proxied_world
        proxy.record_policy = lambda flow, p: ForwarderDecision.DROP
        conn = speaker.connect(Endpoint(IPv4Address("54.1.1.1"), 443))
        sim.run_for(1.0)
        conn.send_record(100, tls_record_seq=0)
        sim.run_for(1.0)
        assert received == []
        assert proxy.flows[0].records_discarded == 1


class TestUdpForwarder:
    @pytest.fixture
    def udp_world(self, sim):
        network = Network(sim, RngHub(6))
        speaker = Host("speaker", IPv4Address("192.168.1.201"))
        server = Host("server", IPv4Address("142.250.65.68"))
        network.attach(speaker)
        network.attach(server)
        proxy = TransparentProxy("guard", IPv4Address("192.168.1.50"))
        proxy.install(network, speaker.ip)
        forwarder = UdpForwarder(proxy, speaker.ip)
        received = []
        server.register_udp_handler(443, lambda p: received.append(p.payload_len))
        flow = UdpFlow(speaker, Endpoint(speaker.ip, 52001),
                       Endpoint(server.ip, 443))
        return sim, proxy, forwarder, flow, received

    def test_datagrams_forwarded_by_default(self, udp_world):
        sim, proxy, forwarder, flow, received = udp_world
        flow.send(500)
        sim.run_for(1.0)
        assert received == [500]

    def test_hold_and_release(self, udp_world):
        sim, proxy, forwarder, flow, received = udp_world
        proxy.record_policy = lambda f, p: ForwarderDecision.HOLD
        flow.send(500)
        flow.send(600)
        sim.run_for(1.0)
        assert received == []
        forwarder.release_held(proxy.flows[0])
        sim.run_for(1.0)
        assert received == [500, 600]

    def test_hold_and_discard(self, udp_world):
        sim, proxy, forwarder, flow, received = udp_world
        proxy.record_policy = lambda f, p: ForwarderDecision.HOLD
        flow.send(500)
        sim.run_for(1.0)
        count = forwarder.discard_held(proxy.flows[0])
        assert count == 1
        sim.run_for(1.0)
        assert received == []

    def test_drop_decision(self, udp_world):
        sim, proxy, forwarder, flow, received = udp_world
        proxy.record_policy = lambda f, p: ForwarderDecision.DROP
        flow.send(500)
        sim.run_for(1.0)
        assert received == []
        assert proxy.flows[0].records_discarded == 1

    def test_server_replies_bridged_to_speaker(self, udp_world):
        sim, proxy, forwarder, flow, received = udp_world
        got = []
        flow.on_datagram = lambda f, p: got.append(p.payload_len)
        flow.send(500)
        sim.run_for(1.0)
        # The server answers to the speaker's endpoint.
        server_packet = Packet(
            src=Endpoint(IPv4Address("142.250.65.68"), 443),
            dst=flow.local, protocol=Protocol.UDP, payload_len=77,
        )
        proxy.network.host_for(IPv4Address("142.250.65.68")).send(server_packet)
        sim.run_for(1.0)
        assert got == [77]
