"""Tests for attacker models and baseline defenses."""

from __future__ import annotations

import pytest

from repro.attacks.inaudible import InaudibleAttack, LaserAttack
from repro.attacks.remote import CompromisedPlaybackAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.synthesis import SynthesisAttack
from repro.audio.voiceprint import UtteranceSource, VoicePrint, live_utterance
from repro.baselines.firewall import FirewallTap
from repro.baselines.naive_spike import NaiveSpikeDetector
from repro.baselines.voice_match import VoiceMatchDefense
from repro.core.events import TrafficClass
from repro.home.environment import HomeEnvironment
from repro.radio.geometry import Point
from repro.radio.testbeds import apartment_testbed


@pytest.fixture
def env():
    return HomeEnvironment(apartment_testbed(), deployment=0, seed=21)


@pytest.fixture
def victim(rng):
    return VoicePrint.create("owner", rng)


class TestReplayAttack:
    def test_builds_library_on_demand(self, env, victim, rng):
        attack = ReplayAttack(env, rng, victim)
        utterance = attack.craft("open the garage", 2.0)
        assert utterance.source is UtteranceSource.REPLAY
        assert attack.library_size == 1

    def test_reuses_existing_recording(self, env, victim, rng):
        attack = ReplayAttack(env, rng, victim)
        attack.record_sample("open the garage", 2.0)
        attack.craft("open the garage", 2.0)
        assert attack.library_size == 1

    def test_capture_overheard_utterance(self, env, victim, rng):
        attack = ReplayAttack(env, rng, victim)
        overheard = live_utterance("disarm alarm", 2.0, victim, rng)
        attack.capture(overheard)
        crafted = attack.craft("disarm alarm", 2.0)
        assert crafted.text == "disarm alarm"

    def test_launch_in_speaker_room_is_heard(self, env, victim, rng):
        attack = ReplayAttack(env, rng, victim)
        result = attack.launch("hello", 1.5, Point(3, 4, 1))
        assert result.heard_by_speaker
        assert attack.results == [result]

    def test_launch_far_away_not_heard(self, env, victim, rng):
        attack = ReplayAttack(env, rng, victim)
        result = attack.launch("hello", 1.5, Point(9, 1, 1))
        assert not result.heard_by_speaker


class TestOtherAttacks:
    def test_synthesis_arbitrary_text(self, env, victim, rng):
        attack = SynthesisAttack(env, rng, victim)
        utterance = attack.craft("wire all my money away", 3.0)
        assert utterance.source is UtteranceSource.SYNTHESIS
        assert utterance.text == "wire all my money away"

    def test_inaudible_source_marked(self, env, victim, rng):
        attack = InaudibleAttack(env, rng, victim)
        assert attack.craft("hi", 1.0).source is UtteranceSource.INAUDIBLE

    def test_laser_targets_speaker_directly(self, env, victim, rng):
        attack = LaserAttack(env, rng, victim)
        result = attack.launch_through_window("hi", 1.0)
        assert result.heard_by_speaker  # lands on the device itself

    def test_remote_playback_from_fixed_device(self, env, victim, rng):
        tv_spot = env.speaker_beacon.position.offset(dx=1.0)
        attack = CompromisedPlaybackAttack(env, rng, victim, tv_spot)
        result = attack.launch_from_device("hi", 1.0)
        assert result.heard_by_speaker
        assert result.utterance.source is UtteranceSource.REMOTE_PLAYBACK

    def test_campaign_schedules_future_launches(self, env, victim, rng):
        tv_spot = env.speaker_beacon.position.offset(dx=1.0)
        attack = CompromisedPlaybackAttack(env, rng, victim, tv_spot)
        attack.schedule_campaign(["a b c", "d e f"], lambda t: 1.5, interval=10.0)
        env.sim.run_for(25.0)
        assert len(attack.results) == 2


class TestNaiveSpikeDetector:
    def test_everything_is_a_command(self):
        detector = NaiveSpikeDetector()
        assert detector.classify_spike([77, 33, 50]) is TrafficClass.COMMAND

    def test_unnecessary_holds_counted(self):
        detector = NaiveSpikeDetector()
        spikes = [[277, 138, 131], [55, 77, 33], [61, 77, 33], [89, 77, 33]]
        assert detector.unnecessary_holds(spikes) == 3

    def test_evaluate_flags_all(self):
        detector = NaiveSpikeDetector()
        verdicts = detector.evaluate_interaction([[1], [2], [3]])
        assert all(v.would_hold for v in verdicts)


class TestVoiceMatchDefense:
    def test_outcome_bookkeeping(self, env, victim, rng):
        defense = VoiceMatchDefense()
        defense.enroll_owner(victim, rng)
        live = live_utterance("hi", 1.0, victim, rng)
        guest = live_utterance("hi", 1.0, VoicePrint.create("guest", rng), rng,
                               source=UtteranceSource.LIVE_GUEST)
        assert defense.admits(live)
        assert not defense.admits(guest)
        assert defense.outcome.accept_rate(UtteranceSource.LIVE_OWNER) == 1.0
        assert defense.outcome.accept_rate(UtteranceSource.LIVE_GUEST) == 0.0

    def test_accept_rate_nan_for_unseen_source(self):
        defense = VoiceMatchDefense()
        rate = defense.outcome.accept_rate(UtteranceSource.REPLAY)
        assert rate != rate  # NaN

    def test_evaluate_batch(self, env, victim, rng):
        defense = VoiceMatchDefense()
        defense.enroll_owner(victim, rng)
        utterances = [live_utterance("x", 1.0, victim, rng) for _ in range(5)]
        outcome = defense.evaluate(utterances)
        assert sum(outcome.accepted.values()) == 5


class TestFirewallTap:
    def test_spike_start_detection(self, sim):
        from repro.net.addresses import IPv4Address
        tap = FirewallTap("fw", IPv4Address("192.168.1.60"),
                          {IPv4Address("192.168.1.200")})
        assert tap._spike_starts(0.0)  # first packet ever
        tap._last_data_time = 0.0
        assert not tap._spike_starts(1.0)
        assert tap._spike_starts(10.0)

    def test_decide_callback_invoked_once_per_spike(self, sim):
        from repro.net.addresses import IPv4Address, Endpoint
        from repro.net.link import Network, Host
        from repro.net.packet import Packet, Protocol, TlsRecordType
        from repro.sim.random import RngHub
        network = Network(sim, RngHub(2))
        speaker = Host("speaker", IPv4Address("192.168.1.200"))
        cloud = Host("cloud", IPv4Address("54.1.1.1"))
        network.attach(speaker)
        network.attach(cloud)
        calls = []
        tap = FirewallTap("fw", IPv4Address("192.168.1.60"),
                          {speaker.ip}, decide=calls.append)
        network.attach(tap)
        network.install_tap(speaker.ip, tap)
        for _ in range(3):  # one spike of three packets
            speaker.send(Packet(
                src=Endpoint(speaker.ip, 50000), dst=Endpoint(cloud.ip, 443),
                protocol=Protocol.TCP, payload_len=100,
                tls_type=TlsRecordType.APPLICATION_DATA,
            ))
            sim.run_for(0.2)
        assert len(calls) == 1
        assert tap.packets_dropped == 3  # all dropped while deciding

    def test_block_window_expires(self, sim):
        from repro.net.addresses import IPv4Address
        tap = FirewallTap("fw", IPv4Address("192.168.1.60"), set())
        tap._state = "blocking"
        tap._blocking_until = 5.0

        class FakeNet:
            def __init__(self, sim):
                self.sim = sim
        tap.network = FakeNet(sim)
        sim.run_until(6.0)
        # After expiry the next client-data packet resets to idle; the
        # internal transition is exercised via intercept in integration
        # tests, here we just sanity-check the timestamp logic.
        assert sim.now > tap._blocking_until


class TestAttackBase:
    """The abstract Attack contract (attacks/base.py)."""

    def test_craft_is_abstract(self, env, rng):
        from repro.attacks.base import Attack

        with pytest.raises(NotImplementedError):
            Attack(env, rng).craft("hello", 1.0)

    def test_launch_records_a_result(self, env, victim, rng):
        from repro.attacks.base import Attack

        class CannedAttack(Attack):
            name = "canned"

            def craft(self, text, duration):
                return live_utterance(text, duration, victim, self.rng)

        attack = CannedAttack(env, rng)
        start = env.sim.now
        result = attack.launch("hello", 1.5, Point(3, 4, 1))
        assert result.launched_at == start
        assert result.heard_by_speaker
        assert result.utterance.text == "hello"
        assert attack.results == [result]
        # Each launch appends; nothing is shared across instances.
        attack.launch("again", 1.0, Point(3, 4, 1))
        assert len(attack.results) == 2
        assert CannedAttack(env, rng).results == []
