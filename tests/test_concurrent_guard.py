"""Concurrent multi-speaker guard: hold budget, decision coordinator,
overflow policies, and the single-flow byte-identity contract.

The concurrency machinery (query slots, batching, the global held-byte
budget) must be provably inert while one command is in flight, and
must shed load by the configured fail-open/fail-closed policy when the
budget overflows under fault-driven overload.
"""

from __future__ import annotations

import pytest

from repro.audio.speech import full_utterance_duration
from repro.core.config import VoiceGuardConfig
from repro.core.decision import (
    DecisionContext,
    DecisionCoordinator,
    DecisionMethod,
    DecisionResult,
    Verdict,
)
from repro.errors import ConfigError
from repro.experiments.bench_sim import guard_event_stream
from repro.experiments.scenarios import add_echo_speaker, build_scenario
from repro.experiments.workload import SevenDayWorkload
from repro.faults.plan import FaultPlan
from repro.net.proxy import HoldBudget
from repro.sim.simulator import Simulator


class _Record:
    def __init__(self, payload_len: int) -> None:
        self.payload_len = payload_len


class TestHoldBudget:
    def test_charge_landing_exactly_on_the_limit_fits(self):
        budget = HoldBudget(limit_bytes=100)
        assert budget.try_charge(60)
        assert budget.try_charge(40)  # 100/100: inclusive bound
        assert budget.held_bytes == 100
        assert budget.overflows == 0

    def test_one_byte_over_the_limit_refuses(self):
        budget = HoldBudget(limit_bytes=100)
        assert budget.try_charge(100)
        assert not budget.try_charge(1)
        assert budget.held_bytes == 100
        assert budget.overflows == 1

    def test_credit_frees_the_budget(self):
        budget = HoldBudget(limit_bytes=100)
        assert budget.try_charge(70)
        assert budget.try_charge(30)
        budget.credit([_Record(70), _Record(30)])
        assert budget.held_bytes == 0
        assert budget.held_records == 0
        assert budget.try_charge(100)

    def test_zero_limit_never_refuses(self):
        budget = HoldBudget(limit_bytes=0)
        assert budget.try_charge(10**9)
        assert budget.try_charge(10**9)
        assert budget.overflows == 0


class _StubMethod(DecisionMethod):
    """Holds every callback until the test fires it by hand."""

    timeout = 5.0

    def __init__(self) -> None:
        self.pending = []

    def decide(self, context, callback):
        self.pending.append((context, callback))

    def fire(self, index: int = 0, verdict: Verdict = Verdict.LEGITIMATE):
        context, callback = self.pending.pop(index)
        callback(DecisionResult(verdict=verdict))
        return context


def _context(window_id: int, speaker_ip: str, sim: Simulator,
             deadline: float = float("inf")) -> DecisionContext:
    return DecisionContext(window_id=window_id, speaker_ip=speaker_ip,
                           requested_at=sim.now, deadline=deadline)


class TestDecisionCoordinator:
    def test_one_report_settles_three_commands_across_two_speakers(self):
        sim = Simulator()
        method = _StubMethod()
        coordinator = DecisionCoordinator(method, sim=sim, batching=True)
        results = []
        for window_id, ip in ((1, "10.0.0.1"), (2, "10.0.0.2"), (3, "10.0.0.2")):
            coordinator.decide(
                _context(window_id, ip, sim),
                lambda r, w=window_id: results.append((w, r)),
            )
        # One underlying query carries all three pending commands.
        assert len(method.pending) == 1
        method.fire(verdict=Verdict.LEGITIMATE)
        assert [w for w, _ in results] == [1, 2, 3]
        primary, riders = results[0][1], [r for _, r in results[1:]]
        assert not primary.batched
        assert all(r.batched and r.verdict is Verdict.LEGITIMATE
                   for r in riders)
        assert coordinator.batched_settlements == 2

    def test_stale_inflight_query_is_not_joined(self):
        sim = Simulator()
        method = _StubMethod()
        coordinator = DecisionCoordinator(method, sim=sim, batching=True,
                                          batch_window=2.0)
        coordinator.decide(_context(1, "10.0.0.1", sim), lambda r: None)
        sim.run_for(3.0)  # older than the batch window
        coordinator.decide(_context(2, "10.0.0.2", sim), lambda r: None)
        assert len(method.pending) == 2
        assert coordinator.batched_settlements == 0

    def test_slot_limit_queues_and_drains_earliest_deadline_first(self):
        sim = Simulator()
        method = _StubMethod()
        coordinator = DecisionCoordinator(method, sim=sim, max_inflight=1)
        order = []
        coordinator.decide(_context(1, "a", sim, deadline=100.0),
                           lambda r: order.append(1))
        coordinator.decide(_context(2, "b", sim, deadline=50.0),
                           lambda r: order.append(2))
        coordinator.decide(_context(3, "c", sim, deadline=10.0),
                           lambda r: order.append(3))
        assert coordinator.queue_depth == 2
        assert coordinator.inflight_count == 1
        method.fire()  # window 1 settles; most urgent deadline (3) dispatches
        assert method.pending[0][0].window_id == 3
        method.fire()
        method.fire()
        assert order == [1, 3, 2]
        assert coordinator.queued_total == 2
        assert coordinator.queue_depth == 0

    def test_expired_queued_command_resolves_timeout_without_a_slot(self):
        sim = Simulator()
        method = _StubMethod()
        coordinator = DecisionCoordinator(method, sim=sim, max_inflight=1)
        results = []
        coordinator.decide(_context(1, "a", sim, deadline=100.0),
                           lambda r: results.append(r))
        coordinator.decide(_context(2, "b", sim, deadline=1.0),
                           lambda r: results.append(r))
        sim.run_for(2.0)  # window 2's deadline passes while it waits
        method.fire()
        assert len(results) == 2
        assert results[1].verdict is Verdict.TIMEOUT
        assert coordinator.expired_in_queue == 1
        assert not method.pending  # the expired command never dispatched

    def test_default_knobs_pass_straight_through(self):
        sim = Simulator()
        method = _StubMethod()
        coordinator = DecisionCoordinator(method, sim=sim)
        for window_id in range(5):
            coordinator.decide(_context(window_id, "a", sim), lambda r: None)
        assert len(method.pending) == 5  # nothing queued, nothing batched
        assert coordinator.queued_total == 0
        assert coordinator.batched_settlements == 0


class TestConfigValidation:
    def test_negative_concurrency_knobs_rejected(self):
        with pytest.raises(ConfigError):
            VoiceGuardConfig(max_concurrent_queries=-1)
        with pytest.raises(ConfigError):
            VoiceGuardConfig(held_byte_budget=-1)

    def test_overflow_policy_follows_fail_open_unless_overridden(self):
        assert not VoiceGuardConfig().overflow_releases
        assert VoiceGuardConfig(fail_open=True).overflow_releases
        assert VoiceGuardConfig(overflow_fail_open=True).overflow_releases
        assert not VoiceGuardConfig(
            fail_open=True, overflow_fail_open=False
        ).overflow_releases


def _speak_once(scenario, rng_name="overload"):
    env = scenario.env
    owner = scenario.owners[0]
    rng = env.rng.stream(rng_name)
    command = scenario.corpus.sample(rng)
    duration = full_utterance_duration(command, rng)
    utterance = owner.speak(command.text, duration)
    env.play_utterance(utterance, owner.device_position())
    env.sim.run_for(duration + 30.0)


class TestOverflowUnderFaults:
    @pytest.mark.parametrize("fail_open", [True, False])
    def test_budget_overflow_under_total_push_loss(self, fail_open):
        # 100% push loss: the decision can never resolve, so held bytes
        # accumulate against a budget smaller than one command's records
        # and the overflow policy must shed the window.
        config = VoiceGuardConfig(held_byte_budget=600,
                                  overflow_fail_open=fail_open)
        scenario = build_scenario(
            "apartment", "echo", seed=21, config=config,
            fault_plan=FaultPlan(seed=9, push_loss=1.0),
            with_floor_tracking=False,
        )
        _speak_once(scenario)
        handler = scenario.guard.handler
        assert handler.overflow_resolutions > 0
        event = scenario.guard.command_events()[-1]
        # Overflow resolution follows the max-hold failsafe convention:
        # the window resolves without a verdict.
        assert event.verdict is None
        if fail_open:
            assert handler.commands_released == 1
            assert handler.commands_blocked == 0
            assert event.released_at is not None
        else:
            assert handler.commands_released == 0
            assert handler.commands_blocked == 1
            assert event.discarded_at is not None
        snapshot = scenario.env.obs.metrics.snapshot()
        assert snapshot["counters"]["proxy.hold_overflows"] > 0
        # Shedding the window credits its held bytes back.
        assert snapshot["gauges"]["proxy.held_bytes"]["value"] == 0.0


class TestMultiSpeakerIntegration:
    def test_one_utterance_settles_every_speaker_with_one_query(self):
        config = VoiceGuardConfig(max_concurrent_queries=2,
                                  decision_batching=True)
        scenario = build_scenario("apartment", "echo", seed=31, config=config,
                                  with_floor_tracking=False)
        add_echo_speaker(scenario)
        add_echo_speaker(scenario)
        scenario.settle()
        _speak_once(scenario, "multi")
        events = scenario.guard.command_events()
        assert len(events) == 3
        assert len({e.speaker_ip for e in events}) == 3
        assert all(e.verdict is Verdict.LEGITIMATE for e in events)
        # One phone report settled all three speakers' copies.
        assert scenario.guard.rssi_method.queries_issued == 1
        assert scenario.guard.coordinator.batched_settlements == 2

    def test_second_echo_requires_echo_scenario(self):
        from repro.errors import WorkloadError

        scenario = build_scenario("office", "google", seed=5,
                                  with_floor_tracking=False)
        with pytest.raises(WorkloadError):
            add_echo_speaker(scenario)


class TestSingleFlowByteIdentity:
    def test_knobs_on_vs_off_identical_event_streams(self):
        # The PR's core contract: with one command in flight at a time,
        # slots + batching + budget change nothing — not an event field,
        # not the sim clock.
        streams, clocks = [], []
        for config in (
            VoiceGuardConfig(),
            VoiceGuardConfig(max_concurrent_queries=2,
                             decision_batching=True,
                             held_byte_budget=65_536),
        ):
            scenario = build_scenario("apartment", "echo", seed=17,
                                      config=config)
            SevenDayWorkload(scenario).run(4, 3)
            streams.append(guard_event_stream(scenario.guard))
            clocks.append(scenario.sim.now)
        assert streams[0] == streams[1]
        assert clocks[0] == clocks[1]
