"""Smoke tests: the runnable examples must stay runnable.

Each example is executed in-process via runpy with argv pinned; the
slowest (full_reproduction) is exercised through its report module in
other tests instead.
"""

from __future__ import annotations

import pathlib
import runpy
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, capsys) -> str:
    argv = sys.argv
    sys.argv = [name]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "guard verdict: legitimate" in out
        assert "-> blocked" in out

    def test_threshold_calibration(self, capsys):
        out = run_example("threshold_calibration.py", capsys)
        assert "threshold = min" in out
        assert "[55, 56, 59, 60, 61, 62]" in out

    def test_extensible_guard(self, capsys):
        out = run_example("extensible_guard.py", capsys)
        assert "verdict malicious" in out  # quiet hours blocked the owner
        assert "re-learned after" in out

    def test_multi_user_home(self, capsys):
        out = run_example("multi_user_home.py", capsys)
        assert "verdict legitimate" in out
        assert "registration refused" in out
