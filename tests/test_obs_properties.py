"""Property-based tests for the observability layer (hypothesis).

Three invariant families:

* Span trees built through the public begin/finish API are well nested:
  every span's interval is contained in its parent's, starts are
  monotone in begin order, and ``start <= end`` always.
* Histograms conserve observations: bucket counts sum to the number of
  recorded values, and every value lands in the bucket ``bisect_left``
  names.
* The tracer is a true no-op: a tracing-enabled scenario run produces
  a ``CommandEvent`` stream identical to its tracing-disabled twin,
  for randomized scenario configurations.
"""

from __future__ import annotations

from bisect import bisect_left

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.obs.metrics import Histogram, MetricsRegistry, merge_snapshots
from repro.obs.tracer import NULL_SPAN, SpanTracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0


# ---------------------------------------------------------------------------
# Span-tree invariants
# ---------------------------------------------------------------------------

# An op is (kind, amount): push a child, pop (finish deepest), or advance.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.just(0.0)),
        st.tuples(st.just("pop"), st.just(0.0)),
        st.tuples(st.just("tick"), st.floats(min_value=0.0, max_value=10.0,
                                             allow_nan=False)),
    ),
    max_size=60,
)


@given(_ops)
def test_span_trees_are_well_nested(ops):
    clock = FakeClock()
    tracer = SpanTracer(clock)
    stack = [tracer.begin("root")]
    for kind, amount in ops:
        if kind == "push":
            stack.append(tracer.begin(f"child.{len(stack)}", parent=stack[-1]))
        elif kind == "pop" and len(stack) > 1:
            stack.pop().finish()
        else:
            clock.now += amount
    while stack:
        stack.pop().finish()

    by_id = {span.span_id: span for span in tracer.spans}
    starts = [span.start for span in tracer.spans]
    assert starts == sorted(starts)  # begin order is time order
    for span in tracer.spans:
        assert span.finished
        assert span.end is not None and span.start <= span.end
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert parent.start <= span.start
            assert span.end <= parent.end  # LIFO finish => containment


@given(_ops)
def test_null_span_absorbs_everything(ops):
    # The same op sequence against NULL_SPAN must be inert: no state,
    # no error, chainable.
    span = NULL_SPAN
    for kind, _ in ops:
        span = span.set(key="value").event("anything", extra=1)
    assert span is NULL_SPAN
    assert not NULL_SPAN.finished
    assert NULL_SPAN.finish() is NULL_SPAN
    assert not NULL_SPAN.finished  # finish never sticks


# ---------------------------------------------------------------------------
# Histogram conservation
# ---------------------------------------------------------------------------

_edges = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1, max_size=8, unique=True,
).map(sorted)

_values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    max_size=200,
)


@given(_edges, _values)
def test_histogram_conserves_observations(edges, values):
    hist = Histogram("h", edges=tuple(edges))
    for value in values:
        hist.record(value)
    assert hist.count == len(values)
    assert sum(hist.counts) == len(values)
    if values:
        assert hist.min == min(values)
        assert hist.max == max(values)
        assert hist.total == pytest.approx(sum(values))
    # Every value lands exactly where bisect_left says it should.
    expected = [0] * (len(edges) + 1)
    for value in values:
        expected[bisect_left(list(edges), value)] += 1
    assert list(hist.counts) == expected


@given(_edges, _values, _values)
def test_merged_snapshots_equal_combined_recording(edges, first, second):
    separate_a, separate_b = MetricsRegistry(), MetricsRegistry()
    combined = MetricsRegistry()
    for registry, values in ((separate_a, first), (separate_b, second)):
        hist = registry.histogram("latency", edges=tuple(edges))
        for value in values:
            hist.record(value)
            registry.counter("n").inc()
    both = combined.histogram("latency", edges=tuple(edges))
    for value in [*first, *second]:
        both.record(value)
        combined.counter("n").inc()
    merged = merge_snapshots([separate_a.snapshot(), separate_b.snapshot()])
    expected = combined.snapshot()
    assert merged["counters"] == expected["counters"]
    assert (merged["histograms"]["latency"]["counts"]
            == expected["histograms"]["latency"]["counts"])
    assert merged["histograms"]["latency"]["count"] \
        == expected["histograms"]["latency"]["count"]


def test_histogram_edge_mismatch_rejected():
    registry = MetricsRegistry()
    registry.histogram("h", edges=(1.0, 2.0))
    with pytest.raises(ConfigError):
        registry.histogram("h", edges=(1.0, 3.0))


# ---------------------------------------------------------------------------
# Tracing never perturbs a run
# ---------------------------------------------------------------------------

def _event_stream(scenario):
    stream = []
    for event in scenario.guard.log.events:
        stream.append((
            event.window_id, event.flow_id, event.speaker_ip, event.protocol,
            event.opened_at,
            event.classification.value if event.classification else None,
            event.classified_at, event.classify_packet_count,
            event.verdict.value if event.verdict else None,
            event.verdict_at, event.released_at, event.discarded_at,
            event.held_records,
            tuple(repr(report) for report in event.rssi_reports),
        ))
    return stream


def _run_scenario(tracing, seed, speaker_kind, owner_count):
    from repro.audio.speech import full_utterance_duration
    from repro.experiments.scenarios import build_scenario

    scenario = build_scenario(
        "apartment", speaker_kind, seed=seed, owner_count=owner_count,
        with_floor_tracking=False, tracing=tracing,
    )
    env = scenario.env
    owner = scenario.owners[0]
    owner.teleport(env.testbed.speaker_room(0).center(height=0.0))
    rng = env.rng.stream("prop.workload")
    for _ in range(2):
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        utterance = owner.speak(command.text, duration)
        env.play_utterance(utterance, owner.device_position())
        env.sim.run_for(duration + 10.0)
    return scenario


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    speaker_kind=st.sampled_from(["echo", "google"]),
    owner_count=st.integers(min_value=1, max_value=2),
)
def test_tracing_never_changes_the_event_stream(seed, speaker_kind, owner_count):
    plain = _run_scenario(False, seed, speaker_kind, owner_count)
    traced = _run_scenario(True, seed, speaker_kind, owner_count)
    assert _event_stream(plain) == _event_stream(traced)
    assert len(plain.env.obs.tracer) == 0  # disabled tracer collected nothing
    assert traced.env.obs.tracer.enabled
    # Both runs recorded the same metrics (metrics are always on).
    assert plain.env.obs.metrics.snapshot() == traced.env.obs.metrics.snapshot()


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    speaker_kind=st.sampled_from(["echo", "google"]),
)
def test_traced_spans_are_well_formed_on_real_runs(seed, speaker_kind):
    scenario = _run_scenario(True, seed, speaker_kind, 1)
    tracer = scenario.env.obs.tracer
    by_id = {span.span_id: span for span in tracer.spans}
    for span in tracer.spans:
        if span.end is not None:
            assert span.start <= span.end
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert parent.start <= span.start
