"""Learned recognizers + traffic morphing: properties, determinism,
and the arms-race acceptance criteria.

Four layers of pinning:

* **Hypothesis properties** — feature extraction is bit-exactly
  invariant under length permutations; every morpher preserves record
  count ordering and sim-clock monotonicity; padding never shrinks a
  record.
* **Seeded determinism** — same seed, same bits: retrained weights,
  knn predictions, memo-warm vs cold training, and the robustness grid
  rendered at workers 1/2/4.
* **Acceptance** — at least one morphing adversary costs the signature
  matcher >= 20 points of echo accuracy while the learned recognizer
  retrained on morphed traces lands within 10 points of its clean
  baseline.
* **Live wiring** — the proxy record-shim chain is provably transparent
  when empty or identity, and a padding adversary at the tap blinds the
  signature guard but not a knn-configured one.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.morphing import (
    MORPHERS,
    DummyBurstMorpher,
    MorphingAdversary,
    PadToFixedMorpher,
    RandomPadMorpher,
    TimingJitterMorpher,
    TrafficMorpher,
    create_morpher,
)
from repro.audio.speech import full_utterance_duration
from repro.core.config import VoiceGuardConfig
from repro.core.events import TrafficClass
from repro.core.recognizers import (
    FEATURE_DIM,
    PERMUTATION_INVARIANT,
    RECOGNIZERS,
    WindowSample,
    clear_recognizer_memo,
    extract_features,
    morph_sample,
    synth_windows,
    train_window_recognizer,
)
from repro.core.registry import PluginRegistry, RegistrationError
from repro.errors import ConfigError, WorkloadError
from repro.experiments.bench_sim import guard_event_stream
from repro.experiments.recognition_robustness import (
    run_recognition_cell,
    run_recognition_robustness,
)
from repro.experiments.scenarios import build_scenario
from repro.sim.random import RngHub

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def windows(draw, max_records: int = 24):
    """A plausible spike window: lengths + non-decreasing offsets."""
    lengths = draw(st.lists(st.integers(1, 1600), min_size=1,
                            max_size=max_records))
    gaps = draw(st.lists(
        st.floats(0.0, 2.0, allow_nan=False, allow_infinity=False),
        min_size=len(lengths), max_size=len(lengths)))
    offsets = []
    clock = 0.0
    for gap in gaps:
        offsets.append(clock)
        clock += gap
    return lengths, offsets


# ---------------------------------------------------------------------------
# Feature-extraction properties
# ---------------------------------------------------------------------------


class TestFeatureProperties:
    @given(data=st.data(), window=windows())
    @settings(max_examples=80, deadline=None)
    def test_aggregates_bit_invariant_under_length_permutation(
            self, data, window):
        lengths, offsets = window
        permuted = data.draw(st.permutations(lengths))
        base = extract_features(lengths, offsets)
        other = extract_features(permuted, offsets)
        # Exact equality, not approx: the aggregates accumulate in
        # integer arithmetic, so reordering cannot move a single bit.
        assert (base[:PERMUTATION_INVARIANT]
                == other[:PERMUTATION_INVARIANT]).all()

    @given(window=windows())
    @settings(max_examples=40, deadline=None)
    def test_feature_vector_shape_and_finiteness(self, window):
        lengths, offsets = window
        features = extract_features(lengths, offsets)
        assert features.shape == (FEATURE_DIM,)
        assert np.isfinite(features).all()
        assert features[0] == len(lengths)

    def test_empty_window_rejected(self):
        with pytest.raises(WorkloadError):
            extract_features([], [])

    def test_length_offset_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            extract_features([10, 20], [0.0])

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(WorkloadError):
            extract_features([10, 20], [1.0, 0.5])


# ---------------------------------------------------------------------------
# Morpher properties
# ---------------------------------------------------------------------------


class TestMorpherProperties:
    @pytest.mark.parametrize("name", sorted(MORPHERS.names()))
    @given(window=windows(), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_count_and_clock_monotonicity(self, name, window, seed):
        lengths, offsets = window
        morpher = create_morpher(name)
        morphed = morpher.morph_window(list(zip(offsets, lengths)),
                                       np.random.default_rng(seed))
        # Packet-count ordering: a morpher may only add records.
        assert len(morphed) >= len(lengths)
        out_offsets = [offset for offset, _ in morphed]
        assert out_offsets == sorted(out_offsets)
        assert all(length >= 1 for _, length in morphed)

    @pytest.mark.parametrize("name", ["pad-fixed", "pad-random"])
    @given(window=windows(), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_padding_never_shrinks_a_record(self, name, window, seed):
        lengths, offsets = window
        morpher = create_morpher(name)
        morphed = morpher.morph_window(list(zip(offsets, lengths)),
                                       np.random.default_rng(seed))
        assert len(morphed) == len(lengths)
        for (_, out_len), in_len in zip(morphed, lengths):
            assert out_len >= in_len

    @given(window=windows(), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_jitter_touches_only_timing(self, window, seed):
        lengths, offsets = window
        morphed = TimingJitterMorpher().morph_window(
            list(zip(offsets, lengths)), np.random.default_rng(seed))
        assert [length for _, length in morphed] == lengths
        for (out_offset, _), in_offset in zip(morphed, offsets):
            assert out_offset >= in_offset  # gaps only ever stretch

    @given(window=windows(), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_dummy_burst_keeps_real_records_in_order(self, window, seed):
        lengths, offsets = window
        morphed = DummyBurstMorpher().morph_window(
            list(zip(offsets, lengths)), np.random.default_rng(seed))
        out_lengths = [length for _, length in morphed]
        # The true records survive as a subsequence, in order.
        iterator = iter(out_lengths)
        assert all(any(candidate == wanted for candidate in iterator)
                   for wanted in lengths)

    def test_morph_sample_preserves_label(self):
        sample = WindowSample(lengths=(300, 140), offsets=(0.0, 0.2),
                              label="command")
        morphed = morph_sample(sample, PadToFixedMorpher(),
                               np.random.default_rng(0))
        assert morphed.label == "command"
        assert morphed.is_command
        assert all(length == 1460 for length in morphed.lengths)

    def test_morpher_knob_validation(self):
        with pytest.raises(ConfigError):
            PadToFixedMorpher(cell=0)
        with pytest.raises(ConfigError):
            RandomPadMorpher(max_pad=0)
        with pytest.raises(ConfigError):
            TimingJitterMorpher(max_jitter=0.0)
        with pytest.raises(ConfigError):
            DummyBurstMorpher(burst=0)
        with pytest.raises(ConfigError):
            DummyBurstMorpher(probability=1.5)


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------


class TestPluginRegistry:
    def test_register_create_names(self):
        registry = PluginRegistry("widget")
        registry.register("a", dict)
        assert "a" in registry
        assert registry.names() == ["a"]
        assert registry.create("a") == {}

    def test_duplicate_rejected_unless_replace(self):
        registry = PluginRegistry("widget")
        registry.register("a", dict)
        with pytest.raises(RegistrationError):
            registry.register("a", list)
        registry.register("a", list, replace=True)
        assert registry.create("a") == []

    def test_unknown_name_lists_known(self):
        registry = PluginRegistry("widget")
        registry.register("a", dict)
        with pytest.raises(RegistrationError, match="a"):
            registry.create("b")

    def test_builtin_registries_are_populated(self):
        from repro.core.methods import DECISION_METHODS

        assert RECOGNIZERS.names() == ["knn", "mlp", "signature"]
        assert MORPHERS.names() == ["dummy-burst", "jitter", "pad-fixed",
                                    "pad-random"]
        assert "rssi" in DECISION_METHODS
        assert {"allow-list", "quiet-hours", "all-of",
                "any-of"} <= set(DECISION_METHODS.names())


# ---------------------------------------------------------------------------
# Seeded determinism
# ---------------------------------------------------------------------------


class TestSeededDeterminism:
    def test_same_seed_mlp_weights_bit_identical(self):
        first = train_window_recognizer("mlp", "echo", RngHub(5),
                                        train_per_class=10)
        second = train_window_recognizer("mlp", "echo", RngHub(5),
                                         train_per_class=10)
        assert first.weight_bytes() == second.weight_bytes()
        different = train_window_recognizer("mlp", "echo", RngHub(6),
                                            train_per_class=10)
        assert first.weight_bytes() != different.weight_bytes()

    def test_same_seed_knn_predictions_identical(self):
        first = train_window_recognizer("knn", "echo", RngHub(5),
                                        train_per_class=10)
        second = train_window_recognizer("knn", "echo", RngHub(5),
                                         train_per_class=10)
        probe = synth_windows("echo", np.random.default_rng(77), 8)
        for sample in probe:
            assert (first.predict_window(sample.lengths, sample.offsets)
                    is second.predict_window(sample.lengths, sample.offsets))

    def test_memo_warm_returns_the_trained_object(self):
        clear_recognizer_memo()
        bucket = ("test.recognition.memo", 1)
        cold = train_window_recognizer("mlp", "echo", RngHub(5),
                                       train_per_class=8, memo_bucket=bucket)
        warm_hub = RngHub(5)
        warm = train_window_recognizer("mlp", "echo", warm_hub,
                                       train_per_class=8, memo_bucket=bucket)
        assert warm is cold
        # A memo hit draws from no stream: the hub stays untouched.
        assert warm_hub._streams == {}
        clear_recognizer_memo()
        recold = train_window_recognizer("mlp", "echo", RngHub(5),
                                         train_per_class=8,
                                         memo_bucket=bucket)
        assert recold is not cold
        assert recold.weight_bytes() == cold.weight_bytes()

    def test_grid_table_identical_across_workers_1_2_4(self):
        rendered = [
            run_recognition_robustness(seed=3, smoke=True,
                                       workers=workers).render()
            for workers in (1, 2, 4)
        ]
        assert rendered[0] == rendered[1] == rendered[2]

    def test_training_uses_dedicated_streams_only(self):
        hub = RngHub(9)
        train_window_recognizer("mlp", "echo", hub, train_per_class=6)
        assert set(hub._streams) == {"recognition.train.data",
                                     "recognition.train.init"}
        hub_morph = RngHub(9)
        train_window_recognizer("mlp", "echo", hub_morph, train_per_class=6,
                                morpher=PadToFixedMorpher())
        assert set(hub_morph._streams) == {"recognition.train.data",
                                           "recognition.train.morph",
                                           "recognition.train.init"}


# ---------------------------------------------------------------------------
# Acceptance: the arms race, in numbers
# ---------------------------------------------------------------------------


class TestArmsRaceAcceptance:
    def test_padding_blinds_signature_but_not_retrained_knn(self):
        """The PR's acceptance criteria, asserted at full cell sizes."""
        clean = run_recognition_cell("echo", "signature", "none", seed=3)
        morphed = run_recognition_cell("echo", "signature", "pad-fixed",
                                       seed=3)
        drop = (clean.accuracy - morphed.accuracy) * 100.0
        assert drop >= 20.0, (
            f"pad-fixed cost the signature matcher only {drop:.1f} points")

        knn_clean = run_recognition_cell("echo", "knn", "none", seed=3)
        knn_retrained = run_recognition_cell("echo", "knn", "pad-fixed",
                                             adaptive=True, seed=3)
        gap = abs(knn_clean.accuracy - knn_retrained.accuracy) * 100.0
        assert gap <= 10.0, (
            f"retrained knn landed {gap:.1f} points from its clean baseline")

    def test_adaptive_cell_requires_an_adversary(self):
        with pytest.raises(WorkloadError):
            run_recognition_cell("echo", "knn", "none", adaptive=True)

    def test_google_recall_is_morph_proof_for_signature(self):
        cell = run_recognition_cell("google", "signature", "pad-fixed",
                                    seed=3, eval_windows=8)
        assert cell.accuracy == 1.0

    def test_result_render_carries_headline(self):
        result = run_recognition_robustness(seed=3, smoke=True)
        rendered = result.render()
        assert "signature matcher on echo" in rendered
        assert "knn+retrain on echo" in rendered
        assert "5 cells" in rendered


# ---------------------------------------------------------------------------
# Live wiring: the proxy record-shim chain
# ---------------------------------------------------------------------------


def _run_one_command(config=None, adversary=None, seed=11):
    scenario = build_scenario(
        "house", "echo", seed=seed, owner_count=1,
        with_floor_tracking=False, anomalous_rate=0.0, config=config)
    if adversary is not None:
        adversary.install(scenario.guard.proxy)
    env = scenario.env
    scenario.owners[0].teleport(
        env.testbed.speaker_room(0).center(height=0.0))
    owner = scenario.owners[0]
    rng = env.rng.stream("test.recognition.live")
    command = scenario.corpus.sample(rng)
    duration = full_utterance_duration(command, rng)
    utterance = owner.speak(command.text, duration)
    env.play_utterance(utterance, owner.device_position())
    env.sim.run_for(duration + 14.0)
    return scenario


class TestLiveMorphingShim:
    def test_identity_shim_is_byte_transparent(self):
        baseline = _run_one_command()
        adversary = MorphingAdversary(TrafficMorpher(), seed=123)
        shimmed = _run_one_command(adversary=adversary)
        assert (guard_event_stream(shimmed.guard)
                == guard_event_stream(baseline.guard))
        assert adversary.records_shaped > 0
        assert adversary.phantoms_injected == 0

    def test_scoped_adversary_leaves_other_speakers_alone(self):
        from repro.net.addresses import IPv4Address

        baseline = _run_one_command()
        adversary = MorphingAdversary(
            PadToFixedMorpher(), seed=123,
            speaker_ips=[IPv4Address("10.9.9.9")])  # nobody's IP
        shimmed = _run_one_command(adversary=adversary)
        assert (guard_event_stream(shimmed.guard)
                == guard_event_stream(baseline.guard))
        assert adversary.records_shaped == 0

    def test_padding_at_the_tap_blinds_the_signature_guard(self):
        scenario = _run_one_command(
            adversary=MorphingAdversary(PadToFixedMorpher(), seed=7))
        classes = [event.classification for event in scenario.guard.log.events]
        assert TrafficClass.COMMAND not in classes
        assert TrafficClass.UNKNOWN in classes

    def test_knn_guard_still_sees_the_command_under_padding(self):
        scenario = _run_one_command(
            config=VoiceGuardConfig(recognizer="knn"),
            adversary=MorphingAdversary(PadToFixedMorpher(), seed=7))
        classes = [event.classification for event in scenario.guard.log.events]
        assert TrafficClass.COMMAND in classes

    def test_offline_morpher_rejected_as_live_shim(self):
        with pytest.raises(ConfigError):
            MorphingAdversary(TimingJitterMorpher(), seed=1)

    def test_config_rejects_morph_training_for_signature(self):
        with pytest.raises(ConfigError):
            VoiceGuardConfig(recognizer="signature",
                             recognizer_train_morph="pad-fixed")
        with pytest.raises(ConfigError):
            VoiceGuardConfig(recognizer="")

    def test_unknown_recognizer_fails_at_scenario_build(self):
        with pytest.raises(RegistrationError):
            build_scenario("apartment", "echo", seed=1,
                           config=VoiceGuardConfig(recognizer="svm"))

    def test_morph_trained_guard_builds(self):
        scenario = _run_one_command(
            config=VoiceGuardConfig(recognizer="mlp",
                                    recognizer_train_morph="pad-fixed"),
            adversary=MorphingAdversary(PadToFixedMorpher(), seed=7))
        classes = [event.classification for event in scenario.guard.log.events]
        assert TrafficClass.COMMAND in classes


# ---------------------------------------------------------------------------
# The signature alphabet (speakers/signatures.py)
# ---------------------------------------------------------------------------


class TestSignatureAlphabet:
    """The constants the whole arms race keys on stay self-consistent."""

    def test_avs_signature_differs_from_every_other_amazon_server(self):
        from repro.speakers import signatures as sig

        for domain, signature in sig.OTHER_AMAZON_SIGNATURES.items():
            assert signature != sig.AVS_CONNECT_SIGNATURE, domain
            # Even the comparable-length prefixes differ, so prefix
            # matching can never confuse another server for AVS.
            width = len(signature)
            assert signature != sig.AVS_CONNECT_SIGNATURE[:width], domain

    def test_phase1_filler_avoids_markers_and_the_response_pair(self):
        from repro.speakers import signatures as sig

        for length in sig.PHASE1_FILLER_POOL:
            assert length not in sig.PHASE1_MARKERS
            assert length != sig.PHASE2_MARKER_PAIR[0]  # no 77 -> no pair

    def test_phase2_prefix_avoids_the_command_alphabet(self):
        from repro.speakers import signatures as sig

        low = sig.PHASE1_FIRST_RANGE[0]
        for length in sig.PHASE2_PREFIX_POOL:
            assert length < low  # cannot open a fixed-pattern command
            assert length not in sig.PHASE1_MARKERS
            assert length != sig.PHASE2_MARKER_PAIR[0]

    def test_heartbeat_is_outside_every_marker_pool(self):
        from repro.speakers import signatures as sig

        assert sig.HEARTBEAT_LEN == 41
        assert sig.HEARTBEAT_LEN not in sig.PHASE1_MARKERS
        assert sig.HEARTBEAT_LEN not in sig.PHASE2_MARKER_PAIR
        assert sig.HEARTBEAT_LEN not in sig.PHASE1_FILLER_POOL

    def test_dummy_burst_pool_dodges_the_signature_alphabet(self):
        from repro.speakers import signatures as sig

        low, high = sig.PHASE1_FIRST_RANGE
        for length in DummyBurstMorpher.POOL:
            assert length not in sig.PHASE1_MARKERS
            assert length not in sig.PHASE2_MARKER_PAIR
            assert not low <= length <= high

    def test_classify_echo_lengths_cases(self):
        from repro.core.recognition import (
            classify_echo_lengths,
            finalize_echo_lengths,
        )

        # A phase-1 marker in the first five packets: command.
        assert classify_echo_lengths([131, 138]) is TrafficClass.COMMAND
        # The 77->33 adjacent pair within the first seven: response.
        assert classify_echo_lengths([55, 77, 33]) is TrafficClass.RESPONSE
        # Banded first packet + a fixed pattern completing at index 4.
        assert (classify_echo_lengths([277, 131, 277, 131, 113])
                is TrafficClass.COMMAND)
        # Seven undecided packets: give up as UNKNOWN.
        assert classify_echo_lengths([50] * 7) is TrafficClass.UNKNOWN
        # Short and undecided: still pending...
        assert classify_echo_lengths([50, 50]) is None
        # ...until the spike ends early, which finalizes to UNKNOWN.
        assert finalize_echo_lengths([50, 50]) is TrafficClass.UNKNOWN


# ---------------------------------------------------------------------------
# Recognizer edge cases
# ---------------------------------------------------------------------------


class TestRecognizerEdges:
    def test_unknown_speaker_kind_rejected(self):
        with pytest.raises(WorkloadError):
            RECOGNIZERS.create("knn", "homepod")
        with pytest.raises(WorkloadError):
            synth_windows("homepod", np.random.default_rng(0), 2)

    def test_unfitted_learned_recognizer_refuses_to_predict(self):
        recognizer = RECOGNIZERS.create("knn", "echo")
        assert not recognizer.fitted
        with pytest.raises(WorkloadError):
            recognizer.predict_window([100, 200], [0.0, 0.1])

    def test_knn_even_k_rejected(self):
        from repro.core.recognizers import KnnRecognizer

        with pytest.raises(WorkloadError):
            KnnRecognizer("echo", k=4)

    def test_negative_classes_follow_speaker_kind(self):
        echo = train_window_recognizer("knn", "echo", RngHub(2),
                                       train_per_class=6)
        google = train_window_recognizer("knn", "google", RngHub(2),
                                         train_per_class=6)
        noise = WindowSample(lengths=(80, 90, 70), offsets=(0.0, 0.5, 1.0),
                             label="noise")
        assert echo.predict_window(noise.lengths, noise.offsets) in (
            TrafficClass.RESPONSE, TrafficClass.COMMAND)
        assert google.predict_window(noise.lengths, noise.offsets) in (
            TrafficClass.UNKNOWN, TrafficClass.COMMAND)

    def test_train_per_class_validated(self):
        with pytest.raises(WorkloadError):
            train_window_recognizer("knn", "echo", RngHub(1),
                                    train_per_class=0)

    def test_signature_recognizer_matches_builtin_matcher(self):
        from repro.core.recognition import finalize_echo_lengths

        recognizer = RECOGNIZERS.create("signature", "echo")
        for sample in synth_windows("echo", np.random.default_rng(3), 6):
            assert (recognizer.predict_window(sample.lengths, sample.offsets)
                    is not None)
        # Finalize defers to the builtin on short undecided windows.
        assert (recognizer.finalize([100, 200], [0.0, 0.1])
                is finalize_echo_lengths([100, 200]))
