"""Tests for bootstrap statistics, CSV export, the campaign experiment,
and the command-line interface."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.analysis.stats import (
    ConfidenceInterval,
    accuracy_interval,
    bootstrap_interval,
    proportion_difference_interval,
)


class TestBootstrap:
    def test_interval_brackets_estimate(self):
        interval = bootstrap_interval([1, 0, 1, 1, 0, 1, 1, 1, 0, 1], seed=1)
        assert interval.low <= interval.estimate <= interval.high
        assert interval.estimate == pytest.approx(0.7)

    def test_all_identical_has_zero_width(self):
        interval = bootstrap_interval([1.0] * 20, seed=1)
        assert interval.width == 0.0

    def test_single_observation_degenerate(self):
        interval = bootstrap_interval([0.5], seed=1)
        assert interval.low == interval.high == 0.5

    def test_more_data_narrows_interval(self):
        rng = np.random.default_rng(0)
        small = bootstrap_interval(rng.integers(0, 2, 20).tolist(), seed=1)
        large = bootstrap_interval(rng.integers(0, 2, 500).tolist(), seed=1)
        assert large.width < small.width

    def test_interval_contains(self):
        interval = ConfidenceInterval(0.5, 0.4, 0.6, 0.95)
        assert interval.contains(0.45)
        assert not interval.contains(0.7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_interval([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_interval([1, 0], confidence=1.5)

    def test_accuracy_interval_wrapper(self):
        interval = accuracy_interval([True] * 90 + [False] * 10, seed=2)
        assert interval.estimate == pytest.approx(0.9)
        assert 0.8 < interval.low < 0.9 < interval.high <= 1.0

    def test_difference_interval_detects_effect(self):
        a = [True] * 95 + [False] * 5
        b = [True] * 60 + [False] * 40
        interval = proportion_difference_interval(a, b, seed=3)
        assert interval.estimate == pytest.approx(0.35)
        assert interval.low > 0  # significant

    def test_difference_interval_covers_null(self):
        a = [True] * 50 + [False] * 50
        b = [True] * 50 + [False] * 50
        interval = proportion_difference_interval(a, b, seed=4)
        assert interval.contains(0.0)

    def test_difference_empty_group_rejected(self):
        with pytest.raises(ValueError):
            proportion_difference_interval([], [True])


class TestCsvExport:
    def test_write_csv_roundtrip(self, tmp_path):
        from repro.analysis.export import write_csv
        target = write_csv(tmp_path / "x.csv", ["a", "b"], [[1, 2], [3, 4]])
        with target.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_write_csv_rejects_ragged(self, tmp_path):
        from repro.analysis.export import write_csv
        with pytest.raises(ValueError):
            write_csv(tmp_path / "x.csv", ["a", "b"], [[1]])

    def test_export_rssi_map(self, tmp_path):
        from repro.analysis.export import export_rssi_map
        from repro.experiments.rssi_maps import run_rssi_map
        result = run_rssi_map("apartment", 0, seed=8)
        target = export_rssi_map(result, tmp_path / "map.csv")
        with target.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 54
        assert {"location", "room", "rssi", "threshold"} <= set(rows[0])

    def test_export_trace_features(self, tmp_path):
        from repro.analysis.export import export_trace_features
        from repro.core.floor import TraceFeatures

        class Stub:
            training = {"up": [TraceFeatures(-1.7, -10.0)]}
            testing = {"up": [TraceFeatures(-1.6, -10.2)]}

        target = export_trace_features(Stub(), tmp_path / "traces.csv")
        with target.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert {r["split"] for r in rows} == {"training", "test"}

    def test_export_delays(self, tmp_path):
        from repro.analysis.export import export_delays

        class Stub:
            speaker_kind = "echo"
            delays = [1.0, 2.0]

        target = export_delays(Stub(), tmp_path / "delays.csv")
        assert target.read_text().count("\n") == 3


class TestAccuracyIntervalOnCells:
    def test_cell_interval_brackets_accuracy(self):
        from repro.experiments.runner import run_rssi_experiment
        result = run_rssi_experiment(
            "apartment", "echo", 0, seed=131, legit_count=15, malicious_count=10,
        )
        interval = result.accuracy_interval()
        assert interval.contains(result.matrix.accuracy)
        assert len(result.correct_flags()) == 25


class TestCampaign:
    def test_guarded_fleet_blocks_campaign(self):
        from repro.experiments.campaign import run_campaign
        result = run_campaign(homes=2, seed=301)
        assert result.executed_fraction(protected=False) == 1.0
        assert result.executed_fraction(protected=True) == 0.0
        assert result.compromised_homes(True) == 0
        assert result.compromised_homes(False) == 2
        assert "VoiceGuard" in result.render()


class TestCli:
    def test_fig3_runs(self, capsys):
        from repro.__main__ import main
        assert main(["fig", "3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_table1_runs(self, capsys):
        from repro.__main__ import main
        assert main(["table", "table1", "--seed", "2"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_endurance_runs(self, capsys):
        from repro.__main__ import main
        assert main(["endurance", "--seed", "29"]) == 0
        assert "Hold endurance" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_fig_choice_validated(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["fig", "99"])
