"""Tests for persons, devices, push service, motion sensor, environment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.audio.voiceprint import UtteranceSource
from repro.errors import RadioError
from repro.home.devices import TRACE_SAMPLE_COUNT, TRACE_SAMPLE_PERIOD, MotionSensor
from repro.home.environment import HomeEnvironment
from repro.home.push import PushService, RssiReport
from repro.radio.geometry import Point
from repro.radio.testbeds import WalkRoute, apartment_testbed, house_testbed


@pytest.fixture
def env():
    return HomeEnvironment(apartment_testbed(), deployment=0, seed=5)


@pytest.fixture
def house_env():
    return HomeEnvironment(house_testbed(), deployment=0, seed=5)


class TestPerson:
    def test_teleport(self, env):
        person = env.add_person("alice", Point(1, 1, 0))
        person.teleport(Point(2, 3, 0))
        assert (person.position.x, person.position.y) == (2, 3)

    def test_walk_interpolates(self, env):
        person = env.add_person("alice", Point(0, 0, 0))
        route = WalkRoute("r", [Point(0, 0, 0), Point(4, 0, 0)], duration=4.0)
        person.follow(route)
        env.sim.run_for(2.0)
        assert person.position.x == pytest.approx(2.0)
        assert person.walking
        env.sim.run_for(3.0)
        assert person.position.x == pytest.approx(4.0)
        assert not person.walking

    def test_walk_to_returns_duration(self, env):
        person = env.add_person("alice", Point(0, 0, 0))
        duration = person.walk_to(Point(3, 4, 0), speed=1.0)
        assert duration == pytest.approx(5.0)

    def test_device_position_is_carried(self, env):
        person = env.add_person("alice", Point(1, 1, 0))
        assert person.device_position().z == pytest.approx(1.0)

    def test_owner_speaks_as_owner(self, env):
        person = env.add_person("alice", Point(1, 1, 0))
        utterance = person.speak("turn on lights", 2.0)
        assert utterance.source is UtteranceSource.LIVE_OWNER

    def test_guest_speaks_as_guest(self, env):
        person = env.add_person("guest", Point(1, 1, 0), is_owner=False)
        assert person.speak("hi", 1.0).source is UtteranceSource.LIVE_GUEST

    def test_duplicate_person_rejected(self, env):
        env.add_person("alice", Point(1, 1, 0))
        with pytest.raises(RadioError):
            env.add_person("alice", Point(2, 2, 0))


class TestDevices:
    def test_measure_rssi_is_async(self, env):
        person = env.add_person("alice", Point(2, 4, 0))
        phone = env.add_smartphone("phone", person)
        samples = []
        phone.measure_rssi(env.speaker_beacon, samples.append)
        assert samples == []
        env.sim.run_for(5.0)
        assert len(samples) == 1

    def test_record_trace_has_40_samples_over_8s(self, env):
        person = env.add_person("alice", Point(2, 4, 0))
        phone = env.add_smartphone("phone", person)
        traces = []
        phone.record_trace(env.speaker_beacon, traces.append)
        env.sim.run_for(TRACE_SAMPLE_COUNT * TRACE_SAMPLE_PERIOD + 1.0)
        assert len(traces) == 1
        assert len(traces[0]) == TRACE_SAMPLE_COUNT == 40
        span = traces[0][-1].time - traces[0][0].time
        assert span == pytest.approx((TRACE_SAMPLE_COUNT - 1) * TRACE_SAMPLE_PERIOD)

    def test_instant_rssi_reflects_distance(self, env):
        near = env.add_person("near", Point(2, 4, 0))
        far = env.add_person("far", Point(9, 1, 0))
        near_phone = env.add_smartphone("near-phone", near)
        far_phone = env.add_smartphone("far-phone", far)
        near_values = [near_phone.instant_rssi(env.speaker_beacon) for _ in range(20)]
        far_values = [far_phone.instant_rssi(env.speaker_beacon) for _ in range(20)]
        assert np.mean(near_values) > np.mean(far_values)

    def test_duplicate_device_rejected(self, env):
        person = env.add_person("alice", Point(2, 4, 0))
        env.add_smartphone("phone", person)
        with pytest.raises(RadioError):
            env.add_smartphone("phone", person)

    def test_watch_and_phone_kinds(self, env):
        person = env.add_person("alice", Point(2, 4, 0))
        assert env.add_smartphone("p", person).kind == "smartphone"
        assert env.add_smartwatch("w", person).kind == "smartwatch"


class TestMotionSensor:
    def test_fires_when_person_in_region(self, house_env):
        person = house_env.add_person("alice", Point(1, 1, 0))
        sensor = house_env.install_motion_sensor()
        events = []
        sensor.on_motion = events.append
        person.teleport(Point(7.0, 4.5, 0))  # inside the stair region
        house_env.sim.run_for(1.0)
        assert len(events) == 1

    def test_refractory_period(self, house_env):
        house_env.add_person("alice", Point(7.0, 4.5, 0))
        sensor = house_env.install_motion_sensor()
        events = []
        sensor.on_motion = events.append
        house_env.sim.run_for(MotionSensor.REFRACTORY - 1.0)
        assert len(events) == 1
        house_env.sim.run_for(MotionSensor.REFRACTORY)
        assert len(events) == 2

    def test_quiet_without_people_in_region(self, house_env):
        house_env.add_person("alice", Point(1, 1, 0))
        sensor = house_env.install_motion_sensor()
        house_env.sim.run_for(10.0)
        assert sensor.event_count == 0

    def test_single_floor_testbed_has_no_sensor(self, env):
        with pytest.raises(RadioError):
            env.install_motion_sensor()


class TestPushService:
    def test_rssi_report_roundtrip(self, env):
        person = env.add_person("alice", Point(2, 4, 0))
        phone = env.add_smartphone("phone", person)
        reports = []
        env.push.request_rssi(phone, env.speaker_beacon, reports.append)
        env.sim.run_for(8.0)
        assert len(reports) == 1
        report = reports[0]
        assert isinstance(report, RssiReport)
        assert report.round_trip > 0.3  # push + wake + scan + report

    def test_group_request_reaches_all(self, env):
        reports = []
        devices = []
        for index in range(3):
            person = env.add_person(f"p{index}", Point(2, 4, 0))
            devices.append(env.add_smartphone(f"phone{index}", person))
        env.push.request_group(devices, env.speaker_beacon, reports.append)
        env.sim.run_for(10.0)
        assert {r.device_name for r in reports} == {"phone0", "phone1", "phone2"}

    def test_delivery_delay_within_bounds(self, env):
        delays = [env.push.delivery_delay() for _ in range(300)]
        assert min(delays) >= PushService.DELIVERY_MIN
        assert max(delays) <= PushService.DELIVERY_MAX


class TestEnvironmentAcoustics:
    def test_same_room_heard(self, env):
        heard = env.speaker_hears(Point(3.0, 5.0, 1.2))
        assert heard

    def test_through_wall_not_heard(self, env):
        # Bedroom 2 is behind walls from the living-room speaker.
        assert not env.speaker_hears(Point(8.5, 1.0, 1.2))

    def test_microphone_callback_receives(self, env):
        person = env.add_person("alice", Point(2, 4, 0))
        heard = []
        env.register_microphone(lambda utt, src: heard.append(utt.text))
        utterance = person.speak("hello there", 1.5)
        assert env.play_utterance(utterance, person.device_position())
        assert heard == ["hello there"]

    def test_unheard_utterance_returns_false(self, env):
        person = env.add_person("alice", Point(8.5, 1.0, 0))
        utterance = person.speak("hello", 1.0)
        assert not env.play_utterance(utterance, person.device_position())

    def test_owner_in_speaker_room_detection(self, env):
        person = env.add_person("alice", Point(2, 4, 0))
        assert env.owner_in_speaker_room()
        person.teleport(Point(8.5, 1.0, 0))
        assert not env.owner_in_speaker_room()

    def test_invalid_deployment_rejected(self):
        with pytest.raises(RadioError):
            HomeEnvironment(apartment_testbed(), deployment=5)

    def test_wifi_busy_aggregates_providers(self, env):
        assert not env.wifi_busy()
        env.wifi_busy_providers.append(lambda: True)
        assert env.wifi_busy()
