"""Unit tests for TrafficRecognition's window machinery, driven by
hand-crafted flows and packets (no network, no speakers)."""

from __future__ import annotations

import itertools

import pytest

from repro.core.config import VoiceGuardConfig
from repro.core.events import GuardLog, TrafficClass
from repro.core.recognition import SpeakerProfile, TrafficRecognition
from repro.net.addresses import IPv4Address, endpoint
from repro.net.packet import Packet, Protocol
from repro.net.proxy import ForwarderDecision, ProxiedFlow
from repro.speakers import signatures as sig

SPEAKER_IP = IPv4Address("192.168.1.200")
AVS = endpoint("54.1.1.1", 443)
OTHER = endpoint("52.1.1.1", 443)

_flow_ids = itertools.count(10_000)


def make_flow(server=AVS, protocol=Protocol.TCP) -> ProxiedFlow:
    return ProxiedFlow(
        flow_id=next(_flow_ids),
        protocol=protocol,
        client=endpoint("192.168.1.200", 50000),
        server=server,
    )


def record(length: int, server=AVS) -> Packet:
    return Packet(
        src=endpoint("192.168.1.200", 50000), dst=server,
        protocol=Protocol.TCP, payload_len=length,
    )


@pytest.fixture
def world(sim):
    log = GuardLog()
    recognition = TrafficRecognition(sim, VoiceGuardConfig(), log)
    recognition.add_speaker(SPEAKER_IP, SpeakerProfile.ECHO)
    classified = []
    recognition.on_classified = lambda window, cls: classified.append((window, cls))
    # Pretend DNS snooping already identified the AVS server.
    state = recognition.speaker_state(SPEAKER_IP)
    state.avs_ip = AVS.ip
    state.avs_ip_source = "dns"
    return sim, recognition, classified


class TestWindowMachinery:
    def test_unknown_speaker_forwards(self, world):
        sim, recognition, classified = world
        flow = make_flow()
        flow.client = endpoint("192.168.1.99", 50000)  # not a speaker
        assert recognition.observe(flow, record(277)) is ForwarderDecision.FORWARD
        assert not classified

    def test_irrelevant_server_forwards(self, world):
        sim, recognition, classified = world
        flow = make_flow(server=OTHER)
        assert recognition.observe(flow, record(277, OTHER)) is ForwarderDecision.FORWARD
        assert not classified

    def test_command_spike_holds_from_first_packet(self, world):
        sim, recognition, classified = world
        flow = make_flow()
        assert recognition.observe(flow, record(277)) is ForwarderDecision.HOLD
        assert recognition.observe(flow, record(138)) is ForwarderDecision.HOLD
        assert classified and classified[-1][1] is TrafficClass.COMMAND

    def test_response_spike_released_at_pair(self, world):
        sim, recognition, classified = world
        flow = make_flow()
        for length in (55, 61, 77):
            assert recognition.observe(flow, record(length)) is ForwarderDecision.HOLD
        # The 33 completes the pair; classification fires and the
        # current packet flows through.
        assert recognition.observe(flow, record(33)) is ForwarderDecision.FORWARD
        assert classified[-1][1] is TrafficClass.RESPONSE

    def test_heartbeats_do_not_open_windows(self, world):
        sim, recognition, classified = world
        flow = make_flow()
        assert recognition.observe(flow, record(41)) is ForwarderDecision.FORWARD
        assert recognition.windows_opened == 0

    def test_heartbeat_inside_window_is_held_for_ordering(self, world):
        sim, recognition, classified = world
        flow = make_flow()
        recognition.observe(flow, record(277))
        assert recognition.observe(flow, record(41)) is ForwarderDecision.HOLD

    def test_idle_gap_opens_new_window(self, world):
        sim, recognition, classified = world
        flow = make_flow()
        recognition.observe(flow, record(138))  # command, window 1
        sim.run_for(10.0)  # exceed the idle gap
        recognition.observe(flow, record(55))
        assert recognition.windows_opened == 2

    def test_packets_within_gap_share_window(self, world):
        sim, recognition, classified = world
        flow = make_flow()
        recognition.observe(flow, record(138))
        sim.run_for(1.0)
        recognition.observe(flow, record(1400))
        assert recognition.windows_opened == 1

    def test_pending_window_times_out_to_unknown(self, world):
        sim, recognition, classified = world
        flow = make_flow()
        recognition.observe(flow, record(300))  # undecidable alone
        sim.run_for(2.0)  # classification timeout passes
        assert classified and classified[-1][1] is TrafficClass.UNKNOWN

    def test_command_window_keeps_holding_until_resolution(self, world):
        sim, recognition, classified = world
        flow = make_flow()
        recognition.observe(flow, record(138))
        window = classified[-1][0]
        assert recognition.observe(flow, record(1400)) is ForwarderDecision.HOLD
        window.released = True
        assert recognition.observe(flow, record(1400)) is ForwarderDecision.FORWARD

    def test_discarded_tcp_window_forwards_rest(self, world):
        sim, recognition, classified = world
        flow = make_flow()
        recognition.observe(flow, record(138))
        window = classified[-1][0]
        window.discarded = True
        # TCP: the next record flows (and will desync TLS at the cloud).
        assert recognition.observe(flow, record(1400)) is ForwarderDecision.FORWARD

    def test_discarded_udp_window_keeps_dropping(self, world):
        sim, recognition, classified = world
        state = recognition.speaker_state(SPEAKER_IP)
        state.profile = SpeakerProfile.GOOGLE
        state.google_ips.add(AVS.ip)
        flow = make_flow(protocol=Protocol.UDP)
        recognition.observe(flow, record(500))
        window = classified[-1][0]
        assert window.classification is TrafficClass.COMMAND
        window.discarded = True
        assert recognition.observe(flow, record(500)) is ForwarderDecision.DROP


class TestSignatureTracking:
    def test_full_signature_identifies_server(self, world):
        sim, recognition, classified = world
        state = recognition.speaker_state(SPEAKER_IP)
        state.avs_ip = None
        state.avs_ip_source = None
        flow = make_flow(server=OTHER)
        for length in sig.AVS_CONNECT_SIGNATURE:
            recognition.observe(flow, record(length, OTHER))
        assert state.avs_ip == OTHER.ip
        assert state.avs_ip_source == "signature"

    def test_near_miss_does_not_identify(self, world):
        sim, recognition, classified = world
        state = recognition.speaker_state(SPEAKER_IP)
        state.avs_ip = None
        wrong = list(sig.AVS_CONNECT_SIGNATURE)
        wrong[3] = 999
        flow = make_flow(server=OTHER)
        for length in wrong:
            recognition.observe(flow, record(length, OTHER))
        assert state.avs_ip is None

    def test_other_amazon_signatures_never_match(self, world):
        sim, recognition, classified = world
        state = recognition.speaker_state(SPEAKER_IP)
        state.avs_ip = None
        for signature in sig.OTHER_AMAZON_SIGNATURES.values():
            flow = make_flow(server=OTHER)
            for length in signature:
                recognition.observe(flow, record(length, OTHER))
            assert state.avs_ip is None

    def test_tracking_disabled_by_flag(self, world):
        sim, recognition, classified = world
        recognition.use_signature_tracking = False
        state = recognition.speaker_state(SPEAKER_IP)
        state.avs_ip = None
        flow = make_flow(server=OTHER)
        for length in sig.AVS_CONNECT_SIGNATURE:
            recognition.observe(flow, record(length, OTHER))
        assert state.avs_ip is None

    def test_learned_signature_takes_precedence(self, world):
        sim, recognition, classified = world
        from repro.core.signature_learning import SignatureLearner
        learner = SignatureLearner(prefix_length=4, confirmations=1)
        recognition.signature_learner = learner
        state = recognition.speaker_state(SPEAKER_IP)
        # The learner adopts a custom 4-length prefix from one
        # DNS-confirmed AVS flow...
        confirmed = make_flow(server=AVS)
        for length in (9, 8, 7, 6):
            recognition.observe(confirmed, record(length, AVS))
        assert learner.active is not None
        assert learner.active.lengths == (9, 8, 7, 6)
        # ... and a later, DNS-less connection to a brand-new IP is
        # re-identified through the learned signature.
        state.avs_ip = None
        state.avs_ip_source = None
        silent = make_flow(server=OTHER)
        for length in (9, 8, 7, 6):
            recognition.observe(silent, record(length, OTHER))
        assert state.avs_ip == OTHER.ip
        assert state.avs_ip_source == "signature"

    def test_dns_snoop_sets_avs_ip(self, world):
        sim, recognition, classified = world
        state = recognition.speaker_state(SPEAKER_IP)
        state.avs_ip = None
        response = Packet(
            src=endpoint("192.168.1.1", 53),
            dst=endpoint("192.168.1.200", 5353),
            protocol=Protocol.UDP,
            payload_len=62,
            meta={"dns_response": sig.AVS_DOMAIN, "dns_answers": [AVS.ip]},
        )
        recognition.observe_snoop(response)
        assert state.avs_ip == AVS.ip
        assert state.avs_ip_source == "dns"

    def test_snoop_ignores_unrelated_domains(self, world):
        sim, recognition, classified = world
        state = recognition.speaker_state(SPEAKER_IP)
        state.avs_ip = None
        response = Packet(
            src=endpoint("192.168.1.1", 53),
            dst=endpoint("192.168.1.200", 5353),
            protocol=Protocol.UDP,
            payload_len=62,
            meta={"dns_response": "example.com", "dns_answers": [OTHER.ip]},
        )
        recognition.observe_snoop(response)
        assert state.avs_ip is None


class TestGoogleProfile:
    @pytest.fixture
    def google_world(self, sim):
        log = GuardLog()
        recognition = TrafficRecognition(sim, VoiceGuardConfig(), log)
        recognition.add_speaker(SPEAKER_IP, SpeakerProfile.GOOGLE)
        classified = []
        recognition.on_classified = lambda w, c: classified.append((w, c))
        state = recognition.speaker_state(SPEAKER_IP)
        state.google_ips.add(AVS.ip)
        return sim, recognition, classified

    def test_first_packet_is_command(self, google_world):
        sim, recognition, classified = google_world
        flow = make_flow()
        assert recognition.observe(flow, record(480)) is ForwarderDecision.HOLD
        assert classified[-1][1] is TrafficClass.COMMAND

    def test_unknown_google_server_forwards(self, google_world):
        sim, recognition, classified = google_world
        flow = make_flow(server=OTHER)
        assert recognition.observe(flow, record(480, OTHER)) is ForwarderDecision.FORWARD


class TestClassifyEchoLengthBoundaries:
    """Edge-of-window behaviour of the incremental phase classifier.

    The classifier's windows are exclusive at their far edge: markers
    count only among the first five packets, the 77->33 response pair
    only when *both* packets sit inside the seven-packet head.
    """

    FILLER = 999  # not a marker, a pair element, or a first-range value

    def test_phase1_marker_at_index_four_is_command(self):
        from repro.core.recognition import classify_echo_lengths

        lengths = [self.FILLER] * 4 + [sig.PHASE1_MARKERS[0]]
        assert classify_echo_lengths(lengths) is TrafficClass.COMMAND

    def test_phase1_marker_at_index_five_is_outside_window(self):
        from repro.core.recognition import classify_echo_lengths

        lengths = [self.FILLER] * 5 + [sig.PHASE1_MARKERS[0]]
        # Six packets seen, marker too late: still undecidable...
        assert classify_echo_lengths(lengths) is None
        # ...and a seventh non-evidence packet settles it as UNKNOWN,
        # never as a command.
        assert (classify_echo_lengths(lengths + [self.FILLER])
                is TrafficClass.UNKNOWN)

    def test_phase2_pair_ending_at_head_edge_is_response(self):
        from repro.core.recognition import classify_echo_lengths

        first, second = sig.PHASE2_MARKER_PAIR
        lengths = ([self.FILLER] * (sig.PHASE2_MARKER_MAX_INDEX - 2)
                   + [first, second])
        assert len(lengths) == sig.PHASE2_MARKER_MAX_INDEX
        assert classify_echo_lengths(lengths) is TrafficClass.RESPONSE

    def test_phase2_pair_straddling_head_cut_is_unknown(self):
        from repro.core.recognition import classify_echo_lengths

        first, second = sig.PHASE2_MARKER_PAIR
        # 77 is the seventh packet, 33 the eighth: the pair straddles
        # the head cut, so the response signal must NOT fire.
        lengths = ([self.FILLER] * (sig.PHASE2_MARKER_MAX_INDEX - 1)
                   + [first, second])
        assert classify_echo_lengths(lengths) is TrafficClass.UNKNOWN

    def test_empty_lengths_finalize_to_unknown(self):
        from repro.core.recognition import classify_echo_lengths, finalize_echo_lengths

        assert classify_echo_lengths([]) is None
        assert finalize_echo_lengths([]) is TrafficClass.UNKNOWN
