"""Unit tests for the TrafficHandler with a stubbed decision module."""

from __future__ import annotations

import itertools

import pytest

from repro.core.config import VoiceGuardConfig
from repro.core.decision import DecisionResult, Verdict
from repro.core.events import CommandEvent, TrafficClass
from repro.core.handler import TrafficHandler
from repro.core.recognition import Window
from repro.net.addresses import IPv4Address, endpoint
from repro.net.packet import Protocol
from repro.net.proxy import ProxiedFlow

_ids = itertools.count(1)


class _StubProxy:
    def __init__(self):
        self.released = []
        self.discarded = []

    def release_held(self, flow):
        self.released.append(flow)
        return 3

    def discard_held(self, flow):
        self.discarded.append(flow)
        return 3


class _StubDecision:
    """Records contexts; resolves when told to."""

    def __init__(self):
        self.pending = []

    def decide(self, context, callback):
        self.pending.append((context, callback))

    def resolve(self, verdict):
        context, callback = self.pending.pop(0)
        callback(DecisionResult(verdict=verdict))


def make_window(protocol=Protocol.TCP) -> Window:
    flow = ProxiedFlow(
        flow_id=next(_ids), protocol=protocol,
        client=endpoint("192.168.1.200", 50000),
        server=endpoint("54.1.1.1", 443),
    )
    window = Window(
        window_id=next(_ids), flow=flow,
        speaker_ip=IPv4Address("192.168.1.200"),
        opened_at=0.0, last_packet_time=0.0,
    )
    window.event = CommandEvent(
        window_id=window.window_id, flow_id=flow.flow_id,
        speaker_ip="192.168.1.200", protocol=protocol.value, opened_at=0.0,
    )
    return window


@pytest.fixture
def handler_world(sim):
    proxy = _StubProxy()
    decision = _StubDecision()
    handler = TrafficHandler(
        sim=sim, config=VoiceGuardConfig(),
        proxy=proxy, udp_forwarder=None, decision=decision,
    )
    return sim, handler, proxy, decision


class TestHandlerResolution:
    def test_benign_windows_release_immediately(self, handler_world):
        sim, handler, proxy, decision = handler_world
        window = make_window()
        handler.on_window_classified(window, TrafficClass.RESPONSE)
        assert window.released
        assert proxy.released == [window.flow]
        assert handler.benign_windows_released == 1
        assert not decision.pending

    def test_unknown_windows_release_immediately(self, handler_world):
        sim, handler, proxy, decision = handler_world
        window = make_window()
        handler.on_window_classified(window, TrafficClass.UNKNOWN)
        assert window.released

    def test_legitimate_verdict_releases(self, handler_world):
        sim, handler, proxy, decision = handler_world
        window = make_window()
        handler.on_window_classified(window, TrafficClass.COMMAND)
        assert decision.pending and not window.resolved
        decision.resolve(Verdict.LEGITIMATE)
        assert window.released and not window.discarded
        assert handler.commands_released == 1
        assert window.event.verdict is Verdict.LEGITIMATE
        assert window.event.held_records == 3

    def test_malicious_verdict_discards(self, handler_world):
        sim, handler, proxy, decision = handler_world
        window = make_window()
        handler.on_window_classified(window, TrafficClass.COMMAND)
        decision.resolve(Verdict.MALICIOUS)
        assert window.discarded and not window.released
        assert handler.commands_blocked == 1
        assert proxy.discarded == [window.flow]

    def test_timeout_fail_closed_discards(self, handler_world):
        sim, handler, proxy, decision = handler_world
        window = make_window()
        handler.on_window_classified(window, TrafficClass.COMMAND)
        decision.resolve(Verdict.TIMEOUT)
        assert window.discarded

    def test_timeout_fail_open_releases(self, sim):
        proxy = _StubProxy()
        decision = _StubDecision()
        handler = TrafficHandler(
            sim=sim, config=VoiceGuardConfig(fail_open=True),
            proxy=proxy, udp_forwarder=None, decision=decision,
        )
        window = make_window()
        handler.on_window_classified(window, TrafficClass.COMMAND)
        decision.resolve(Verdict.TIMEOUT)
        assert window.released

    def test_max_hold_failsafe_fires(self, handler_world):
        sim, handler, proxy, decision = handler_world
        window = make_window()
        handler.on_window_classified(window, TrafficClass.COMMAND)
        sim.run_for(handler.config.max_hold + 1.0)
        assert window.discarded  # fail-closed default

    def test_late_verdict_after_failsafe_is_ignored(self, handler_world):
        sim, handler, proxy, decision = handler_world
        window = make_window()
        handler.on_window_classified(window, TrafficClass.COMMAND)
        sim.run_for(handler.config.max_hold + 1.0)
        decision.resolve(Verdict.LEGITIMATE)
        assert window.discarded and not window.released
        assert len(proxy.released) == 0

    def test_udp_window_uses_forwarder(self, sim):
        proxy = _StubProxy()
        forwarder = _StubProxy()
        decision = _StubDecision()
        handler = TrafficHandler(
            sim=sim, config=VoiceGuardConfig(),
            proxy=proxy, udp_forwarder=forwarder, decision=decision,
        )
        window = make_window(protocol=Protocol.UDP)
        handler.on_window_classified(window, TrafficClass.COMMAND)
        decision.resolve(Verdict.MALICIOUS)
        assert forwarder.discarded == [window.flow]
        assert proxy.discarded == []

    def test_udp_window_without_forwarder_is_noop_count(self, handler_world):
        sim, handler, proxy, decision = handler_world
        window = make_window(protocol=Protocol.UDP)
        handler.on_window_classified(window, TrafficClass.COMMAND)
        decision.resolve(Verdict.MALICIOUS)
        assert window.discarded
        assert window.event.held_records == 0
