"""Unit tests for addresses, packets, links, DNS, UDP, and capture."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.addresses import Endpoint, IPv4Address, endpoint
from repro.net.capture import PacketCapture
from repro.net.dns import DnsClient, DnsServer
from repro.net.link import Host, Network, TapHost
from repro.net.packet import Packet, Protocol, TcpFlags, TlsRecordType
from repro.net.udp import UdpFlow, ephemeral_udp_flow
from repro.sim.random import RngHub


@pytest.fixture
def network(sim):
    return Network(sim, RngHub(1))


def make_host(network, name, ip):
    host = Host(name, IPv4Address(ip))
    network.attach(host)
    return host


class TestAddresses:
    def test_valid_address(self):
        assert str(IPv4Address("192.168.1.200")) == "192.168.1.200"

    @pytest.mark.parametrize("bad", ["1.2.3", "256.1.1.1", "a.b.c.d", "01.2.3.4", "1.2.3.4.5"])
    def test_invalid_addresses(self, bad):
        with pytest.raises(NetworkError):
            IPv4Address(bad)

    @pytest.mark.parametrize("ip,private", [
        ("192.168.0.1", True),
        ("10.0.0.1", True),
        ("172.16.0.1", True),
        ("172.32.0.1", False),
        ("8.8.8.8", False),
        ("54.239.28.85", False),
    ])
    def test_private_detection(self, ip, private):
        assert IPv4Address(ip).is_private is private

    def test_endpoint_str(self):
        assert str(endpoint("10.0.0.1", 443)) == "10.0.0.1:443"

    @pytest.mark.parametrize("port", [0, -1, 70000])
    def test_invalid_ports(self, port):
        with pytest.raises(NetworkError):
            Endpoint(IPv4Address("10.0.0.1"), port)

    def test_endpoints_hashable_and_ordered(self):
        a = endpoint("10.0.0.1", 1000)
        b = endpoint("10.0.0.1", 2000)
        assert len({a, b, a}) == 2
        assert a < b


class TestPacket:
    def test_negative_payload_rejected(self):
        with pytest.raises(NetworkError):
            Packet(
                src=endpoint("10.0.0.1", 1), dst=endpoint("10.0.0.2", 2),
                protocol=Protocol.UDP, payload_len=-1,
            )

    def test_application_data_detection(self):
        packet = Packet(
            src=endpoint("10.0.0.1", 1), dst=endpoint("10.0.0.2", 2),
            protocol=Protocol.TCP, payload_len=100,
            tls_type=TlsRecordType.APPLICATION_DATA,
        )
        assert packet.is_application_data
        ack = Packet(
            src=endpoint("10.0.0.1", 1), dst=endpoint("10.0.0.2", 2),
            protocol=Protocol.TCP, flags=TcpFlags.ACK,
        )
        assert not ack.is_application_data

    def test_packet_numbers_increase(self):
        a = Packet(src=endpoint("10.0.0.1", 1), dst=endpoint("10.0.0.2", 2),
                   protocol=Protocol.UDP, payload_len=1)
        b = Packet(src=endpoint("10.0.0.1", 1), dst=endpoint("10.0.0.2", 2),
                   protocol=Protocol.UDP, payload_len=1)
        assert b.number > a.number

    def test_brief_renders(self):
        packet = Packet(src=endpoint("10.0.0.1", 1), dst=endpoint("10.0.0.2", 2),
                        protocol=Protocol.TCP, payload_len=41, flags=TcpFlags.PSH | TcpFlags.ACK)
        text = packet.brief()
        assert "len=41" in text and "PSH" in text


class TestNetwork:
    def test_delivery(self, sim, network):
        a = make_host(network, "a", "192.168.1.10")
        b = make_host(network, "b", "192.168.1.11")
        received = []
        b.register_udp_handler(9, received.append)
        a.send(Packet(src=Endpoint(a.ip, 1), dst=Endpoint(b.ip, 9),
                      protocol=Protocol.UDP, payload_len=10))
        sim.run()
        assert len(received) == 1

    def test_duplicate_ip_rejected(self, network):
        make_host(network, "a", "192.168.1.10")
        with pytest.raises(NetworkError):
            make_host(network, "b", "192.168.1.10")

    def test_lan_faster_than_wan(self, sim, network):
        a = make_host(network, "a", "192.168.1.10")
        b = make_host(network, "b", "192.168.1.11")
        c = make_host(network, "c", "54.1.1.1")
        times = {}
        b.register_udp_handler(9, lambda p: times.__setitem__("lan", sim.now))
        c.register_udp_handler(9, lambda p: times.__setitem__("wan", sim.now))
        a.send(Packet(src=Endpoint(a.ip, 1), dst=Endpoint(b.ip, 9),
                      protocol=Protocol.UDP, payload_len=1))
        a.send(Packet(src=Endpoint(a.ip, 1), dst=Endpoint(c.ip, 9),
                      protocol=Protocol.UDP, payload_len=1))
        sim.run()
        assert times["lan"] < times["wan"]

    def test_per_pair_fifo_despite_jitter(self, sim, network):
        a = make_host(network, "a", "192.168.1.10")
        c = make_host(network, "c", "54.1.1.1")
        order = []
        c.register_udp_handler(9, lambda p: order.append(p.payload_len))
        for size in range(1, 30):
            a.send(Packet(src=Endpoint(a.ip, 1), dst=Endpoint(c.ip, 9),
                          protocol=Protocol.UDP, payload_len=size))
        sim.run()
        assert order == list(range(1, 30))

    def test_tap_diverts_both_directions(self, sim, network):
        speaker = make_host(network, "speaker", "192.168.1.200")
        cloud = make_host(network, "cloud", "54.1.1.1")
        tap = TapHost("tap", IPv4Address("192.168.1.50"))
        network.attach(tap)
        network.install_tap(speaker.ip, tap)
        intercepted = []
        tap.intercept = lambda p: intercepted.append(p)  # type: ignore[assignment]
        speaker.send(Packet(src=Endpoint(speaker.ip, 1), dst=Endpoint(cloud.ip, 9),
                            protocol=Protocol.UDP, payload_len=1))
        cloud.send(Packet(src=Endpoint(cloud.ip, 9), dst=Endpoint(speaker.ip, 1),
                          protocol=Protocol.UDP, payload_len=2))
        sim.run()
        assert [p.payload_len for p in intercepted] == [1, 2]

    def test_tap_origin_bypasses_tap(self, sim, network):
        speaker = make_host(network, "speaker", "192.168.1.200")
        cloud = make_host(network, "cloud", "54.1.1.1")
        received = []
        cloud.register_udp_handler(9, received.append)
        tap = TapHost("tap", IPv4Address("192.168.1.50"))
        network.attach(tap)
        network.install_tap(speaker.ip, tap)
        # The tap re-injects (bridges) the packet; default intercept does.
        speaker.send(Packet(src=Endpoint(speaker.ip, 1), dst=Endpoint(cloud.ip, 9),
                            protocol=Protocol.UDP, payload_len=7))
        sim.run()
        assert [p.payload_len for p in received] == [7]

    def test_alias_routes_to_same_host(self, sim, network):
        host = make_host(network, "cloud", "54.1.1.1")
        network.add_alias(host, IPv4Address("54.1.1.2"))
        received = []
        host.register_udp_handler(9, received.append)
        other = make_host(network, "a", "192.168.1.10")
        other.send(Packet(src=Endpoint(other.ip, 1), dst=endpoint("54.1.1.2", 9),
                          protocol=Protocol.UDP, payload_len=1))
        sim.run()
        assert len(received) == 1

    def test_alias_collision_rejected(self, network):
        host = make_host(network, "cloud", "54.1.1.1")
        make_host(network, "other", "54.1.1.2")
        with pytest.raises(NetworkError):
            network.add_alias(host, IPv4Address("54.1.1.2"))

    def test_unattached_host_cannot_send(self):
        host = Host("loner", IPv4Address("10.0.0.1"))
        with pytest.raises(NetworkError):
            host.send(Packet(src=Endpoint(host.ip, 1), dst=endpoint("10.0.0.2", 2),
                             protocol=Protocol.UDP, payload_len=1))


class TestDns:
    def test_query_answer_roundtrip(self, sim, network):
        server = DnsServer("dns", IPv4Address("192.168.1.1"))
        network.attach(server)
        server.add_record("example.com", [IPv4Address("54.1.1.1")])
        client_host = make_host(network, "client", "192.168.1.10")
        client = DnsClient(client_host, Endpoint(server.ip, 53))
        answers = []
        client.resolve("example.com", answers.extend)
        sim.run()
        assert answers == [IPv4Address("54.1.1.1")]

    def test_rotation_changes_answer(self, sim, network):
        server = DnsServer("dns", IPv4Address("192.168.1.1"))
        network.attach(server)
        record = server.add_record("example.com", [
            IPv4Address("54.1.1.1"), IPv4Address("54.1.1.2"),
        ])
        assert record.current() == IPv4Address("54.1.1.1")
        assert record.rotate() == IPv4Address("54.1.1.2")
        assert record.rotate() == IPv4Address("54.1.1.1")

    def test_unknown_domain_yields_empty(self, sim, network):
        server = DnsServer("dns", IPv4Address("192.168.1.1"))
        network.attach(server)
        client_host = make_host(network, "client", "192.168.1.10")
        client = DnsClient(client_host, Endpoint(server.ip, 53))
        results = []
        client.resolve("nope.example", results.append)
        sim.run()
        assert results == [[]]

    def test_empty_record_rejected(self, network):
        server = DnsServer("dns", IPv4Address("192.168.1.1"))
        network.attach(server)
        with pytest.raises(NetworkError):
            server.add_record("empty.example", [])


class TestUdpFlow:
    def test_send_and_receive(self, sim, network):
        a = make_host(network, "a", "192.168.1.10")
        b = make_host(network, "b", "192.168.1.11")
        got = []
        flow_b = UdpFlow(b, Endpoint(b.ip, 500), Endpoint(a.ip, 400),
                         lambda flow, p: got.append(p.payload_len))
        flow_a = UdpFlow(a, Endpoint(a.ip, 400), Endpoint(b.ip, 500))
        flow_a.send(123)
        sim.run()
        assert got == [123]
        assert flow_a.datagrams_sent == 1
        assert flow_b.datagrams_received == 1

    def test_zero_payload_rejected(self, sim, network):
        a = make_host(network, "a", "192.168.1.10")
        flow = ephemeral_udp_flow(a, endpoint("192.168.1.11", 500), port=401)
        with pytest.raises(NetworkError):
            flow.send(0)


class TestCapture:
    def test_records_and_filters(self, sim, network):
        a = make_host(network, "a", "192.168.1.10")
        b = make_host(network, "b", "192.168.1.11")
        capture = PacketCapture().attach(network)
        a.send(Packet(src=Endpoint(a.ip, 1), dst=Endpoint(b.ip, 9),
                      protocol=Protocol.UDP, payload_len=10))
        sim.run()
        assert len(capture) == 1
        assert capture.from_ip(a.ip)[0].payload_len == 10
        assert capture.involving(b.ip)

    def test_keep_predicate(self, sim, network):
        a = make_host(network, "a", "192.168.1.10")
        b = make_host(network, "b", "192.168.1.11")
        capture = PacketCapture().attach(network, keep=lambda p: p.payload_len > 5)
        for size in (3, 8):
            a.send(Packet(src=Endpoint(a.ip, 1), dst=Endpoint(b.ip, 9),
                          protocol=Protocol.UDP, payload_len=size))
        sim.run()
        assert [r.payload_len for r in capture] == [8]

    def test_render_contains_rows(self, sim, network):
        a = make_host(network, "a", "192.168.1.10")
        b = make_host(network, "b", "192.168.1.11")
        capture = PacketCapture().attach(network)
        a.send(Packet(src=Endpoint(a.ip, 1), dst=Endpoint(b.ip, 9),
                      protocol=Protocol.UDP, payload_len=10))
        sim.run()
        text = capture.render()
        assert "192.168.1.10" in text
