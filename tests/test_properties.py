"""Property-based tests (hypothesis) on core data structures and
invariants: event ordering, metrics algebra, regression, TLS sequencing,
geometry, corpus construction, and the recognizer's length grammar."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.analysis.metrics import ConfusionMatrix
from repro.analysis.regression import linear_fit
from repro.audio.commands import _exact_counts
from repro.core.events import TrafficClass
from repro.core.recognition import classify_echo_lengths, finalize_echo_lengths
from repro.net.tls import TlsSession
from repro.radio.geometry import Point, distance, path_points, segment_crosses_wall
from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator
from repro.speakers import signatures as sig


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False, allow_infinity=False), max_size=60))
    def test_pops_sorted(self, times):
        queue = EventQueue()
        fired = []
        for t in times:
            queue.push(t, fired.append, (t,))
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                        allow_nan=False),
                              st.booleans()), max_size=40))
    def test_cancellation_never_loses_live_events(self, entries):
        queue = EventQueue()
        fired = []
        expected = 0
        for t, keep in entries:
            handle = queue.push(t, fired.append, (t,))
            if keep:
                expected += 1
            else:
                handle.cancel()
        while (event := queue.pop()) is not None:
            event.fire()
        assert len(fired) == expected


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.001, max_value=50, allow_nan=False),
                    min_size=1, max_size=30))
    def test_clock_monotonic_under_any_schedule(self, delays):
        sim = Simulator()
        seen = []
        for d in delays:
            sim.schedule(d, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert sim.now == max(delays)


class TestMetricsProperties:
    counts = st.integers(min_value=0, max_value=1000)

    @given(counts, counts, counts, counts)
    def test_rates_bounded(self, tp, fp, tn, fn):
        matrix = ConfusionMatrix(tp, fp, tn, fn)
        for value in (matrix.accuracy, matrix.precision, matrix.recall):
            assert math.isnan(value) or 0.0 <= value <= 1.0

    @given(counts, counts, counts, counts, counts, counts, counts, counts)
    def test_merge_is_additive(self, a1, a2, a3, a4, b1, b2, b3, b4):
        a = ConfusionMatrix(a1, a2, a3, a4)
        b = ConfusionMatrix(b1, b2, b3, b4)
        merged = a.merged(b)
        assert merged.total == a.total + b.total
        assert merged.true_positive == a1 + b1

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=200))
    def test_record_preserves_total(self, outcomes):
        matrix = ConfusionMatrix()
        for actual, predicted in outcomes:
            matrix.record(actual, predicted)
        assert matrix.total == len(outcomes)
        assert matrix.actual_positive == sum(1 for a, _ in outcomes if a)


class TestRegressionProperties:
    @given(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.integers(min_value=2, max_value=60),
    )
    def test_recovers_exact_line(self, slope, intercept, n):
        xs = [0.2 * i for i in range(n)]
        assume(len(set(xs)) > 1)
        ys = [slope * x + intercept for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.slope == pytest.approx(slope, abs=1e-6)
        assert fit.intercept == pytest.approx(intercept, abs=1e-6)

    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=3, max_size=50))
    def test_r_squared_bounded(self, values):
        xs = list(range(len(values)))
        fit = linear_fit(xs, values)
        assert fit.r_squared <= 1.0 + 1e-9


class TestTlsProperties:
    @given(st.integers(min_value=1, max_value=200))
    def test_continuous_stream_never_violates(self, n):
        session = TlsSession()
        for expected in range(n):
            assert session.accept_record(expected, now=0.0) is None

    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=1, max_value=50))
    def test_any_gap_violates(self, prefix, gap):
        session = TlsSession()
        for expected in range(prefix):
            session.accept_record(expected, now=0.0)
        violation = session.accept_record(prefix + gap, now=1.0)
        assert violation is not None
        assert violation.expected_seq == prefix


class TestGeometryProperties:
    coords = st.floats(min_value=-50, max_value=50, allow_nan=False)

    @given(coords, coords, coords, coords, coords, coords)
    def test_distance_symmetric_and_nonnegative(self, x1, y1, z1, x2, y2, z2):
        a, b = Point(x1, y1, z1), Point(x2, y2, z2)
        assert distance(a, b) == pytest.approx(distance(b, a))
        assert distance(a, b) >= 0
        assert distance(a, a) == 0

    @given(coords, coords, coords, coords,
           st.floats(min_value=0, max_value=1, allow_nan=False))
    def test_lerp_stays_between(self, x1, y1, x2, y2, t):
        a, b = Point(x1, y1, 0), Point(x2, y2, 0)
        mid = a.lerp(b, t)
        assert min(a.x, b.x) - 1e-9 <= mid.x <= max(a.x, b.x) + 1e-9

    @given(st.integers(min_value=2, max_value=30))
    def test_path_points_count_and_endpoints(self, n):
        points = path_points(Point(0, 0, 0), Point(5, 5, 5), n)
        assert len(points) == n
        assert distance(points[0], Point(0, 0, 0)) < 1e-9
        assert distance(points[-1], Point(5, 5, 5)) < 1e-9

    @given(coords, coords)
    def test_wall_crossing_symmetric(self, y1, y2):
        a, b = Point(0, y1, 1), Point(4, y2, 1)
        forward = segment_crosses_wall(a, b, (2, -60), (2, 60), 0, 3)
        backward = segment_crosses_wall(b, a, (2, -60), (2, 60), 0, 3)
        assert forward == backward


class TestCorpusProperties:
    @given(st.integers(min_value=10, max_value=2000))
    def test_exact_counts_sum_to_total(self, total):
        pmf = {2: 0.2, 3: 0.3, 4: 0.5}
        counts = _exact_counts(pmf, total)
        assert sum(c for _, c in counts) == total
        assert all(c >= 0 for _, c in counts)


class TestRecognizerGrammarProperties:
    filler = st.sampled_from(sig.PHASE1_FILLER_POOL)

    @given(st.integers(min_value=0, max_value=4), filler, filler, filler, filler)
    def test_marker_in_first_five_always_command(self, position, a, b, c, d):
        lengths = [a, b, c, d, 300]
        lengths.insert(position, 138)
        assert classify_echo_lengths(lengths[:5]) is TrafficClass.COMMAND

    @given(st.lists(st.sampled_from(sig.PHASE2_PREFIX_POOL), min_size=0, max_size=5))
    def test_pair_after_prefix_always_response(self, prefix):
        lengths = prefix + [77, 33]
        decided = classify_echo_lengths(lengths[: sig.PHASE2_MARKER_MAX_INDEX])
        if len(prefix) <= 5:
            assert decided is TrafficClass.RESPONSE

    @given(st.lists(st.sampled_from(sig.PHASE2_PREFIX_POOL), min_size=7, max_size=12))
    def test_markerless_stream_never_command(self, lengths):
        assert classify_echo_lengths(lengths) is not TrafficClass.COMMAND
        assert finalize_echo_lengths(lengths) is TrafficClass.UNKNOWN

    @given(st.lists(st.integers(min_value=1, max_value=1500), min_size=1, max_size=12))
    def test_classifier_total_on_any_input(self, lengths):
        decided = classify_echo_lengths(lengths)
        assert decided in (None, TrafficClass.COMMAND, TrafficClass.RESPONSE,
                           TrafficClass.UNKNOWN)
        assert finalize_echo_lengths(lengths) in (
            TrafficClass.COMMAND, TrafficClass.RESPONSE, TrafficClass.UNKNOWN,
        )

    @given(st.data())
    def test_generated_command_spikes_recognized(self, data):
        """The traffic model and the recognizer agree: non-anomalous
        command spikes classify as COMMAND within seven packets."""
        from repro.speakers.interaction import EchoTrafficModel
        seed = data.draw(st.integers(min_value=0, max_value=10_000))
        model = EchoTrafficModel(np.random.default_rng(seed), anomalous_rate=0.0)
        script = model.command_phase(2.0)
        lengths = [r.length for r in script.records[:7]]
        assert classify_echo_lengths(lengths) is TrafficClass.COMMAND

    @given(st.data())
    def test_generated_response_spikes_recognized(self, data):
        from repro.speakers.interaction import EchoTrafficModel
        seed = data.draw(st.integers(min_value=0, max_value=10_000))
        model = EchoTrafficModel(np.random.default_rng(seed))
        spike = model.response_spike()
        lengths = [r.length for r in spike[:7]]
        assert classify_echo_lengths(lengths) is TrafficClass.RESPONSE
