"""Radio substrate tests: geometry, floor plans, propagation, testbeds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FloorPlanError
from repro.radio.bluetooth import BluetoothBeacon, BluetoothScanner
from repro.radio.floorplan import FLOOR_HEIGHT, Door, FloorPlan, Room, SlabZone
from repro.radio.geometry import (
    Point,
    count_floor_crossings,
    distance,
    floor_crossing_points,
    path_points,
    point_in_rect,
    segment_crosses_wall,
)
from repro.radio.propagation import PropagationModel, PropagationParams
from repro.radio.testbeds import (
    HOUSE_LEAK_POINT_NUMBERS,
    WalkRoute,
    apartment_testbed,
    house_testbed,
    office_testbed,
)
from repro.radio.testbeds import testbed_by_name as build_testbed


class TestGeometry:
    def test_distance_3d(self):
        assert distance(Point(0, 0, 0), Point(3, 4, 0)) == pytest.approx(5.0)
        assert distance(Point(0, 0, 0), Point(0, 0, 2)) == pytest.approx(2.0)

    def test_wall_crossing_detected(self):
        assert segment_crosses_wall(
            Point(0, 1, 1), Point(4, 1, 1), (2, 0), (2, 2), z_low=0, z_high=3,
        )

    def test_wall_missed_beside(self):
        assert not segment_crosses_wall(
            Point(0, 5, 1), Point(4, 5, 1), (2, 0), (2, 2), z_low=0, z_high=3,
        )

    def test_crossing_above_wall_does_not_count(self):
        assert not segment_crosses_wall(
            Point(0, 1, 4), Point(4, 1, 4), (2, 0), (2, 2), z_low=0, z_high=3,
        )

    def test_door_opening_passes(self):
        # Door occupies the middle half of the wall.
        assert not segment_crosses_wall(
            Point(0, 1, 1), Point(4, 1, 1), (2, 0), (2, 2),
            z_low=0, z_high=3, openings=[(0.25, 0.75)],
        )

    def test_crossing_outside_door_counts(self):
        assert segment_crosses_wall(
            Point(0, 0.2, 1), Point(4, 0.2, 1), (2, 0), (2, 2),
            z_low=0, z_high=3, openings=[(0.25, 0.75)],
        )

    def test_parallel_segment_never_crosses(self):
        assert not segment_crosses_wall(
            Point(2, 0, 1), Point(2, 2, 1), (2, 0), (2, 2), z_low=0, z_high=3,
        )

    def test_floor_crossings_counted(self):
        assert count_floor_crossings(Point(0, 0, 1), Point(0, 0, 5), [3.0]) == 1
        assert count_floor_crossings(Point(0, 0, 1), Point(0, 0, 2), [3.0]) == 0

    def test_floor_crossing_points_located(self):
        crossings = floor_crossing_points(Point(0, 0, 0), Point(4, 4, 6), [3.0])
        assert len(crossings) == 1
        x, y, h = crossings[0]
        assert (x, y, h) == (pytest.approx(2.0), pytest.approx(2.0), 3.0)

    def test_point_in_rect(self):
        assert point_in_rect(Point(1, 1, 0), 0, 0, 2, 2)
        assert not point_in_rect(Point(3, 1, 0), 0, 0, 2, 2)

    def test_path_points_endpoints(self):
        points = path_points(Point(0, 0, 0), Point(2, 0, 0), 5)
        assert len(points) == 5
        assert points[0].x == 0 and points[-1].x == 2

    def test_path_points_rejects_single(self):
        with pytest.raises(ValueError):
            path_points(Point(0, 0, 0), Point(1, 0, 0), 1)


class TestFloorPlan:
    def test_room_validation(self):
        with pytest.raises(FloorPlanError):
            Room("bad", 2, 0, 1, 5, floor=0)

    def test_duplicate_room_rejected(self):
        plan = FloorPlan("p")
        plan.add_room(Room("a", 0, 0, 1, 1, floor=0))
        with pytest.raises(FloorPlanError):
            plan.add_room(Room("a", 1, 1, 2, 2, floor=0))

    def test_room_on_invalid_floor_rejected(self):
        plan = FloorPlan("p", floor_count=1)
        with pytest.raises(FloorPlanError):
            plan.add_room(Room("up", 0, 0, 1, 1, floor=1))

    def test_grid_points_inside_room(self):
        room = Room("a", 0, 0, 4, 6, floor=0)
        for point in room.grid(3, 4):
            assert room.contains(point)

    def test_floor_of(self):
        plan = FloorPlan("p", floor_count=2)
        assert plan.floor_of(Point(0, 0, 1.0)) == 0
        assert plan.floor_of(Point(0, 0, 4.0)) == 1

    def test_walls_crossed_counts_doors(self):
        plan = FloorPlan("p")
        plan.add_room(Room("a", 0, 0, 4, 4, floor=0))
        plan.add_wall((2, 0), (2, 4), doors=(Door(0.25, 0.5),))
        through_door = plan.walls_crossed(Point(0, 1.5, 1), Point(4, 1.5, 1))
        through_wall = plan.walls_crossed(Point(0, 3.5, 1), Point(4, 3.5, 1))
        assert through_door == 0
        assert through_wall == 1

    def test_slab_zone_height_validated(self):
        plan = FloorPlan("p", floor_count=1)  # no slabs at all
        with pytest.raises(FloorPlanError):
            plan.add_slab_zone(SlabZone(0, 0, 1, 1, FLOOR_HEIGHT, 1.0))

    def test_slab_penalties_use_weak_zone(self):
        plan = FloorPlan("p", floor_count=2)
        plan.add_slab_zone(SlabZone(0, 0, 2, 2, FLOOR_HEIGHT, attenuation=1.0))
        weak = plan.slab_penalties(Point(1, 1, 1), Point(1, 1, 5), default_penalty=6.0)
        strong = plan.slab_penalties(Point(5, 5, 1), Point(5, 5, 5), default_penalty=6.0)
        assert weak == 1.0
        assert strong == 6.0

    def test_validate_catches_stray_points(self):
        plan = FloorPlan("p")
        plan.add_room(Room("a", 0, 0, 2, 2, floor=0))
        plan.add_points("a", [Point(5, 5, 1)])
        with pytest.raises(FloorPlanError):
            plan.validate()

    def test_invalid_door_interval(self):
        with pytest.raises(FloorPlanError):
            Door(0.5, 0.4)


class TestPropagation:
    @pytest.fixture
    def simple_model(self):
        plan = FloorPlan("p", floor_count=2)
        plan.add_room(Room("a", 0, 0, 10, 10, floor=0))
        plan.add_wall((5, 0), (5, 10))
        return PropagationModel(plan, seed=3)

    def test_rssi_decreases_with_distance(self, simple_model):
        tx = Point(1, 1, 1)
        near = simple_model.mean_rssi(tx, Point(2, 1, 1))
        far = simple_model.mean_rssi(tx, Point(4.5, 1, 1))
        assert near > far

    def test_wall_penalty_applies(self, simple_model):
        tx = Point(4, 5, 1)
        same_side = simple_model.mean_rssi(tx, Point(3, 5, 1))
        other_side = simple_model.mean_rssi(tx, Point(6, 5, 1))
        # Crossing the wall at x=5 costs about the wall penalty beyond
        # the distance difference.
        assert same_side - other_side > 3.0

    def test_static_shadowing_is_deterministic(self, simple_model):
        tx, rx = Point(1, 1, 1), Point(3, 3, 1)
        assert simple_model.mean_rssi(tx, rx) == simple_model.mean_rssi(tx, rx)

    def test_sample_noise_varies(self, simple_model, rng):
        tx, rx = Point(1, 1, 1), Point(3, 3, 1)
        samples = {simple_model.sample_rssi(tx, rx, rng) for _ in range(10)}
        assert len(samples) > 1

    def test_body_blocking_lowers_rssi(self, simple_model, rng):
        tx, rx = Point(1, 1, 1), Point(3, 3, 1)
        open_ = np.mean([simple_model.sample_rssi(tx, rx, rng) for _ in range(200)])
        blocked = np.mean([
            simple_model.sample_rssi(tx, rx, rng, body_blocked=True) for _ in range(200)
        ])
        assert open_ > blocked

    def test_rssi_floor_clamps(self):
        plan = FloorPlan("p")
        plan.add_room(Room("a", 0, 0, 500, 500, floor=0))
        model = PropagationModel(plan, PropagationParams(rssi_floor=-20.0))
        assert model.mean_rssi(Point(0, 0, 1), Point(499, 499, 1)) == -20.0

    def test_average_rssi_rejects_zero_samples(self, simple_model, rng):
        with pytest.raises(ValueError):
            simple_model.average_rssi(Point(0, 0, 1), Point(1, 1, 1), rng, samples=0)


class TestTestbeds:
    def test_house_has_78_points(self):
        assert len(house_testbed().plan.points) == 78

    def test_apartment_has_54_points(self):
        assert len(apartment_testbed().plan.points) == 54

    def test_office_has_70_points(self):
        assert len(office_testbed().plan.points) == 70

    def test_house_point_references_match_paper(self):
        tb = house_testbed()
        assert tb.plan.point(21).room_name == "living_room"
        assert tb.plan.point(25).room_name == "hallway"
        assert tb.plan.point(37).room_name == "restroom"
        assert tb.plan.point(42).room_name == "stairwell"
        assert tb.plan.point(48).room_name == "stairwell"
        for number in HOUSE_LEAK_POINT_NUMBERS:
            assert tb.plan.point(number).room_name == "bedroom_a"

    def test_house_routes_exist(self):
        tb = house_testbed()
        # Core Figure 10 routes plus the per-room Route-1 variants.
        assert {"up", "down", "route1", "route2", "route3"} <= set(tb.routes)
        variants = [name for name in tb.routes if name.startswith("route1_")]
        assert len(variants) == 4  # 5 rooms total including "route1"

    def test_stairs_ascend(self):
        tb = house_testbed()
        zs = [tb.plan.point(n).point.z for n in range(42, 49)]
        assert zs == sorted(zs)
        assert zs[-1] - zs[0] == pytest.approx(FLOOR_HEIGHT)

    def test_route_positions_move_monotonically_in_time(self):
        route = house_testbed().routes["up"]
        start = route.position_at(0.0)
        end = route.position_at(route.duration)
        assert start.z < end.z

    def test_route_position_clamps(self):
        route = house_testbed().routes["up"]
        assert route.position_at(-5.0) == route.position_at(0.0)
        before = route.position_at(route.duration)
        after = route.position_at(route.duration + 10)
        assert (before.x, before.y, before.z) == (after.x, after.y, after.z)

    def test_two_deployments_each(self):
        for name in ("house", "apartment", "office"):
            tb = build_testbed(name)
            assert len(tb.speaker_locations) == 2
            assert len(tb.speaker_rooms) == 2

    def test_legitimate_points_include_los(self):
        tb = house_testbed()
        legit = tb.legitimate_points(0)
        assert 25 in legit and 26 in legit and 27 in legit
        assert all(1 <= n <= 27 for n in legit)

    def test_unknown_testbed_rejected(self):
        with pytest.raises(FloorPlanError):
            build_testbed("castle")

    def test_all_plans_validate(self):
        for name in ("house", "apartment", "office"):
            build_testbed(name).plan.validate()

    def test_walk_route_constant_speed(self):
        route = WalkRoute("r", [Point(0, 0, 0), Point(10, 0, 0)], duration=10.0)
        assert route.position_at(5.0).x == pytest.approx(5.0)


class TestScanner:
    def test_scan_reports_asynchronously(self, sim, rng):
        tb = apartment_testbed()
        model = PropagationModel(tb.plan, seed=1)
        beacon = BluetoothBeacon("spk", tb.speaker_point(0))
        scanner = BluetoothScanner("s", model, lambda: tb.device_point(1), rng)
        samples = []
        duration = scanner.scan(sim, beacon, samples.append)
        assert scanner.SCAN_MIN <= duration <= scanner.SCAN_MAX
        assert not samples
        sim.run_for(duration + 0.01)
        assert len(samples) == 1

    def test_interference_slows_scans(self, sim, rng):
        tb = apartment_testbed()
        model = PropagationModel(tb.plan, seed=1)
        beacon = BluetoothBeacon("spk", tb.speaker_point(0))
        quiet = BluetoothScanner("q", model, lambda: tb.device_point(1),
                                 np.random.default_rng(7))
        busy = BluetoothScanner("b", model, lambda: tb.device_point(1),
                                np.random.default_rng(7),
                                interference_provider=lambda: True)
        quiet_durations = [quiet.scan(sim, beacon, lambda s: None) for _ in range(50)]
        busy_durations = [busy.scan(sim, beacon, lambda s: None) for _ in range(50)]
        assert np.mean(busy_durations) > np.mean(quiet_durations)
