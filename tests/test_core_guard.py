"""Guard-level behaviour tests: window lifecycle, holding semantics,
failsafes, and the guard facade's wiring."""

from __future__ import annotations

import pytest

from repro.audio.speech import full_utterance_duration
from repro.core.config import VoiceGuardConfig
from repro.core.decision import Verdict
from repro.core.events import TrafficClass
from repro.experiments.scenarios import build_scenario
from repro.speakers.base import InteractionOutcome


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(
        "house", "echo", deployment=0, seed=101,
        owner_count=1, with_floor_tracking=False,
    )


def speak(scenario, rng_name, near=True):
    env = scenario.env
    owner = scenario.owners[0]
    point = 5 if near else 30
    owner.teleport(env.testbed.device_point(point).offset(dz=-1.0))
    env.sim.run_for(1.0)
    rng = env.rng.stream(rng_name)
    command = scenario.corpus.sample(rng)
    duration = full_utterance_duration(command, rng)
    utterance = owner.speak(command.text, duration)
    env.play_utterance(utterance, owner.device_position())
    env.sim.run_for(duration + 18.0)


class TestWindowLifecycle:
    def test_signature_spike_classified_unknown_and_released(self, scenario):
        # The boot connection's signature spike must never be held for
        # a decision: it classifies UNKNOWN and is released untouched.
        commands = scenario.guard.log.commands()
        first_command_at = commands[0].opened_at if commands else float("inf")
        boot_windows = [
            e for e in scenario.guard.log.events if e.opened_at < first_command_at
        ]
        assert boot_windows
        for event in boot_windows:
            assert event.classification in (TrafficClass.UNKNOWN, TrafficClass.RESPONSE)
            assert event.verdict is None

    def test_command_window_fast_classification(self, scenario):
        speak(scenario, "lifecycle1")
        event = scenario.guard.log.commands()[-1]
        assert event.classify_packet_count <= 5
        assert event.classified_at - event.opened_at < 0.2

    def test_heartbeats_never_open_windows(self, scenario):
        before = len(scenario.guard.log.events)
        scenario.env.sim.run_for(95.0)  # three heartbeats
        assert len(scenario.guard.log.events) == before

    def test_windows_carry_flow_protocol(self, scenario):
        for event in scenario.guard.log.events:
            assert event.protocol in ("tcp", "udp")

    def test_rssi_evidence_recorded(self, scenario):
        speak(scenario, "lifecycle2")
        event = scenario.guard.log.commands()[-1]
        assert event.verdict is Verdict.LEGITIMATE
        assert event.rssi_reports
        assert event.rssi_reports[0].sample.rssi > -15


class TestGuardFacade:
    def test_summary_counts_consistent(self, scenario):
        summary = scenario.guard.summary()
        assert summary["commands"] <= summary["windows"]
        assert summary["released"] + summary["blocked"] <= summary["commands"] + 1

    def test_floor_check_defaults_open(self, scenario):
        # No tracker installed in this scenario.
        assert scenario.guard._floor_ok("phone1")

    def test_protect_rejects_double_tap_silently(self):
        # Protecting two speakers shares one proxy host.
        scenario = build_scenario(
            "house", "echo", deployment=0, seed=103,
            owner_count=1, calibrate=False, with_floor_tracking=False,
        )
        assert scenario.speaker.ip in scenario.guard._protected

    def test_events_property_copies(self, scenario):
        events = scenario.guard.events
        events.clear()
        assert len(scenario.guard.log.events) > 0


class TestLateRegistration:
    """Devices enrolled after enable_floor_tracking must be trackable
    with an explicit starting floor (regression: they were silently
    assumed to be on the speaker's floor)."""

    @pytest.fixture(scope="class")
    def tracked_scenario(self):
        return build_scenario(
            "house", "echo", deployment=0, seed=103, owner_count=1,
        )

    def test_late_device_with_initial_floor(self, tracked_scenario):
        scenario = tracked_scenario
        env = scenario.env
        person = env.add_person("late-owner", scenario.owners[0].position)
        device = env.add_smartphone("late-phone", person)
        scenario.guard.register_device(device, threshold=-8.0, initial_floor=1)
        assert scenario.guard.floor_tracker.floor_of("late-phone") == 1

    def test_late_device_defaults_to_speaker_floor(self, tracked_scenario):
        scenario = tracked_scenario
        env = scenario.env
        person = env.add_person("late-owner2", scenario.owners[0].position)
        device = env.add_smartphone("late-phone2", person)
        scenario.guard.register_device(device, threshold=-8.0)
        tracker = scenario.guard.floor_tracker
        assert tracker.floor_of("late-phone2") == tracker.speaker_floor


class TestMaxHoldFailsafe:
    def test_failsafe_resolves_stuck_window(self):
        # A decision method that never answers: the max-hold failsafe
        # must still resolve the window (fail-closed by default).
        config = VoiceGuardConfig(decision_timeout=6.0, max_hold=8.0)
        scenario = build_scenario(
            "house", "echo", deployment=0, seed=105,
            owner_count=1, with_floor_tracking=False, config=config,
        )

        class BlackHoleMethod:
            def decide(self, context, callback):
                pass  # never calls back

        scenario.guard.decision.method = BlackHoleMethod()
        speak(scenario, "failsafe", near=True)
        scenario.env.sim.run_for(15.0)
        event = scenario.guard.log.commands()[-1]
        assert event.discarded_at is not None  # fail-closed
        record = list(scenario.speaker.interactions.values())[-1]
        record.settle()
        assert record.outcome is InteractionOutcome.BLOCKED


class TestGoogleWindows:
    def test_google_first_packet_is_decision_point(self):
        scenario = build_scenario(
            "apartment", "google", deployment=0, seed=107,
            owner_count=1, with_floor_tracking=False,
        )
        speak(scenario, "g1")
        event = scenario.guard.log.commands()[-1]
        assert event.classify_packet_count == 1

    def test_blocked_quic_flow_keeps_dropping(self):
        scenario = build_scenario(
            "apartment", "google", deployment=0, seed=109,
            owner_count=1, with_floor_tracking=False,
        )
        env = scenario.env
        # Force QUIC for determinism.
        scenario.speaker.traffic.QUIC_PROBABILITY = 1.0
        # Owner is away; a replayed recording plays in the speaker room.
        owner = scenario.owners[0]
        owner.teleport(env.testbed.device_point(45).offset(dz=-1.0))
        env.sim.run_for(1.0)
        from repro.attacks.replay import ReplayAttack
        attack = ReplayAttack(env, env.rng.stream("g2atk"), victim=owner.voiceprint)
        rng = env.rng.stream("g2")
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        attack.launch(command.text, duration, env.testbed.device_point(5))
        env.sim.run_for(duration + 18.0)
        record = list(scenario.speaker.interactions.values())[-1]
        record.settle()
        assert record.meta["transport"] == "quic"
        assert record.outcome is InteractionOutcome.BLOCKED
        assert scenario.google_cloud.stats.commands_executed == 0
        blocked_flow = [f for f in scenario.guard.proxy.flows
                        if f.records_discarded > 0]
        assert blocked_flow
