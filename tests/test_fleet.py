"""Fleet simulation tests: sharded synthesis determinism, floor-plan
jitter geometry, byte-identical fleet tables across worker counts /
chunk sizes / shard orders / dispatch modes, reducer associativity,
and the constant-memory guarantee of the streaming fold."""

from __future__ import annotations

import math

import pytest

from repro.errors import WorkloadError
from repro.experiments.fleet import (
    FleetAccumulator,
    FleetConfig,
    run_fleet,
    run_fleet_chunk,
    simulate_home,
)
from repro.experiments.synthesis import (
    DEFAULT_PLAN_SCALES,
    PopulationModel,
    fleet_world,
    scale_testbed,
    warm_worlds,
)
from repro.obs.metrics import merge_snapshots
# Aliased: a module-level name starting with "test" would be collected
# by pytest as a test item.
from repro.radio.testbeds import testbed_by_name as build_testbed


@pytest.fixture(scope="module")
def small_fleet():
    return FleetConfig(homes=240, shards=4, seed=11, chunk_size=32)


# ---------------------------------------------------------------------------
# Home synthesis
# ---------------------------------------------------------------------------

class TestSynthesis:
    def test_spec_depends_only_on_shard_and_offset(self):
        pop = PopulationModel()
        first = pop.home(3, 2, 17, index=100)
        second = pop.home(3, 2, 17, index=999)
        assert first.seed == second.seed
        assert first.testbed == second.testbed
        assert first.legit_commands == second.legit_commands
        assert first.threshold_margin == second.threshold_margin

    def test_specs_distinct_across_offsets_and_shards(self):
        pop = PopulationModel()
        seeds = {pop.home(3, s, o, 0).seed for s in range(4) for o in range(50)}
        assert len(seeds) == 200

    def test_population_spans_the_testbeds(self):
        pop = PopulationModel()
        specs = [pop.home(0, 0, offset, offset) for offset in range(300)]
        testbeds = {spec.testbed for spec in specs}
        assert testbeds == {"house", "apartment", "office"}
        attacked = sum(1 for spec in specs if spec.attacks > 0)
        assert 0.15 < attacked / len(specs) < 0.35

    def test_field_ranges(self):
        pop = PopulationModel()
        for offset in range(200):
            spec = pop.home(1, 0, offset, offset)
            assert spec.deployment in (0, 1)
            assert spec.plan_scale in DEFAULT_PLAN_SCALES
            assert 1 <= spec.owner_count <= 3
            assert spec.device_kind in ("smartphone", "smartwatch")
            assert spec.legit_commands >= 1
            assert spec.attacks >= 0
            assert 0.25 <= spec.away_fraction <= 0.80
            assert 0.2 <= spec.body_block_fraction <= 0.6
            assert spec.push_loss in (0.0, 0.02, 0.08)
            if spec.testbed == "office":
                assert spec.owner_count == 1
                assert spec.device_kind == "smartwatch"

    def test_attack_prevalence_knob(self):
        quiet = PopulationModel(attack_prevalence=0.0)
        assert all(quiet.home(0, 0, o, o).attacks == 0 for o in range(100))
        loud = PopulationModel(attack_prevalence=1.0)
        assert all(loud.home(0, 0, o, o).attacks >= 1 for o in range(100))

    def test_invalid_population_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):  # unknown testbed name
            PopulationModel(testbed_mix=(("atlantis", 1.0),))
        with pytest.raises(WorkloadError):
            PopulationModel(attack_prevalence=1.5)


class TestScaleTestbed:
    @pytest.mark.parametrize("name", ["house", "apartment", "office"])
    def test_geometry_scaled_in_plan_view_only(self, name):
        base = build_testbed(name)
        scaled = scale_testbed(name, 1.15)
        assert set(scaled.plan.points) == set(base.plan.points)
        for number, mp in base.plan.points.items():
            jittered = scaled.plan.points[number]
            assert jittered.room_name == mp.room_name
            assert jittered.point.x == pytest.approx(mp.point.x * 1.15)
            assert jittered.point.y == pytest.approx(mp.point.y * 1.15)
            assert jittered.point.z == mp.point.z
        assert len(scaled.speaker_locations) == len(base.speaker_locations)
        assert scaled.plan.floor_count == base.plan.floor_count

    def test_identity_scale_matches_base(self):
        base = build_testbed("house")
        identity = scale_testbed("house", 1.0)
        assert identity.name == base.name
        assert {n: mp.point for n, mp in identity.plan.points.items()} == \
               {n: mp.point for n, mp in base.plan.points.items()}

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(WorkloadError):
            scale_testbed("house", 0.0)

    def test_scaled_plan_validates(self):
        for factor in (0.85, 1.15):
            scaled = scale_testbed("house", factor)
            scaled.plan.validate()


class TestFleetWorld:
    def test_world_memoized_per_bucket(self):
        first = fleet_world("house", 0, 1.0)
        again = fleet_world("house", 0, 1.0)
        assert first is again
        other = fleet_world("house", 1, 1.0)
        assert other is not first

    def test_warm_worlds_covers_population(self):
        population = PopulationModel()
        count = warm_worlds(population)
        assert count == 3 * 2 * len(DEFAULT_PLAN_SCALES)


# ---------------------------------------------------------------------------
# Reduced-order home model
# ---------------------------------------------------------------------------

class TestSimulateHome:
    def _spec(self, offset=0):
        return PopulationModel().home(5, 0, offset, offset)

    def test_deterministic_per_spec(self):
        spec = self._spec()
        a = simulate_home(spec)
        b = simulate_home(spec)
        assert (a.false_blocks, a.attacks_blocked, a.timeouts, a.retries) == \
               (b.false_blocks, b.attacks_blocked, b.timeouts, b.retries)
        assert a.latencies_us.tolist() == b.latencies_us.tolist()

    def test_counts_are_consistent(self):
        for offset in range(30):
            summary = simulate_home(self._spec(offset))
            assert summary.decisions == summary.legit + summary.attacks
            assert 0 <= summary.false_blocks <= summary.legit
            assert 0 <= summary.attacks_blocked <= summary.attacks
            assert summary.timeouts + summary.latencies_us.size == \
                summary.decisions
            assert all(value > 0 for value in summary.latencies_us.tolist())


# ---------------------------------------------------------------------------
# Streaming reducers
# ---------------------------------------------------------------------------

class TestFleetAccumulator:
    def _payloads(self, config):
        return [run_fleet_chunk(config, shard, lo, hi)
                for shard, lo, hi in config.iter_chunks()]

    def test_merge_is_order_independent(self, small_fleet):
        payloads = self._payloads(small_fleet)
        forward = FleetAccumulator()
        for payload in payloads:
            forward.merge_payload(payload)
        backward = FleetAccumulator()
        for payload in reversed(payloads):
            backward.merge_payload(payload)
        assert forward.totals() == backward.totals()
        assert {name: s.to_dict() for name, s in forward.sketches.items()} == \
               {name: s.to_dict() for name, s in backward.sketches.items()}

    def test_chunk_split_does_not_change_state(self, small_fleet):
        # One 64-home chunk vs the same homes in four 16-home chunks.
        whole = FleetAccumulator()
        whole.merge_payload(run_fleet_chunk(small_fleet, 0, 0, 60))
        split = FleetAccumulator()
        for lo in range(0, 60, 15):
            split.merge_payload(run_fleet_chunk(small_fleet, 0, lo, lo + 15))
        assert whole.totals() == split.totals()
        assert {name: s.to_dict() for name, s in whole.sketches.items()} == \
               {name: s.to_dict() for name, s in split.sketches.items()}

    def test_merge_snapshots_fold_is_associative(self, small_fleet):
        snapshots = [p["metrics"] for p in self._payloads(small_fleet)]
        all_at_once = merge_snapshots(snapshots)
        incremental = snapshots[0]
        for snapshot in snapshots[1:]:
            incremental = merge_snapshots([incremental, snapshot])
        assert incremental == all_at_once

    def test_chunk_metrics_cover_every_home(self, small_fleet):
        payloads = self._payloads(small_fleet)
        merged = merge_snapshots([p["metrics"] for p in payloads])
        assert merged["counters"]["fleet.homes"] == small_fleet.homes
        acc = FleetAccumulator()
        for payload in payloads:
            acc.merge_payload(payload)
        totals = acc.totals()
        assert merged["counters"]["fleet.decisions"] == totals["decisions"]
        assert merged["counters"]["fleet.false_blocks"] == \
            totals["false_blocks"]

    def test_total_sketch_merges_testbeds(self, small_fleet):
        acc = FleetAccumulator()
        for payload in self._payloads(small_fleet):
            acc.merge_payload(payload)
        merged = acc.total_sketch()
        assert merged.count == sum(s.count for s in acc.sketches.values())
        assert not math.isnan(merged.quantile(0.99))


# ---------------------------------------------------------------------------
# End-to-end fleet determinism
# ---------------------------------------------------------------------------

class TestFleetDeterminism:
    @pytest.fixture(scope="class")
    def reference(self, request):
        config = FleetConfig(homes=240, shards=4, seed=11, chunk_size=32)
        return run_fleet(config, workers=1).render()

    def test_worker_count_invariant(self, small_fleet, reference):
        assert run_fleet(small_fleet, workers=3).render() == reference

    def test_chunk_size_invariant(self, reference):
        config = FleetConfig(homes=240, shards=4, seed=11, chunk_size=7)
        assert run_fleet(config, workers=2).render() == reference

    def test_shard_order_invariant(self, small_fleet, reference):
        shuffled = run_fleet(small_fleet, workers=2,
                             shard_order=[2, 0, 3, 1])
        assert shuffled.render() == reference

    def test_per_task_dispatch_invariant(self, small_fleet, reference):
        baseline = run_fleet(small_fleet, workers=2, dispatch="per-task")
        assert baseline.render() == reference

    def test_different_seed_differs(self, small_fleet, reference):
        other = FleetConfig(homes=240, shards=4, seed=12, chunk_size=32)
        assert run_fleet(other, workers=1).render() != reference

    def test_render_carries_no_wall_clock(self, small_fleet):
        first = run_fleet(small_fleet, workers=1)
        second = run_fleet(small_fleet, workers=1)
        assert first.elapsed != second.elapsed or first.elapsed > 0
        assert first.render() == second.render()


class TestFleetConfig:
    def test_shard_partition_covers_fleet(self):
        config = FleetConfig(homes=103, shards=8)
        sizes = [config.shard_size(s) for s in range(8)]
        assert sum(sizes) == 103
        assert max(sizes) - min(sizes) <= 1
        starts = [config.shard_start(s) for s in range(8)]
        assert starts[0] == 0
        for shard in range(7):
            assert starts[shard + 1] == starts[shard] + sizes[shard]

    def test_chunks_cover_every_home(self):
        config = FleetConfig(homes=103, shards=8, chunk_size=10)
        covered = sum(hi - lo for _, lo, hi in config.iter_chunks())
        assert covered == 103

    def test_invalid_config_rejected(self):
        with pytest.raises(WorkloadError):
            FleetConfig(homes=0)
        with pytest.raises(WorkloadError):
            FleetConfig(homes=10, shards=0)
        with pytest.raises(WorkloadError):
            FleetConfig(homes=10, chunk_size=0)
        with pytest.raises(WorkloadError):
            FleetConfig(homes=10, fidelity="cinematic")

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(WorkloadError):
            run_fleet(FleetConfig(homes=10), dispatch="telepathic")


class TestFleetCli:
    def test_fleet_command(self, capsys, tmp_path):
        from repro.__main__ import main

        out_path = tmp_path / "fleet.txt"
        code = main(["fleet", "--homes", "60", "--shards", "2",
                     "--chunk-size", "16", "--seed", "11",
                     "--output", str(out_path)])
        assert code == 0
        captured = capsys.readouterr()
        assert "Fleet simulation: 60 homes" in captured.out
        assert "homes/sec" in captured.err
        assert "Fleet simulation" in out_path.read_text(encoding="utf-8")

    def test_cache_command(self, capsys, tmp_path, monkeypatch):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["cache"]) == 0
        assert "0 entries" in capsys.readouterr().out
        assert main(["cache", "--prune"]) == 0
        assert "removed 0" in capsys.readouterr().out


class TestFullFidelity:
    @pytest.mark.slow
    def test_full_fidelity_small_fleet(self):
        config = FleetConfig(homes=3, shards=1, seed=7, chunk_size=2,
                             fidelity="full")
        result = run_fleet(config, workers=1)
        totals = result.accumulator.totals()
        assert totals["homes"] == 3
        assert totals["decisions"] > 0
        assert "full fidelity" in result.render()


# ---------------------------------------------------------------------------
# Constant-memory streaming (satellite: pool releases future references)
# ---------------------------------------------------------------------------

class TestConstantMemory:
    @pytest.mark.slow
    def test_streaming_fold_peak_is_flat_in_fleet_size(self):
        import tracemalloc

        warm_worlds(PopulationModel())  # cache growth must not count

        def peak_for(homes):
            config = FleetConfig(homes=homes, shards=8, seed=3)
            tracemalloc.start()
            run_fleet(config, workers=1)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        peak_for(200)  # warm allocator pools and module state
        small = peak_for(1000)
        large = peak_for(10000)
        # A 10x larger fleet must not need a meaningfully larger heap:
        # the fold holds one in-flight chunk plus constant accumulators.
        assert large < small * 1.5, (small, large)
