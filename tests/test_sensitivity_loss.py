"""Tests for the sensitivity sweep and WAN-loss robustness."""

from __future__ import annotations

import pytest

from repro.experiments.sensitivity import run_sensitivity
from repro.net.addresses import Endpoint, IPv4Address
from repro.net.link import Host, Network
from repro.net.tcp import TcpStack
from repro.sim.random import RngHub


class TestSensitivity:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_sensitivity(rssi_margins=(0.0, 6.0),
                               decision_timeouts=(1.0, 5.0),
                               seed=37, scale=15)

    def test_margin_costs_recall(self, sweep):
        margins = sweep.series("rssi_margin")
        assert margins[0].recall >= margins[-1].recall

    def test_margin_never_costs_precision(self, sweep):
        margins = sweep.series("rssi_margin")
        assert all(p.precision >= 0.9 for p in margins)

    def test_short_timeout_collapses_precision(self, sweep):
        timeouts = sweep.series("decision_timeout")
        assert timeouts[0].precision < 0.8
        assert timeouts[-1].precision >= 0.9

    def test_render_lists_all_points(self, sweep):
        text = sweep.render()
        assert text.count("rssi_margin") == 2
        assert text.count("decision_timeout") == 2


class TestWanLoss:
    def test_tcp_recovers_under_loss(self, sim):
        network = Network(sim, RngHub(9), wan_loss=0.08)
        client_host = Host("client", IPv4Address("192.168.1.10"))
        server_host = Host("server", IPv4Address("54.1.1.1"))
        network.attach(client_host)
        network.attach(server_host)
        client = TcpStack(client_host)
        server = TcpStack(server_host)
        received = []
        server.listen(443, lambda c: setattr(
            c, "on_record", lambda _, p: received.append(p.payload_len)))
        conn = client.connect(Endpoint(server_host.ip, 443))
        sim.run_for(5.0)
        assert conn.is_established
        for seq in range(40):
            conn.send_record(100 + seq, tls_record_seq=seq)
        sim.run_for(60.0)
        assert received == [100 + seq for seq in range(40)]
        assert network.packets_lost > 0

    def test_guard_pipeline_survives_lossy_wan(self):
        from repro.audio.speech import full_utterance_duration
        from repro.experiments.scenarios import build_scenario
        from repro.speakers.base import InteractionOutcome

        scenario = build_scenario(
            "house", "echo", deployment=0, seed=141,
            owner_count=1, with_floor_tracking=False,
        )
        scenario.network.wan_loss = 0.03
        env = scenario.env
        owner = scenario.owners[0]
        owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))
        executed = 0
        for index in range(5):
            rng = env.rng.stream(f"loss{index}")
            command = scenario.corpus.sample(rng)
            duration = full_utterance_duration(command, rng)
            env.play_utterance(owner.speak(command.text, duration),
                               owner.device_position())
            env.sim.run_for(duration + 25.0)
        for record in scenario.speaker.settle_all():
            if record.outcome is InteractionOutcome.EXECUTED:
                executed += 1
        assert executed >= 4  # loss may delay, must not systematically break
        assert scenario.network.packets_lost > 0
