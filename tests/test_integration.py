"""End-to-end integration tests: the full guard pipeline.

These drive complete scenarios — environment, network, speaker, cloud,
guard — and assert the paper's security properties hold end to end.
"""

from __future__ import annotations

import pytest

from repro.attacks.inaudible import InaudibleAttack, LaserAttack
from repro.attacks.remote import CompromisedPlaybackAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.synthesis import SynthesisAttack
from repro.audio.speech import full_utterance_duration
from repro.core.decision import Verdict
from repro.core.events import TrafficClass
from repro.experiments.scenarios import build_scenario
from repro.speakers.base import InteractionOutcome


@pytest.fixture(scope="module")
def echo_scenario():
    return build_scenario(
        "house", "echo", deployment=0, seed=41,
        owner_count=1, with_floor_tracking=False,
    )


def issue_legit(scenario, rng_name="itest"):
    env = scenario.env
    owner = scenario.owners[0]
    owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))
    rng = env.rng.stream(rng_name)
    command = scenario.corpus.sample(rng)
    duration = full_utterance_duration(command, rng)
    before = set(scenario.speaker.interactions)
    utterance = owner.speak(command.text, duration)
    env.play_utterance(utterance, owner.device_position())
    env.sim.run_for(duration + 18.0)
    new = [scenario.speaker.interactions[i]
           for i in scenario.speaker.interactions if i not in before]
    assert len(new) == 1
    new[0].settle()
    return new[0]


def issue_attack(scenario, attack, rng_name="iatk"):
    env = scenario.env
    owner = scenario.owners[0]
    owner.teleport(env.testbed.device_point(30).offset(dz=-1.0))  # kitchen
    env.sim.run_for(2.0)
    rng = env.rng.stream(rng_name)
    command = scenario.corpus.sample(rng)
    duration = full_utterance_duration(command, rng)
    before = set(scenario.speaker.interactions)
    attack.launch(command.text, duration, env.testbed.device_point(3))
    env.sim.run_for(duration + 18.0)
    new = [scenario.speaker.interactions[i]
           for i in scenario.speaker.interactions if i not in before]
    assert len(new) == 1
    new[0].settle()
    return new[0]


class TestEchoEndToEnd:
    def test_legit_command_executes(self, echo_scenario):
        record = issue_legit(echo_scenario)
        assert record.outcome is InteractionOutcome.EXECUTED

    def test_replay_attack_blocked_and_session_killed(self, echo_scenario):
        scenario = echo_scenario
        attack = ReplayAttack(
            scenario.env, scenario.env.rng.stream("replay"),
            victim=scenario.owners[0].voiceprint,
        )
        violations_before = len(scenario.avs_cloud.stats.tls_violations)
        record = issue_attack(scenario, attack)
        assert record.outcome is InteractionOutcome.BLOCKED
        assert len(scenario.avs_cloud.stats.tls_violations) == violations_before + 1

    def test_speaker_recovers_after_block(self, echo_scenario):
        record = issue_legit(echo_scenario, "after-block")
        assert record.outcome is InteractionOutcome.EXECUTED

    def test_synthesis_attack_blocked(self, echo_scenario):
        scenario = echo_scenario
        attack = SynthesisAttack(
            scenario.env, scenario.env.rng.stream("synth"),
            victim=scenario.owners[0].voiceprint,
        )
        record = issue_attack(scenario, attack)
        assert record.outcome is InteractionOutcome.BLOCKED

    def test_inaudible_attack_blocked(self, echo_scenario):
        scenario = echo_scenario
        attack = InaudibleAttack(
            scenario.env, scenario.env.rng.stream("ultra"),
            victim=scenario.owners[0].voiceprint,
        )
        record = issue_attack(scenario, attack)
        assert record.outcome is InteractionOutcome.BLOCKED

    def test_laser_attack_blocked(self, echo_scenario):
        scenario = echo_scenario
        attack = LaserAttack(
            scenario.env, scenario.env.rng.stream("laser"),
            victim=scenario.owners[0].voiceprint,
        )
        env = scenario.env
        scenario.owners[0].teleport(env.testbed.device_point(30).offset(dz=-1.0))
        env.sim.run_for(2.0)
        before = set(scenario.speaker.interactions)
        attack.launch_through_window("unlock the door please now", 3.0)
        env.sim.run_for(20.0)
        new = [scenario.speaker.interactions[i]
               for i in scenario.speaker.interactions if i not in before]
        assert new
        new[0].settle()
        assert new[0].outcome is InteractionOutcome.BLOCKED

    def test_remote_playback_blocked(self, echo_scenario):
        scenario = echo_scenario
        env = scenario.env
        tv = CompromisedPlaybackAttack(
            env, env.rng.stream("tv"),
            victim=scenario.owners[0].voiceprint,
            device_position=env.speaker_beacon.position.offset(dx=1.5),
        )
        scenario.owners[0].teleport(env.testbed.device_point(30).offset(dz=-1.0))
        env.sim.run_for(2.0)
        before = set(scenario.speaker.interactions)
        tv.launch_from_device("order ten pizzas right now", 3.5)
        env.sim.run_for(22.0)
        new = [scenario.speaker.interactions[i]
               for i in scenario.speaker.interactions if i not in before]
        assert new
        new[0].settle()
        assert new[0].outcome is InteractionOutcome.BLOCKED

    def test_guard_event_log_consistency(self, echo_scenario):
        log = echo_scenario.guard.log
        for event in log.commands():
            if event.verdict is Verdict.LEGITIMATE:
                assert event.released_at is not None
            elif event.verdict is Verdict.MALICIOUS:
                assert event.discarded_at is not None

    def test_response_windows_never_held_long(self, echo_scenario):
        responses = [e for e in echo_scenario.guard.log.events
                     if e.classification is TrafficClass.RESPONSE]
        assert responses, "expected response windows from executed commands"
        for event in responses:
            assert event.hold_duration is not None
            assert event.hold_duration < 0.5

    def test_avs_tracking_survives_silent_reconnects(self, echo_scenario):
        scenario = echo_scenario
        state = scenario.guard.recognition.speaker_state(scenario.speaker.ip)
        for _ in range(4):
            scenario.speaker._conn.abort("chaos")
            scenario.env.sim.run_for(8.0)
        assert scenario.speaker.connected
        assert state.avs_ip is not None
        record = issue_legit(scenario, "post-chaos")
        assert record.outcome is InteractionOutcome.EXECUTED


class TestGoogleEndToEnd:
    @pytest.fixture(scope="class")
    def google_scenario(self):
        return build_scenario(
            "apartment", "google", deployment=0, seed=43,
            owner_count=1, with_floor_tracking=False,
        )

    def test_legit_commands_execute_on_both_transports(self, google_scenario):
        scenario = google_scenario
        outcomes = []
        transports = set()
        for index in range(6):
            record = issue_legit(scenario, f"g{index}")
            outcomes.append(record.outcome)
            transports.add(record.meta.get("transport"))
        assert all(o is InteractionOutcome.EXECUTED for o in outcomes)
        assert transports == {"tcp", "quic"}

    def test_attacks_blocked_on_both_transports(self, google_scenario):
        scenario = google_scenario
        attack = ReplayAttack(
            scenario.env, scenario.env.rng.stream("greplay"),
            victim=scenario.owners[0].voiceprint,
        )
        env = scenario.env
        away = env.testbed.device_point(45).offset(dz=-1.0)
        spot = env.testbed.device_point(5)
        transports = set()
        for index in range(6):
            scenario.owners[0].teleport(away)
            env.sim.run_for(2.0)
            rng = env.rng.stream(f"gatk{index}")
            command = scenario.corpus.sample(rng)
            duration = full_utterance_duration(command, rng)
            before = set(scenario.speaker.interactions)
            attack.launch(command.text, duration, spot)
            env.sim.run_for(duration + 18.0)
            new = [scenario.speaker.interactions[i]
                   for i in scenario.speaker.interactions if i not in before]
            assert new
            new[0].settle()
            assert new[0].outcome is InteractionOutcome.BLOCKED
            transports.add(new[0].meta.get("transport"))
        assert transports == {"tcp", "quic"}


class TestMultiSpeakerProtection:
    def test_guard_covers_two_speakers_at_once(self):
        # One guard instance protecting an Echo and a Mini side by side.
        scenario = build_scenario(
            "house", "echo", deployment=0, seed=47,
            owner_count=1, with_floor_tracking=False,
        )
        env = scenario.env
        from repro.experiments.scenarios import add_second_speaker
        google = add_second_speaker(scenario, "google")
        owner = scenario.owners[0]
        owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))
        rng = env.rng.stream("multi")
        # Both speakers hear the same command (they share the room).
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        utterance = owner.speak(command.text, duration)
        env.play_utterance(utterance, owner.device_position())
        env.sim.run_for(duration + 20.0)
        echo_records = scenario.speaker.settle_all()
        google_records = google.settle_all()
        assert any(r.outcome is InteractionOutcome.EXECUTED for r in echo_records)
        assert any(r.outcome is InteractionOutcome.EXECUTED for r in google_records)


class TestFailureModes:
    def test_decision_timeout_fail_closed(self):
        from repro.core.config import VoiceGuardConfig
        config = VoiceGuardConfig(decision_timeout=0.05, fail_open=False, max_hold=5.0)
        scenario = build_scenario(
            "house", "echo", deployment=0, seed=53,
            owner_count=1, with_floor_tracking=False, config=config,
        )
        record = issue_legit(scenario, "timeout-test")
        # The query cannot complete in 50 ms, so even the owner's own
        # command is (safely) blocked.
        assert record.outcome is InteractionOutcome.BLOCKED
        timeouts = scenario.guard.log.with_verdict(Verdict.TIMEOUT)
        assert timeouts

    def test_decision_timeout_fail_open(self):
        from repro.core.config import VoiceGuardConfig
        config = VoiceGuardConfig(decision_timeout=0.05, fail_open=True, max_hold=5.0)
        scenario = build_scenario(
            "house", "echo", deployment=0, seed=59,
            owner_count=1, with_floor_tracking=False, config=config,
        )
        record = issue_legit(scenario, "timeout-open")
        assert record.outcome is InteractionOutcome.EXECUTED

    def test_unregistered_guard_blocks_everything(self):
        scenario = build_scenario(
            "house", "echo", deployment=0, seed=61,
            owner_count=1, with_floor_tracking=False, calibrate=False,
        )
        scenario.guard.registry.unregister(scenario.devices[0].name)
        record = issue_legit(scenario, "no-devices")
        assert record.outcome is InteractionOutcome.BLOCKED
