"""TCP state machine tests: handshake, data, loss recovery, keepalive."""

from __future__ import annotations

import pytest

from repro.errors import ConnectionClosedError
from repro.net.addresses import Endpoint, IPv4Address
from repro.net.link import Host, Network, TapHost
from repro.net.packet import Packet, Protocol, TlsRecordType
from repro.net.tcp import TcpStack, TcpState, TcpTuning
from repro.sim.random import RngHub


@pytest.fixture
def world(sim):
    network = Network(sim, RngHub(3))
    client_host = Host("client", IPv4Address("192.168.1.10"))
    server_host = Host("server", IPv4Address("54.1.1.1"))
    network.attach(client_host)
    network.attach(server_host)
    client = TcpStack(client_host)
    server = TcpStack(server_host)
    return sim, network, client, server


def connect(sim, client, server, tuning=None):
    accepted = []
    server.listen(443, accepted.append, tuning=tuning)
    conn = client.connect(Endpoint(server.host.ip, 443), tuning=tuning)
    sim.run_for(1.0)
    assert accepted, "server never accepted"
    return conn, accepted[0]


class TestHandshake:
    def test_three_way_establishes_both_sides(self, world):
        sim, network, client, server = world
        conn, srv = connect(sim, client, server)
        assert conn.state is TcpState.ESTABLISHED
        assert srv.state is TcpState.ESTABLISHED

    def test_established_callback_fires(self, world):
        sim, network, client, server = world
        fired = []
        server.listen(443, lambda c: fired.append("server"))
        conn = client.connect(Endpoint(server.host.ip, 443))
        conn.on_established = lambda c: fired.append("client")
        sim.run_for(1.0)
        assert set(fired) == {"server", "client"}

    def test_syn_to_closed_port_ignored(self, world):
        sim, network, client, server = world
        conn = client.connect(Endpoint(server.host.ip, 9999))
        sim.run_for(2.0)
        assert conn.state is TcpState.SYN_SENT  # retrying, never answered

    def test_non_transparent_listener_rejects_other_ip(self, world):
        sim, network, client, server = world
        accepted = []
        server.listen(443, accepted.append, transparent=False)
        # A SYN addressed to an IP the server host does not own lands on
        # its stack (e.g. via a misrouted tap); it must not be accepted.
        from repro.net.packet import TcpFlags
        syn = Packet(
            src=Endpoint(client.host.ip, 50000),
            dst=Endpoint(IPv4Address("54.9.9.9"), 443),
            protocol=Protocol.TCP,
            flags=TcpFlags.SYN,
        )
        server.host.receive(syn)
        sim.run_for(1.0)
        assert not accepted

    def test_duplicate_listen_rejected(self, world):
        sim, network, client, server = world
        server.listen(443, lambda c: None)
        with pytest.raises(Exception):
            server.listen(443, lambda c: None)


class TestDataTransfer:
    def test_records_delivered_in_order(self, world):
        sim, network, client, server = world
        conn, srv = connect(sim, client, server)
        received = []
        srv.on_record = lambda c, p: received.append(p.payload_len)
        for size in (100, 200, 300):
            conn.send_record(size, tls_record_seq=0)
        sim.run_for(2.0)
        assert received == [100, 200, 300]
        assert srv.bytes_received == 600

    def test_send_on_closed_connection_raises(self, world):
        sim, network, client, server = world
        conn, srv = connect(sim, client, server)
        conn.close()
        sim.run_for(2.0)
        with pytest.raises(ConnectionClosedError):
            conn.send_record(10)

    def test_bidirectional_records(self, world):
        sim, network, client, server = world
        conn, srv = connect(sim, client, server)
        client_got = []
        conn.on_record = lambda c, p: client_got.append(p.payload_len)
        srv.send_record(55, tls_record_seq=0)
        sim.run_for(2.0)
        assert client_got == [55]

    def test_meta_travels_with_record(self, world):
        sim, network, client, server = world
        conn, srv = connect(sim, client, server)
        metas = []
        srv.on_record = lambda c, p: metas.append(p.meta.get("marker"))
        conn.send_record(10, meta={"marker": "x"})
        sim.run_for(1.0)
        assert metas == ["x"]


class TestTeardown:
    def test_orderly_close_notifies_both(self, world):
        sim, network, client, server = world
        conn, srv = connect(sim, client, server)
        reasons = {}
        conn.on_close = lambda c, r: reasons.__setitem__("client", r)
        srv.on_close = lambda c, r: reasons.__setitem__("server", r)
        conn.close()
        sim.run_for(2.0)
        assert reasons == {"client": "fin", "server": "fin"}
        assert conn.state is TcpState.CLOSED

    def test_abort_sends_rst(self, world):
        sim, network, client, server = world
        conn, srv = connect(sim, client, server)
        reasons = {}
        srv.on_close = lambda c, r: reasons.__setitem__("server", r)
        conn.abort()
        sim.run_for(2.0)
        assert reasons["server"] == "rst"

    def test_stack_forgets_closed_connections(self, world):
        sim, network, client, server = world
        conn, srv = connect(sim, client, server)
        assert client.connection_count == 1
        conn.close()
        sim.run_for(2.0)
        assert client.connection_count == 0
        assert server.connection_count == 0


class _DropTap(TapHost):
    """Drops the first N client data packets, bridges everything else."""

    def __init__(self, name, ip, drop_count):
        super().__init__(name, ip)
        self.remaining = drop_count

    def intercept(self, packet):
        is_client_data = packet.payload_len > 0 and packet.src.port != 443
        if is_client_data and self.remaining > 0:
            self.remaining -= 1
            return
        self.bridge(packet)


class TestLossRecovery:
    def test_retransmission_recovers_dropped_data(self, world):
        sim, network, client, server = world
        tap = _DropTap("tap", IPv4Address("192.168.1.50"), drop_count=3)
        network.attach(tap)
        network.install_tap(client.host.ip, tap)
        conn, srv = connect(sim, client, server)
        received = []
        srv.on_record = lambda c, p: received.append(p.payload_len)
        for size in (10, 20, 30, 40, 50):
            conn.send_record(size, tls_record_seq=0)
        sim.run_for(8.0)
        assert received == [10, 20, 30, 40, 50]
        assert conn.retransmissions >= 3

    def test_receiver_suppresses_duplicates(self, world):
        sim, network, client, server = world
        conn, srv = connect(sim, client, server)
        received = []
        srv.on_record = lambda c, p: received.append(p.payload_len)
        conn.send_record(10, tls_record_seq=0)
        sim.run_for(0.5)
        # Simulate a spurious retransmission of the same segment.
        duplicate = Packet(
            src=conn.local, dst=conn.remote, protocol=Protocol.TCP,
            payload_len=10, flags=conn._make_packet(flags=0).flags,
            seq=0, ack=0, tls_type=TlsRecordType.APPLICATION_DATA,
        )
        from repro.net.packet import TcpFlags
        duplicate.flags = TcpFlags.PSH | TcpFlags.ACK
        client.host.send(duplicate)
        sim.run_for(1.0)
        assert received == [10]

    def test_total_loss_aborts_after_retries(self, world):
        sim, network, client, server = world
        tap = _DropTap("tap", IPv4Address("192.168.1.50"), drop_count=10**6)
        network.attach(tap)
        network.install_tap(client.host.ip, tap)
        tuning = TcpTuning(rto=0.5, max_retries=3)
        conn, srv = connect(sim, client, server, tuning=tuning)
        reasons = []
        conn.on_close = lambda c, r: reasons.append(r)
        conn.send_record(10, tls_record_seq=0)
        sim.run_for(20.0)
        assert reasons == ["timeout"]


class TestKeepalive:
    def test_idle_connection_probes_and_survives(self, world):
        sim, network, client, server = world
        tuning = TcpTuning(keepalive_idle=5.0, keepalive_interval=1.0)
        conn, srv = connect(sim, client, server, tuning=tuning)
        sim.run_for(30.0)
        assert conn.state is TcpState.ESTABLISHED
        assert srv.state is TcpState.ESTABLISHED

    def test_unanswered_probes_abort(self, world):
        sim, network, client, server = world
        tuning = TcpTuning(keepalive_idle=5.0, keepalive_interval=1.0, keepalive_probes=2)
        conn, srv = connect(sim, client, server, tuning=tuning)
        # A black-hole tap eats everything from the client from now on.
        tap = _DropTap("tap", IPv4Address("192.168.1.50"), drop_count=0)
        tap.intercept = lambda packet: None  # type: ignore[assignment]
        network.attach(tap)
        network.install_tap(client.host.ip, tap)
        reasons = []
        conn.on_close = lambda c, r: reasons.append(r)
        sim.run_for(60.0)
        assert reasons == ["timeout"]
