"""Tests for corpora, speech pacing, voiceprints, and verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.audio.commands import (
    ALEXA_CORPUS_SIZE,
    GOOGLE_CORPUS_SIZE,
    CommandCorpus,
    VoiceCommand,
    alexa_corpus,
    corpus_statistics,
    google_corpus,
)
from repro.audio.speech import (
    SPEECH_WORDS_PER_SECOND,
    full_utterance_duration,
    response_segment_duration,
    speaking_duration,
)
from repro.audio.verification import VoiceMatchVerifier
from repro.audio.voiceprint import (
    UtteranceSource,
    VoicePrint,
    live_utterance,
    replay_of,
    synthesized_as,
)
from repro.errors import WorkloadError


class TestCorpora:
    def test_alexa_size(self):
        assert len(alexa_corpus()) == ALEXA_CORPUS_SIZE == 320

    def test_google_size(self):
        assert len(google_corpus()) == GOOGLE_CORPUS_SIZE == 443

    def test_alexa_mean_words_matches_paper(self):
        # Paper: 5.95 words on average.
        assert abs(alexa_corpus().mean_word_count() - 5.95) < 0.1

    def test_google_mean_words_matches_paper(self):
        # Paper: 7.39 words on average.
        assert abs(google_corpus().mean_word_count() - 7.39) < 0.1

    def test_alexa_at_least_four_words(self):
        # Paper: more than 86.8 % have at least 4 words.
        assert abs(alexa_corpus().fraction_with_at_least(4) - 0.868) < 0.01

    def test_google_at_least_five_words(self):
        # Paper: more than 93.9 % have at least 5 words.
        assert abs(google_corpus().fraction_with_at_least(5) - 0.939) < 0.01

    def test_corpus_is_deterministic(self):
        first = [c.text for c in alexa_corpus()]
        second = [c.text for c in alexa_corpus()]
        assert first == second

    def test_word_counts_are_exact(self):
        for command in alexa_corpus():
            assert command.word_count == len(command.text.split())

    def test_sampling_uniform(self, rng):
        corpus = alexa_corpus()
        sampled = {corpus.sample(rng).text for _ in range(400)}
        assert len(sampled) > 100  # broad coverage

    def test_empty_corpus_rejected(self):
        with pytest.raises(WorkloadError):
            CommandCorpus("alexa", [])

    def test_statistics_dictionary(self):
        stats = corpus_statistics(alexa_corpus())
        assert stats["size"] == 320.0
        assert 0.0 < stats["frac_at_least_4"] <= 1.0


class TestSpeech:
    def test_pace_constant_matches_paper(self):
        assert SPEECH_WORDS_PER_SECOND == 2.0

    def test_duration_without_rng_is_deterministic(self):
        command = VoiceCommand("turn on the lights", "alexa")
        assert speaking_duration(command) == pytest.approx(2.0)

    def test_duration_with_jitter_bounded(self, rng):
        command = VoiceCommand("turn on the lights please now", "alexa")
        base = command.word_count / 2.0
        for _ in range(100):
            duration = speaking_duration(command, rng)
            assert 0.5 * base <= duration <= 1.7 * base

    def test_full_utterance_adds_wake_word(self):
        command = VoiceCommand("turn on the lights", "alexa")
        assert full_utterance_duration(command) > speaking_duration(command)

    def test_response_segment_duration(self):
        assert response_segment_duration(8) == pytest.approx(4.0)

    def test_response_segment_rejects_zero_words(self):
        with pytest.raises(ValueError):
            response_segment_duration(0)


class TestVoiceprints:
    def test_voiceprints_are_unit_norm(self, rng):
        print_ = VoicePrint.create("alice", rng)
        assert np.linalg.norm(print_.vector) == pytest.approx(1.0)

    def test_live_observations_differ_but_stay_close(self, rng):
        print_ = VoicePrint.create("alice", rng)
        a, b = print_.observe(rng), print_.observe(rng)
        assert not np.allclose(a, b)
        assert float(np.dot(a, print_.vector)) > 0.85

    def test_replay_keeps_identity(self, rng):
        print_ = VoicePrint.create("alice", rng)
        original = live_utterance("open the door", 2.0, print_, rng)
        replay = replay_of(original, rng)
        assert replay.source is UtteranceSource.REPLAY
        assert replay.is_attack
        assert float(np.dot(replay.embedding, print_.vector)) > 0.8

    def test_replay_without_embedding_rejected(self, rng):
        from repro.audio.voiceprint import VoiceUtterance
        bare = VoiceUtterance("x", 1, 1.0, None, UtteranceSource.LIVE_OWNER, "alice")
        with pytest.raises(ValueError):
            replay_of(bare, rng)

    def test_synthesis_is_near_victim(self, rng):
        print_ = VoicePrint.create("alice", rng)
        fake = synthesized_as(print_, "unlock everything", 2.5, rng)
        assert fake.source is UtteranceSource.SYNTHESIS
        assert float(np.dot(fake.embedding, print_.vector)) > 0.75

    @pytest.mark.parametrize("source,is_attack", [
        (UtteranceSource.LIVE_OWNER, False),
        (UtteranceSource.LIVE_GUEST, False),
        (UtteranceSource.REPLAY, True),
        (UtteranceSource.SYNTHESIS, True),
        (UtteranceSource.INAUDIBLE, True),
        (UtteranceSource.LASER, True),
        (UtteranceSource.REMOTE_PLAYBACK, True),
    ])
    def test_attack_taxonomy(self, source, is_attack):
        assert source.is_attack is is_attack


class TestVoiceMatch:
    @pytest.fixture
    def enrolled(self, rng):
        owner = VoicePrint.create("owner", rng)
        verifier = VoiceMatchVerifier()
        verifier.enroll(owner, rng)
        return owner, verifier

    def test_owner_live_voice_accepted(self, enrolled, rng):
        owner, verifier = enrolled
        accepted = sum(
            verifier.verify(live_utterance("hi", 1.0, owner, rng)).accepted
            for _ in range(50)
        )
        assert accepted >= 48

    def test_different_human_rejected(self, enrolled, rng):
        owner, verifier = enrolled
        guest = VoicePrint.create("guest", rng)
        accepted = sum(
            verifier.verify(live_utterance("hi", 1.0, guest, rng)).accepted
            for _ in range(50)
        )
        assert accepted == 0

    def test_replay_bypasses_voice_match(self, enrolled, rng):
        # The paper's premise: replayed owner audio passes (Section II-B1).
        owner, verifier = enrolled
        accepted = sum(
            verifier.verify(replay_of(live_utterance("hi", 1.0, owner, rng), rng)).accepted
            for _ in range(50)
        )
        assert accepted >= 45

    def test_synthesis_bypasses_voice_match(self, enrolled, rng):
        owner, verifier = enrolled
        accepted = sum(
            verifier.verify(synthesized_as(owner, "order it", 2.0, rng)).accepted
            for _ in range(50)
        )
        assert accepted >= 40

    def test_unenrolled_verifier_raises(self, rng):
        verifier = VoiceMatchVerifier()
        owner = VoicePrint.create("owner", rng)
        with pytest.raises(RuntimeError):
            verifier.score(live_utterance("hi", 1.0, owner, rng))

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            VoiceMatchVerifier(accept_threshold=1.5)

    def test_equal_error_threshold_sits_between_score_groups(self, enrolled, rng):
        owner, verifier = enrolled
        guest = VoicePrint.create("guest", rng)
        genuine = [verifier.score(live_utterance("a", 1.0, owner, rng)) for _ in range(30)]
        impostor = [verifier.score(live_utterance("a", 1.0, guest, rng)) for _ in range(30)]
        threshold = verifier.equal_error_threshold(genuine, impostor)
        assert max(impostor) - 0.2 < threshold < min(genuine) + 0.2

    def test_enroll_from_samples(self, rng):
        owner = VoicePrint.create("owner", rng)
        samples = [owner.observe(rng) for _ in range(4)]
        verifier = VoiceMatchVerifier()
        verifier.enroll_from_samples("owner", samples)
        assert verifier.enrolled
