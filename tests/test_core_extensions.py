"""Tests for the Section-VII extensions: adaptive signature learning
and the extensible decision-method framework."""

from __future__ import annotations

import pytest

from repro.audio.speech import full_utterance_duration
from repro.core.decision import DecisionContext, DecisionResult, Verdict
from repro.core.methods import (
    AllOfMethod,
    AllowListMethod,
    AnyOfMethod,
    QuietHoursMethod,
    QuietWindow,
)
from repro.core.signature_learning import SignatureLearner
from repro.errors import ConfigError
from repro.experiments.scenarios import build_scenario
from repro.speakers.base import InteractionOutcome


def _ctx(now: float = 0.0) -> DecisionContext:
    return DecisionContext(window_id=1, speaker_ip="x", requested_at=now)


class _StubMethod:
    """Immediate-verdict method for combinator tests."""

    def __init__(self, verdict: Verdict):
        self.verdict = verdict
        self.calls = 0

    def decide(self, context, callback):
        self.calls += 1
        callback(DecisionResult(verdict=self.verdict))


class TestCombinators:
    def _run(self, method):
        results = []
        method.decide(_ctx(), results.append)
        assert len(results) == 1
        return results[0]

    @pytest.mark.parametrize("verdicts,expected", [
        ((Verdict.LEGITIMATE, Verdict.LEGITIMATE), Verdict.LEGITIMATE),
        ((Verdict.LEGITIMATE, Verdict.MALICIOUS), Verdict.MALICIOUS),
        ((Verdict.MALICIOUS, Verdict.MALICIOUS), Verdict.MALICIOUS),
        ((Verdict.LEGITIMATE, Verdict.TIMEOUT), Verdict.TIMEOUT),
        ((Verdict.MALICIOUS, Verdict.TIMEOUT), Verdict.MALICIOUS),
    ])
    def test_all_of_truth_table(self, verdicts, expected):
        method = AllOfMethod([_StubMethod(v) for v in verdicts])
        assert self._run(method).verdict is expected

    @pytest.mark.parametrize("verdicts,expected", [
        ((Verdict.LEGITIMATE, Verdict.MALICIOUS), Verdict.LEGITIMATE),
        ((Verdict.MALICIOUS, Verdict.MALICIOUS), Verdict.MALICIOUS),
        ((Verdict.MALICIOUS, Verdict.TIMEOUT), Verdict.TIMEOUT),
        ((Verdict.TIMEOUT, Verdict.LEGITIMATE), Verdict.LEGITIMATE),
    ])
    def test_any_of_truth_table(self, verdicts, expected):
        method = AnyOfMethod([_StubMethod(v) for v in verdicts])
        assert self._run(method).verdict is expected

    def test_empty_combinators_rejected(self):
        with pytest.raises(ConfigError):
            AllOfMethod([])
        with pytest.raises(ConfigError):
            AnyOfMethod([])

    def test_allow_list_flag(self):
        assert self._run(AllowListMethod(True)).verdict is Verdict.LEGITIMATE
        assert self._run(AllowListMethod(False)).verdict is Verdict.MALICIOUS


class TestQuietHours:
    def test_blocks_inside_window(self, sim):
        method = QuietHoursMethod(sim, [QuietWindow(0.0, 3600.0)])
        results = []
        method.decide(_ctx(), results.append)
        assert results[0].verdict is Verdict.MALICIOUS
        assert method.blocked_by_schedule == 1

    def test_allows_outside_window(self, sim):
        sim.run_until(7200.0)
        method = QuietHoursMethod(sim, [QuietWindow(0.0, 3600.0)])
        results = []
        method.decide(_ctx(), results.append)
        assert results[0].verdict is Verdict.LEGITIMATE

    def test_wraps_daily(self, sim):
        sim.run_until(86400.0 + 100.0)  # next day, inside the window
        method = QuietHoursMethod(sim, [QuietWindow(0.0, 3600.0)])
        results = []
        method.decide(_ctx(), results.append)
        assert results[0].verdict is Verdict.MALICIOUS

    def test_invalid_window_rejected(self, sim):
        with pytest.raises(ConfigError):
            QuietWindow(10.0, 5.0)
        with pytest.raises(ConfigError):
            QuietHoursMethod(sim, [])

    def test_composes_with_rssi_semantics(self, sim):
        # AllOf(quiet-hours, always-allow): inside quiet hours blocks.
        method = AllOfMethod([
            QuietHoursMethod(sim, [QuietWindow(0.0, 3600.0)]),
            AllowListMethod(True),
        ])
        results = []
        method.decide(_ctx(), results.append)
        assert results[0].verdict is Verdict.MALICIOUS


class TestSignatureLearnerUnit:
    def _feed(self, learner, flow_id, lengths, now=0.0):
        from repro.net.addresses import endpoint
        from repro.net.packet import Packet, Protocol
        from repro.net.proxy import ProxiedFlow

        flow = ProxiedFlow(
            flow_id=flow_id, protocol=Protocol.TCP,
            client=endpoint("192.168.1.200", 50000),
            server=endpoint("54.1.1.1", 443),
        )
        for length in lengths:
            packet = Packet(src=flow.client, dst=flow.server,
                            protocol=Protocol.TCP, payload_len=length)
            learner.observe_confirmed_flow(flow, packet, now)

    def test_adopts_after_confirmations(self):
        learner = SignatureLearner(prefix_length=4, confirmations=3)
        pattern = [10, 20, 30, 40]
        for flow_id in range(2):
            self._feed(learner, flow_id, pattern)
        assert learner.active is None
        self._feed(learner, 2, pattern)
        assert learner.active is not None
        assert learner.active.lengths == (10, 20, 30, 40)

    def test_disagreeing_flows_do_not_adopt(self):
        learner = SignatureLearner(prefix_length=4, confirmations=3)
        for flow_id, last in enumerate((40, 41, 42)):
            self._feed(learner, flow_id, [10, 20, 30, last])
        assert learner.active is None

    def test_relearns_on_change(self):
        learner = SignatureLearner(prefix_length=4, confirmations=2)
        for flow_id in range(2):
            self._feed(learner, flow_id, [1, 2, 3, 4])
        assert learner.active.lengths == (1, 2, 3, 4)
        for flow_id in range(10, 12):
            self._feed(learner, flow_id, [5, 6, 7, 8])
        assert learner.active.lengths == (5, 6, 7, 8)
        assert learner.signature_changes == 1

    def test_extra_packets_ignored_per_flow(self):
        learner = SignatureLearner(prefix_length=4, confirmations=1)
        self._feed(learner, 1, [1, 2, 3, 4, 999, 999])
        assert learner.active.lengths == (1, 2, 3, 4)

    def test_matching_helpers(self):
        learner = SignatureLearner(prefix_length=4, confirmations=1)
        self._feed(learner, 1, [1, 2, 3, 4])
        assert learner.matches([1, 2, 3, 4])
        assert not learner.matches([1, 2, 3, 5])
        assert learner.matches_so_far([1, 2])
        assert not learner.matches_so_far([2])

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            SignatureLearner(prefix_length=2)
        with pytest.raises(ConfigError):
            SignatureLearner(confirmations=0)


class TestAdaptiveSignatureEndToEnd:
    def test_guard_survives_firmware_signature_change(self):
        """The Section-VII scenario: a firmware update changes the
        connect signature; the learner re-learns it from DNS-confirmed
        reconnects and non-DNS reconnects become trackable again."""
        scenario = build_scenario(
            "house", "echo", deployment=0, seed=71,
            owner_count=1, with_floor_tracking=False,
        )
        guard, speaker, env = scenario.guard, scenario.speaker, scenario.env
        learner = SignatureLearner(prefix_length=16, confirmations=2)
        guard.recognition.signature_learner = learner
        owner = scenario.owners[0]
        owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))

        # Firmware update: new connect sequence.
        new_signature = (99, 45, 700, 140, 80, 140, 190, 80,
                         140, 80, 140, 80, 140, 70, 45, 45)
        speaker.connect_signature = new_signature

        # Churn the connection until the learner has re-learned: the
        # Echo re-resolves DNS on about half of its reconnects.
        for _ in range(12):
            if speaker._conn is not None and speaker._conn.is_established:
                speaker._conn.abort("churn")
            env.sim.run_for(8.0)
            if learner.active is not None:
                break
        assert learner.active is not None
        assert learner.active.lengths == new_signature

        # Force a silent (non-DNS) reconnect and verify re-identification
        # through the *learned* signature.
        state = guard.recognition.speaker_state(speaker.ip)
        speaker.DNS_REQUERY_PROBABILITY = 0.0
        speaker._conn.abort("silent")
        env.sim.run_for(8.0)
        assert state.avs_ip is not None

        # And a command still gets guarded end to end.
        rng = env.rng.stream("adaptive")
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        env.play_utterance(owner.speak(command.text, duration), owner.device_position())
        env.sim.run_for(duration + 18.0)
        record = list(speaker.interactions.values())[-1]
        record.settle()
        assert record.outcome is InteractionOutcome.EXECUTED
        checked = [e for e in guard.log.commands() if e.verdict is not None]
        assert checked
