"""A second round of property-based tests: propagation physics,
decision combinators, bootstrap statistics, and corpus phrases."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.analysis.stats import bootstrap_interval
from repro.audio.commands import _phrase_with_exact_words
from repro.core.decision import DecisionContext, DecisionResult, Verdict
from repro.core.floor import TraceClassifier, TraceFeatures
from repro.core.methods import AllOfMethod, AnyOfMethod
from repro.radio.floorplan import FloorPlan, Room
from repro.radio.geometry import Point
from repro.radio.propagation import PropagationModel


class _Stub:
    def __init__(self, verdict):
        self.verdict = verdict

    def decide(self, context, callback):
        callback(DecisionResult(verdict=self.verdict))


def _run(method):
    out = []
    method.decide(DecisionContext(1, "x", 0.0), out.append)
    return out[0].verdict


VERDICTS = st.sampled_from([Verdict.LEGITIMATE, Verdict.MALICIOUS, Verdict.TIMEOUT])


class TestCombinatorProperties:
    @given(st.lists(VERDICTS, min_size=1, max_size=6))
    def test_all_of_matches_boolean_semantics(self, verdicts):
        got = _run(AllOfMethod([_Stub(v) for v in verdicts]))
        if Verdict.MALICIOUS in verdicts:
            assert got is Verdict.MALICIOUS
        elif Verdict.TIMEOUT in verdicts:
            assert got is Verdict.TIMEOUT
        else:
            assert got is Verdict.LEGITIMATE

    @given(st.lists(VERDICTS, min_size=1, max_size=6))
    def test_any_of_matches_boolean_semantics(self, verdicts):
        got = _run(AnyOfMethod([_Stub(v) for v in verdicts]))
        if Verdict.LEGITIMATE in verdicts:
            assert got is Verdict.LEGITIMATE
        elif Verdict.TIMEOUT in verdicts:
            assert got is Verdict.TIMEOUT
        else:
            assert got is Verdict.MALICIOUS

    @given(st.lists(VERDICTS, min_size=1, max_size=6))
    def test_exactly_one_callback(self, verdicts):
        calls = []
        AllOfMethod([_Stub(v) for v in verdicts]).decide(
            DecisionContext(1, "x", 0.0), calls.append,
        )
        assert len(calls) == 1


def _open_model() -> PropagationModel:
    plan = FloorPlan("open")
    plan.add_room(Room("hall", 0, 0, 40, 40, floor=0))
    return PropagationModel(plan, seed=5)


class TestPropagationProperties:
    @given(st.floats(min_value=1.0, max_value=15.0),
           st.floats(min_value=1.05, max_value=2.0))
    def test_mean_path_loss_monotone_without_shadowing(self, d, factor):
        """Path loss (excluding the spatial shadowing term) grows with
        distance along any ray in open space."""
        plan = FloorPlan("open")
        plan.add_room(Room("hall", 0, 0, 80, 80, floor=0))
        from repro.radio.propagation import PropagationParams
        model = PropagationModel(
            plan, PropagationParams(shadowing_sigma=0.0), seed=5,
        )
        tx = Point(1.0, 1.0, 1.0)
        near = model.mean_rssi(tx, Point(1.0 + d, 1.0, 1.0))
        far = model.mean_rssi(tx, Point(1.0 + d * factor, 1.0, 1.0))
        assert near >= far

    @given(st.floats(min_value=0.5, max_value=30.0),
           st.floats(min_value=0.0, max_value=6.28))
    def test_rssi_never_exceeds_reference(self, d, angle):
        model = _open_model()
        tx = Point(20.0, 20.0, 1.0)
        rx = Point(20.0 + d * np.cos(angle) / 2, 20.0 + d * np.sin(angle) / 2, 1.0)
        assume(0 <= rx.x <= 40 and 0 <= rx.y <= 40)
        assert model.mean_rssi(tx, rx) <= model.params.reference_rssi + \
            3 * model.params.shadowing_sigma


class TestClassifierProperties:
    @given(st.floats(min_value=-0.99, max_value=0.99),
           st.floats(min_value=-40, max_value=0))
    def test_gate_always_wins_inside_band(self, slope, intercept):
        classifier = TraceClassifier()
        classifier.fit({
            "up": [TraceFeatures(-1.7, -10)],
            "down": [TraceFeatures(2.0, -20)],
            "route1": [TraceFeatures(0.0, -3)],
        })
        assert classifier.classify(TraceFeatures(slope, intercept)) == "route1"

    @given(st.floats(min_value=1.01, max_value=5.0),
           st.floats(min_value=-40, max_value=0))
    def test_steep_positive_slopes_never_route1(self, slope, intercept):
        classifier = TraceClassifier()
        classifier.fit({
            "up": [TraceFeatures(-1.7, -10)],
            "down": [TraceFeatures(2.0, -20)],
            "route1": [TraceFeatures(0.0, -3)],
        })
        assert classifier.classify(TraceFeatures(slope, intercept)) != "route1"


class TestBootstrapProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=150))
    def test_interval_brackets_mean(self, flags):
        interval = bootstrap_interval([float(f) for f in flags], seed=7)
        mean = sum(flags) / len(flags)
        assert interval.low - 1e-9 <= mean <= interval.high + 1e-9
        assert 0.0 <= interval.low <= interval.high <= 1.0


class TestCorpusPhraseProperties:
    @given(st.integers(min_value=3, max_value=14), st.integers(min_value=0, max_value=10_000))
    def test_phrase_has_exact_word_count(self, words, seed):
        rng = np.random.default_rng(seed)
        phrase = _phrase_with_exact_words(words, rng)
        assert len(phrase.split()) == words
        assert phrase == phrase.lower()
