"""The ``repro loadtest`` experiment: grid shape, stress modes, and
worker-count determinism of the rendered table."""

from __future__ import annotations

import pytest

from repro.experiments.loadtest import (
    LoadtestResult,
    run_loadtest,
    run_loadtest_cell,
    saturation_knee,
)
from repro.errors import WorkloadError


@pytest.fixture(scope="module")
def smoke_result() -> LoadtestResult:
    return run_loadtest(seed=3, smoke=True, workers=1)


class TestLoadtestGrid:
    def test_smoke_grid_shape(self, smoke_result):
        labels = [(c.speakers, c.rate, c.mode) for c in smoke_result.cells]
        assert labels == [
            (1, "high", "coordinated"),
            (4, "high", "coordinated"),
            (4, "high", "strict"),
            (4, "high", "degraded"),
        ]

    def test_multi_speaker_multiplies_commands(self, smoke_result):
        one, four = smoke_result.cells[0], smoke_result.cells[1]
        assert four.commands > one.commands
        assert four.throughput >= 2.0 * one.throughput
        # Batching did real work: most of the extra speakers' windows
        # rode another window's query.
        assert four.batched > 0

    def test_strict_mode_queues(self, smoke_result):
        strict = smoke_result.cells[2]
        assert strict.mode == "strict"
        assert strict.queued > 0
        assert strict.batched == 0

    def test_degraded_mode_sheds_load(self, smoke_result):
        degraded = smoke_result.cells[3]
        assert degraded.mode == "degraded"
        assert degraded.overflows > 0
        # Default policy is fail-closed: shed windows are blocked.
        assert degraded.blocked > 0

    def test_every_cell_resolves_every_command(self, smoke_result):
        for cell in smoke_result.cells:
            assert cell.resolved == cell.commands

    def test_knee_prefers_fastest_pre_knee_cell(self, smoke_result):
        knee = saturation_knee(smoke_result.cells, 4)
        assert knee is not None
        assert knee.mode == "coordinated"
        assert knee.timeouts == 0 and knee.failsafes == 0

    def test_render_mentions_knee_and_modes(self, smoke_result):
        rendered = smoke_result.render()
        assert "knee:" in rendered
        assert "coordinated" in rendered and "degraded" in rendered

    def test_merged_metrics_fold(self, smoke_result):
        merged = smoke_result.merged_metrics()
        assert merged["counters"]["decision.queries"] > 0
        assert "proxy.hold_duration" in merged["histograms"]


class TestLoadtestDeterminism:
    def test_table_identical_across_worker_counts(self, smoke_result):
        parallel = run_loadtest(seed=3, smoke=True, workers=2)
        assert parallel.render() == smoke_result.render()


class TestCellValidation:
    def test_unknown_rate_rejected(self):
        with pytest.raises(WorkloadError):
            run_loadtest_cell(1, "warp")

    def test_unknown_mode_rejected(self):
        with pytest.raises(WorkloadError):
            run_loadtest_cell(1, "high", mode="chaotic")

    def test_zero_speakers_rejected(self):
        with pytest.raises(WorkloadError):
            run_loadtest_cell(0, "high")
