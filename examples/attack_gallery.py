#!/usr/bin/env python3
"""The full attack gallery against three defenses.

Replays, voice cloning, ultrasonic injection, laser injection, and a
compromised smart TV — against no defense, the speakers' built-in
voice-match, and VoiceGuard.  Reproduces the paper's core argument:
audio-domain defenses cannot tell the owner's replayed/cloned voice
from the owner, while proximity can.

Run:  python examples/attack_gallery.py
"""

from __future__ import annotations

from repro.experiments.ablation import run_defense_matrix


def main() -> None:
    print("running replay / synthesis / inaudible / laser / remote-playback")
    print("attacks (plus live guest + live owner) against three defenses...\n")
    result = run_defense_matrix(seed=17, trials_per_attack=6, legit_trials=6)
    print(result.render())
    print(
        "\nreading the table: voice-match only stops the live guest (his own\n"
        "voice does not match) but passes every owner-voiced attack;\n"
        "VoiceGuard blocks all of them because no registered device is near\n"
        "the speaker — yet never blocks the owner herself."
    )


if __name__ == "__main__":
    main()
