#!/usr/bin/env python3
"""Section VII extensions: composable decisions + adaptive signatures.

1. The Decision Module is an open framework: this demo composes the
   built-in RSSI method with a quiet-hours schedule policy (block
   everything while the home should be empty) using the AllOf
   combinator.
2. The Traffic Processing Module can adaptively re-learn the AVS
   connection signature after a firmware update changes it.

Run:  python examples/extensible_guard.py
"""

from __future__ import annotations

from repro import build_scenario
from repro.audio.speech import full_utterance_duration
from repro.core.decision import DecisionModule
from repro.core.methods import AllOfMethod, QuietHoursMethod, QuietWindow
from repro.core.signature_learning import SignatureLearner


def main() -> None:
    scenario = build_scenario(
        "house", "echo", deployment=0, seed=55,
        owner_count=1, with_floor_tracking=False,
    )
    env, guard, speaker = scenario.env, scenario.guard, scenario.speaker
    owner = scenario.owners[0]
    owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))

    # --- 1. compose RSSI proximity with a quiet-hours schedule ---------
    # Simulated time starts at "midnight"; declare 0:00-2:00 as
    # quiet hours, so the first command (with the owner RIGHT THERE)
    # is still blocked by policy, and a later one passes.
    quiet = QuietHoursMethod(env.sim, [QuietWindow(0.0, 2 * 3600.0)])
    guard.decision = DecisionModule(AllOfMethod([quiet, guard.rssi_method]))
    guard.handler.decision = guard.decision

    def say(label: str) -> None:
        rng = env.rng.stream(label)
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        env.play_utterance(owner.speak(command.text, duration), owner.device_position())
        env.sim.run_for(duration + 18.0)
        event = guard.log.commands()[-1]
        hours = env.sim.now / 3600.0
        print(f"  t={hours:5.2f}h {label}: verdict {event.verdict.value}")

    print("quiet hours 00:00-02:00; owner next to the speaker both times:")
    say("during-quiet-hours")
    env.sim.run_until(2.5 * 3600.0)
    say("after-quiet-hours")
    print(f"  schedule blocks so far: {quiet.blocked_by_schedule}")

    # --- 2. adaptive signature learning ---------------------------------
    learner = SignatureLearner(prefix_length=16, confirmations=2)
    guard.recognition.signature_learner = learner
    new_signature = (99, 45, 700, 140, 80, 140, 190, 80,
                     140, 80, 140, 80, 140, 70, 45, 45)
    speaker.connect_signature = new_signature
    print("\nfirmware update changed the AVS connect signature; churning")
    print("the connection until the guard re-learns it from DNS-confirmed")
    print("reconnects...")
    churns = 0
    while learner.active is None and churns < 15:
        if speaker._conn is not None and speaker._conn.is_established:
            speaker._conn.abort("churn")
        env.sim.run_for(8.0)
        churns += 1
    print(f"  re-learned after {churns} reconnects: "
          f"{learner.active.lengths[:6]}... "
          f"(confirmed on {learner.active.confirmations} connections)")

    # Prove a silent (no-DNS) reconnect is still tracked.
    speaker.DNS_REQUERY_PROBABILITY = 0.0
    speaker._conn.abort("silent")
    env.sim.run_for(8.0)
    state = guard.recognition.speaker_state(speaker.ip)
    print(f"  silent reconnect re-identified via: {state.avs_ip_source} "
          f"(AVS at {state.avs_ip})")
    say("post-firmware-update")


if __name__ == "__main__":
    main()
