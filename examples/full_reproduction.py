#!/usr/bin/env python3
"""Regenerate every paper table and figure in one run.

Writes the consolidated report to ``reproduction_report.txt``.  Use
``--scale 1.0`` for the paper's full command counts (slower), the
default 0.3 for a quick pass.

Run:  python examples/full_reproduction.py [--scale 0.3] [--seed 3]
"""

from __future__ import annotations

import argparse
import pathlib

from repro.experiments.report import generate_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3,
                        help="workload scale for the 7-day tables (1.0 = paper)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--output", default="reproduction_report.txt")
    args = parser.parse_args()

    report = generate_report(scale=args.scale, seed=args.seed)
    text = report.render()
    output = pathlib.Path(args.output)
    output.write_text(text, encoding="utf-8")
    print()
    print(text)
    print(f"(report written to {output})")


if __name__ == "__main__":
    main()
