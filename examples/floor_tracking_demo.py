#!/usr/bin/env python3
"""Floor-level tracking: defeating the above-speaker RSSI leak.

In the two-floor house, the room directly above the speaker reads
*above* the RSSI threshold (paper Figure 8a, locations #55-62).  An
attacker downstairs while the owner is in that room would be accepted
by proximity alone.  The demo walks the owner upstairs — the stair
motion sensor fires, her phone records an 8-second RSSI trace, the
trace classifier reads "up" — and the next attack is vetoed by floor
level despite a healthy RSSI.

Run:  python examples/floor_tracking_demo.py
"""

from __future__ import annotations

from repro import build_scenario
from repro.attacks.replay import ReplayAttack
from repro.audio.speech import full_utterance_duration


def main() -> None:
    scenario = build_scenario("house", "echo", deployment=0, seed=27, owner_count=1)
    env, guard, speaker = scenario.env, scenario.guard, scenario.speaker
    owner = scenario.owners[0]
    tracker = guard.floor_tracker
    phone = scenario.devices[0]
    print(f"floor estimate for {phone.name}: {tracker.floor_of(phone.name)} "
          f"(speaker floor: {tracker.speaker_floor})")

    # --- owner walks upstairs into the leak zone ------------------------
    owner.follow(env.testbed.routes["up"])
    env.sim.run_for(12.0)  # walk + motion-triggered trace
    leak_spot = env.testbed.device_point(59).offset(dz=-1.0)  # above speaker
    owner.teleport(leak_spot)
    env.sim.run_for(2.0)
    trace = tracker.trace_events[-1]
    print(f"stair trace: slope={trace.features.slope:.2f} "
          f"intercept={trace.features.intercept:.1f} -> {trace.label!r}; "
          f"floor estimate now {tracker.floor_of(phone.name)}")
    print(f"phone RSSI from the leak zone: {phone.instant_rssi(env.speaker_beacon):.1f} "
          f"(threshold {scenario.calibrations[phone.name].threshold:.1f} — above it!)")

    # --- attack downstairs: RSSI would accept, the floor veto blocks ----
    attacker = ReplayAttack(env, env.rng.stream("attacker"), victim=owner.voiceprint)
    command = scenario.corpus.sample(env.rng.stream("demo"))
    duration = full_utterance_duration(command, env.rng.stream("demo"))
    attacker.launch(command.text, duration, env.testbed.device_point(3))
    env.sim.run_for(duration + 18.0)
    event = guard.log.commands()[-1]
    print(f"\nattack verdict: {event.verdict.value}")
    reports = [(r.device_name, round(r.sample.rssi, 1)) for r in event.rssi_reports]
    print(f"RSSI reports during the attack: {reports} — above threshold,")
    print("but the floor tracker vetoed the proof (owner is upstairs).")

    # --- owner comes back down; her own command works again -------------
    owner.follow(env.testbed.routes["down"])
    env.sim.run_for(14.0)
    owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))
    env.sim.run_for(2.0)
    print(f"\nowner walks downstairs; floor estimate: {tracker.floor_of(phone.name)}")
    command = scenario.corpus.sample(env.rng.stream("demo2"))
    duration = full_utterance_duration(command, env.rng.stream("demo2"))
    env.play_utterance(owner.speak(command.text, duration), owner.device_position())
    env.sim.run_for(duration + 18.0)
    event = guard.log.commands()[-1]
    print(f"owner's command verdict: {event.verdict.value}")

    for record in speaker.settle_all():
        marker = "ATTACK" if record.is_attack else "owner "
        print(f"  {marker} {record.text[:40]!r:42s} -> {record.outcome.value}")


if __name__ == "__main__":
    main()
