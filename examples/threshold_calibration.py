#!/usr/bin/env python3
"""The RSSI-threshold calibration app (paper Section IV-C).

The user switches the app on, walks along the walls of the speaker's
room, and the app samples the speaker's Bluetooth RSSI every 0.5 s;
the minimum becomes the threshold.  The demo then sweeps the whole
numbered measurement grid to show where the threshold separates
legitimate command spots from the rest of the home.

Run:  python examples/threshold_calibration.py
"""

from __future__ import annotations

from repro import testbed_by_name
from repro.core.threshold import ThresholdCalibrator
from repro.experiments.rssi_maps import run_rssi_map
from repro.home.environment import HomeEnvironment


def main() -> None:
    testbed = testbed_by_name("house")
    env = HomeEnvironment(testbed, deployment=0, seed=33)
    room = testbed.speaker_room(0)
    user = env.add_person("alice", room.center(height=0.0))
    phone = env.add_smartphone("pixel-5", user)

    print(f"calibrating in {room.name!r}: walking the walls, sampling every 0.5 s")
    result = ThresholdCalibrator(env).calibrate(phone, room)
    samples = ", ".join(f"{s:.1f}" for s in result.samples[:12])
    print(f"  first samples: {samples}, ...")
    print(f"  {result.sample_count} samples; threshold = min = {result.threshold:.1f}")

    print("\nsweeping all 78 numbered locations (16 measurements each):")
    rssi_map = run_rssi_map("house", deployment=0, seed=33)
    print(rssi_map.render())
    print(
        f"\nleak check: locations {rssi_map.leak_points_above_threshold()} sit above the\n"
        "threshold from the floor above — exactly the paper's #55, #56, #59-62,\n"
        "which is why the guard also tracks floor level."
    )


if __name__ == "__main__":
    main()
