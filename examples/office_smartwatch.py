#!/usr/bin/env python3
"""Office testbed with a smartwatch and a Google Home Mini.

Mirrors the paper's third testbed: the legitimate user wears a
Galaxy-Watch-like wearable, and the speaker is a Google Home Mini whose
per-command sessions hop between TCP and QUIC — both of which the
guard's traffic handler can hold and block.

Run:  python examples/office_smartwatch.py
"""

from __future__ import annotations

from collections import Counter

from repro import build_scenario
from repro.attacks.synthesis import SynthesisAttack
from repro.audio.speech import full_utterance_duration


def main() -> None:
    scenario = build_scenario(
        "office", "google", deployment=0, seed=18,
        owner_count=1, device_kind="smartwatch",
    )
    env, guard, speaker = scenario.env, scenario.guard, scenario.speaker
    worker = scenario.owners[0]
    watch = scenario.devices[0]
    print(f"wearable {watch.name!r} ({watch.kind}) calibrated at "
          f"{scenario.calibrations[watch.name].threshold:.1f}")

    rng = env.rng.stream("demo")
    desk = env.testbed.device_point(13).offset(dz=-1.0)     # open office
    meeting = env.testbed.device_point(48).offset(dz=-1.0)  # behind walls

    # --- legit commands from the desk (transport mix emerges) ----------
    for _ in range(6):
        worker.teleport(desk)
        env.sim.run_for(1.0)
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        env.play_utterance(worker.speak(command.text, duration), worker.device_position())
        env.sim.run_for(duration + 18.0)

    # --- attacks while the worker is in the meeting room ----------------
    attacker = SynthesisAttack(env, env.rng.stream("attacker"), victim=worker.voiceprint)
    for _ in range(6):
        worker.teleport(meeting)
        env.sim.run_for(2.0)
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        attacker.launch(command.text, duration, env.testbed.device_point(13))
        env.sim.run_for(duration + 18.0)

    records = speaker.settle_all()
    outcome_by_transport = Counter()
    for record in records:
        key = (record.meta.get("transport"), record.is_attack, record.outcome.value)
        outcome_by_transport[key] += 1
        marker = "ATTACK" if record.is_attack else "worker"
        print(f"  {marker} [{record.meta.get('transport'):4s}] "
              f"{record.text[:38]!r:40s} -> {record.outcome.value}")

    print("\nper-transport outcomes (transport, is_attack, outcome):")
    for key, count in sorted(outcome_by_transport.items(), key=str):
        print(f"  {key}: {count}")
    print(f"\nQUIC sessions seen: {speaker.quic_sessions} of {speaker.sessions_opened}")


if __name__ == "__main__":
    main()
