#!/usr/bin/env python3
"""Multi-user scenario: two residents, two registered phones.

The paper's OR-rule (Section IV-C): a command is legitimate if *at
least one* registered device proves proximity.  This demo shows a
command accepted thanks to the second resident while the first is out,
an attack blocked when both are away, and an attacker's device being
refused registration.

Run:  python examples/multi_user_home.py
"""

from __future__ import annotations

from repro import build_scenario
from repro.attacks.replay import ReplayAttack
from repro.audio.speech import full_utterance_duration
from repro.errors import RegistrationError


def main() -> None:
    scenario = build_scenario(
        "apartment", "echo", deployment=0, seed=12, owner_count=2,
    )
    env, guard, speaker = scenario.env, scenario.guard, scenario.speaker
    alice, bob = scenario.owners
    print("registered devices:",
          [(e.name, round(e.threshold, 1)) for e in guard.registry.entries()])

    rng = env.rng.stream("demo")
    bedroom = env.testbed.device_point(45).offset(dz=-1.0)  # far bedroom
    living = env.testbed.device_point(8).offset(dz=-1.0)    # speaker's room

    # --- 1. Alice is out; Bob is near: the OR-rule accepts -------------
    alice.teleport(bedroom)
    bob.teleport(living)
    env.sim.run_for(2.0)
    command = scenario.corpus.sample(rng)
    duration = full_utterance_duration(command, rng)
    env.play_utterance(bob.speak(command.text, duration), bob.device_position())
    env.sim.run_for(duration + 18.0)
    event = guard.log.commands()[-1]
    print(f"\nBob speaks with Alice away -> verdict {event.verdict.value}, "
          f"satisfied by the nearest device "
          f"(reports: {[(r.device_name, round(r.sample.rssi, 1)) for r in event.rssi_reports]})")

    # --- 2. Both away: a replayed command is blocked -------------------
    bob.teleport(bedroom.offset(dx=0.5))
    env.sim.run_for(2.0)
    attacker = ReplayAttack(env, env.rng.stream("attacker"), victim=alice.voiceprint)
    attacker.launch(command.text, duration, env.testbed.device_point(8))
    env.sim.run_for(duration + 18.0)
    event = guard.log.commands()[-1]
    print(f"replay with both owners away -> verdict {event.verdict.value}, "
          f"reports {[(r.device_name, round(r.sample.rssi, 1)) for r in event.rssi_reports]}")

    # --- 3. The attacker cannot register his own phone -----------------
    mallory = env.add_person("mallory", bedroom, is_owner=False)
    mallory_phone = env.add_smartphone("mallory-phone", mallory)
    try:
        guard.register_device(mallory_phone, threshold=-40.0, approved_by_owner=False)
    except RegistrationError as error:
        print(f"\nattacker registration refused: {error}")

    for record in speaker.settle_all():
        marker = "ATTACK" if record.is_attack else "owner "
        print(f"  {marker} {record.text[:40]!r:42s} -> {record.outcome.value}")


if __name__ == "__main__":
    main()
