#!/usr/bin/env python3
"""Quickstart: protect an Echo Dot with VoiceGuard.

Builds the paper's two-floor-house testbed with one resident, lets the
resident issue a voice command next to the speaker, then has an
attacker replay a recording of the resident's voice while she is in
the kitchen — and shows the guard releasing the first and blocking the
second.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_scenario
from repro.attacks.replay import ReplayAttack
from repro.audio.speech import full_utterance_duration


def main() -> None:
    # One call wires the whole world: floor plan, propagation, network,
    # Echo Dot + AVS cloud, threshold calibration, guard installation.
    scenario = build_scenario("house", "echo", deployment=0, seed=7)
    env, guard, speaker = scenario.env, scenario.guard, scenario.speaker
    owner = scenario.owners[0]
    phone = scenario.devices[0]

    threshold = scenario.calibrations[phone.name].threshold
    print(f"guard ready: phone {phone.name!r} calibrated, threshold {threshold:.1f}")
    print(f"AVS server tracked via {guard.recognition.speaker_state(speaker.ip).avs_ip_source}")

    # --- 1. A legitimate command from inside the living room -----------
    owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))
    command = scenario.corpus.sample(env.rng.stream("demo"))
    duration = full_utterance_duration(command, env.rng.stream("demo"))
    print(f"\nowner says: {command.text!r}")
    env.play_utterance(owner.speak(command.text, duration), owner.device_position())
    env.sim.run_for(duration + 20.0)

    record = list(speaker.interactions.values())[-1]
    event = guard.log.commands()[-1]
    print(f"  guard verdict: {event.verdict.value} "
          f"(decided in {event.decision_latency:.2f}s while the owner was speaking)")
    print(f"  outcome: {'EXECUTED, response played' if record.responded_at else record.outcome.value}")

    # --- 2. A replay attack while the owner is in the kitchen ----------
    owner.teleport(env.testbed.device_point(30).offset(dz=-1.0))
    env.sim.run_for(2.0)
    attacker = ReplayAttack(env, env.rng.stream("attacker"), victim=owner.voiceprint)
    print(f"\nattacker replays a recording of: {command.text!r}")
    attacker.launch(command.text, duration, env.testbed.device_point(3))
    env.sim.run_for(duration + 20.0)

    for rec in speaker.settle_all():
        marker = "ATTACK " if rec.is_attack else "owner  "
        print(f"  {marker} #{rec.interaction_id} {rec.text[:40]!r:42s} -> {rec.outcome.value}")

    event = guard.log.commands()[-1]
    print(f"\nthe attack was held for {event.hold_duration:.2f}s, then its packets were "
          f"dropped;")
    print(f"the cloud saw a TLS record gap and closed the session "
          f"({len(scenario.avs_cloud.stats.tls_violations)} violation(s)); "
          f"the Echo reconnected on its own ({speaker.reconnect_count} reconnect(s)).")
    print(f"\nguard summary: {guard.summary()}")


if __name__ == "__main__":
    main()
