"""The paper's three evaluation testbeds.

Floor plans are reconstructed from the paper's descriptions and figures:

* **Testbed 1** — a two-floor house, 78 numbered measurement points.
  The numbering follows the paper's references: #1-24 living room (the
  first speaker deployment room), #25-27 hallway locations within line
  of sight of the speaker through the doorway, #28-36 kitchen, #37-41
  restroom (Route 2 ends at #37), #42-48 the staircase (Up traces run
  #42 -> #48), #49-62 the upstairs bedroom directly above the speaker —
  whose closest points #55, #56, #59-62 *leak* enough signal to sit
  above the RSSI threshold, the false-negative hazard that motivates
  floor-level tracking — #63-72 the second bedroom, #73-78 the upstairs
  bathroom.
* **Testbed 2** — a two-bedroom apartment, 54 points, single floor.
* **Testbed 3** — a large office, 70 points, single floor (smartwatch
  experiments).

Each testbed also carries two speaker deployment locations (the paper
evaluates both) and, for the house, the five named walking routes of
Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import FloorPlanError
from repro.radio.floorplan import (
    DEVICE_CARRY_HEIGHT,
    FLOOR_HEIGHT,
    Door,
    FloorPlan,
    Room,
    SlabZone,
)
from repro.radio.geometry import Point

SPEAKER_HEIGHT = 0.8  # speakers sit on furniture

# The house's leak zone: measurement numbers the paper singles out as
# reading above the threshold from the floor above (Section V-B2).
HOUSE_LEAK_POINT_NUMBERS = (55, 56, 59, 60, 61, 62)


@dataclass
class WalkRoute:
    """A named walking route (Figure 10 vocabulary)."""

    name: str
    waypoints: List[Point]  # person positions (z = floor height walked on)
    duration: float  # seconds to traverse end to end

    def position_at(self, t: float) -> Point:
        """Person position ``t`` seconds into the walk (clamped)."""
        if not self.waypoints:
            raise FloorPlanError(f"route {self.name!r} has no waypoints")
        if len(self.waypoints) == 1 or self.duration <= 0:
            return self.waypoints[0]
        clamped = min(max(t, 0.0), self.duration)
        # Constant speed along the polyline.
        lengths = []
        total = 0.0
        for a, b in zip(self.waypoints, self.waypoints[1:]):
            step = ((a.x - b.x) ** 2 + (a.y - b.y) ** 2 + (a.z - b.z) ** 2) ** 0.5
            lengths.append(step)
            total += step
        if total == 0:
            return self.waypoints[0]
        target = total * clamped / self.duration
        walked = 0.0
        for (a, b), step in zip(zip(self.waypoints, self.waypoints[1:]), lengths):
            if walked + step >= target or (a, b) == (self.waypoints[-2], self.waypoints[-1]):
                frac = 0.0 if step == 0 else (target - walked) / step
                return a.lerp(b, min(max(frac, 0.0), 1.0))
            walked += step
        return self.waypoints[-1]


@dataclass
class Testbed:
    """A floor plan plus experiment metadata."""

    name: str
    plan: FloorPlan
    speaker_locations: List[Point]
    # Room (by name) containing each speaker deployment location.
    speaker_rooms: List[str]
    routes: Dict[str, WalkRoute] = field(default_factory=dict)
    # Per-deployment points considered legitimate command spots beyond
    # the speaker's room: locations with line of sight to the speaker
    # through a doorway (the paper's hallway points #25-27 / the office
    # red box).  Keyed by deployment index.
    line_of_sight_points: Dict[int, List[int]] = field(default_factory=dict)
    stair_region: Optional[tuple] = None  # (x0, y0, x1, y1) motion-sensor zone

    def legitimate_points(self, deployment: int) -> List[int]:
        """Measurement points where issuing a command is legitimate:
        the speaker's room plus the deployment's line-of-sight spots."""
        room_name = self.speaker_rooms[deployment]
        numbers = [mp.number for mp in self.plan.points_in_room(room_name)]
        numbers.extend(self.line_of_sight_points.get(deployment, []))
        return sorted(set(numbers))

    def speaker_point(self, deployment: int) -> Point:
        """Speaker position for deployment index 0 or 1."""
        return self.speaker_locations[deployment]

    def speaker_room(self, deployment: int) -> Room:
        """The room containing a deployment's speaker."""
        return self.plan.rooms[self.speaker_rooms[deployment]]

    def device_point(self, number: int) -> Point:
        """A measurement point at device carry height."""
        return self.plan.point(number).point


def _grid_points(room: Room, nx: int, ny: int) -> List[Point]:
    return room.grid(nx, ny, height=DEVICE_CARRY_HEIGHT)


# ---------------------------------------------------------------------------
# Testbed 1: two-floor house
# ---------------------------------------------------------------------------

def house_testbed() -> Testbed:
    """The two-floor house (78 measurement points)."""
    plan = FloorPlan("two-floor house", floor_count=2)

    living = plan.add_room(Room("living_room", 0.0, 0.0, 6.0, 8.0, floor=0))
    plan.add_room(
        Room("stairwell", 6.0, 3.0, 8.0, 6.0, floor=0, height=2 * FLOOR_HEIGHT)
    )
    plan.add_room(Room("hallway", 6.0, 6.0, 8.0, 8.0, floor=0))
    kitchen = plan.add_room(Room("kitchen", 8.0, 4.0, 12.0, 8.0, floor=0))
    plan.add_room(Room("restroom", 8.0, 0.0, 12.0, 4.0, floor=0))
    plan.add_room(Room("bedroom_a", 0.0, 0.0, 6.0, 8.0, floor=1))
    plan.add_room(Room("landing", 6.0, 0.0, 8.0, 8.0, floor=1))
    bedroom_b = plan.add_room(Room("bedroom_b", 8.0, 3.0, 12.0, 8.0, floor=1))
    bath_up = plan.add_room(Room("bath_up", 8.0, 0.0, 12.0, 3.0, floor=1))

    # Ground-floor walls.  Wall A separates the living room from the
    # stairwell/hallway strip; its two doors create the line-of-sight
    # corridor (paper locations #25-27) and the stair access.
    plan.add_wall((6.0, 0.0), (6.0, 8.0), floor=0, doors=(
        Door(4.2 / 8.0, 5.8 / 8.0),  # living <-> stairwell (open archway)
        Door(6.4 / 8.0, 7.6 / 8.0),  # living <-> hallway (LOS doorway)
    ))
    plan.add_wall((8.0, 0.0), (8.0, 8.0), floor=0, doors=(
        Door(2.0 / 8.0, 3.0 / 8.0),  # restroom door
        Door(6.9 / 8.0, 7.9 / 8.0),  # kitchen door
    ))
    plan.add_wall((8.0, 4.0), (12.0, 4.0), floor=0)  # kitchen/restroom
    plan.add_wall((6.0, 6.0), (8.0, 6.0), floor=0, doors=(Door(0.0, 0.3),))
    plan.add_wall((6.0, 3.0), (8.0, 3.0), floor=0)

    # Upper-floor walls.
    plan.add_wall((6.0, 0.0), (6.0, 8.0), floor=1, doors=(
        Door(4.0 / 8.0, 5.2 / 8.0),  # bedroom A door
    ))
    plan.add_wall((8.0, 0.0), (8.0, 8.0), floor=1, doors=(
        Door(5.5 / 8.0, 6.5 / 8.0),  # bedroom B door
        Door(1.5 / 8.0, 2.5 / 8.0),  # bathroom door
    ))
    plan.add_wall((8.0, 3.0), (12.0, 3.0), floor=1)

    # Measurement points.  #1-24 living room.
    plan.add_points("living_room", _grid_points(living, 4, 6))
    # #25-27 hallway, placed in the doorway's line of sight.
    plan.add_points("hallway", [
        Point(6.5, 7.0, DEVICE_CARRY_HEIGHT),
        Point(7.0, 7.3, DEVICE_CARRY_HEIGHT),
        Point(7.5, 7.6, DEVICE_CARRY_HEIGHT),
    ])
    # #28-36 kitchen.
    plan.add_points("kitchen", _grid_points(kitchen, 3, 3))
    # #37-41 restroom.
    plan.add_points("restroom", [
        Point(8.8, 0.8, DEVICE_CARRY_HEIGHT),
        Point(10.0, 1.2, DEVICE_CARRY_HEIGHT),
        Point(11.2, 0.8, DEVICE_CARRY_HEIGHT),
        Point(9.4, 2.8, DEVICE_CARRY_HEIGHT),
        Point(10.8, 3.2, DEVICE_CARRY_HEIGHT),
    ])
    # #42-48: the staircase, ascending from the archway to the landing.
    stair_bottom = Point(6.3, 4.8, 0.0)
    stair_top = Point(7.7, 3.3, FLOOR_HEIGHT)
    plan.add_points("stairwell", [
        stair_bottom.lerp(stair_top, i / 6.0).offset(dz=DEVICE_CARRY_HEIGHT)
        for i in range(7)
    ])
    # #49-62 bedroom A.  Eight perimeter points (laterally far from the
    # speaker) then the six-point leak cluster directly above it, whose
    # numbers line up with the paper's #55, #56, #59-62.
    z_up = FLOOR_HEIGHT + DEVICE_CARRY_HEIGHT
    bedroom_a_points = [
        Point(0.7, 0.8, z_up), Point(2.9, 0.7, z_up), Point(5.2, 0.8, z_up),   # 49-51
        Point(0.6, 7.3, z_up), Point(2.9, 7.4, z_up), Point(5.3, 7.2, z_up),   # 52-54
        Point(1.8, 4.0, z_up), Point(3.2, 4.0, z_up),                          # 55-56 (leak)
        Point(5.4, 4.2, z_up), Point(0.6, 2.2, z_up),                          # 57-58
        Point(1.8, 5.0, z_up), Point(3.2, 5.0, z_up),                          # 59-60 (leak)
        Point(2.5, 4.3, z_up), Point(2.5, 5.2, z_up),                          # 61-62 (leak)
    ]
    plan.add_points("bedroom_a", bedroom_a_points)
    # #63-72 bedroom B; #73-78 upstairs bath.
    plan.add_points("bedroom_b", _grid_points(bedroom_b, 5, 2))
    plan.add_points("bath_up", _grid_points(bath_up, 3, 2))

    # The slab above the living-room corner has a utility chase/void:
    # paths piercing it are barely attenuated, which is what makes the
    # leak cluster (#55, #56, #59-62) read above the RSSI threshold.
    plan.add_slab_zone(SlabZone(1.0, 3.0, 4.0, 6.0, FLOOR_HEIGHT, attenuation=1.0))
    plan.validate()

    speaker_loc_1 = Point(2.5, 4.5, SPEAKER_HEIGHT)
    speaker_loc_2 = Point(10.0, 6.0, SPEAKER_HEIGHT)  # kitchen counter

    # Figure 10 routes.  Up/Down traverse the staircase; Route 1 wanders
    # inside one room; Routes 2 and 3 are the confusable in-floor walks.
    person_z0 = 0.0
    person_z1 = FLOOR_HEIGHT
    routes = {
        "up": WalkRoute("up", [
            Point(4.8, 4.9, person_z0),
            Point(6.3, 4.8, person_z0),
            Point(7.7, 3.3, person_z1),
            Point(7.0, 6.0, person_z1),
            Point(7.0, 7.5, person_z1),
        ], duration=8.0),
        "down": WalkRoute("down", [
            Point(7.0, 7.5, person_z1),
            Point(7.0, 6.0, person_z1),
            Point(7.7, 3.3, person_z1),
            Point(6.3, 4.8, person_z0),
            Point(4.8, 4.9, person_z0),
        ], duration=8.0),
        # Route 1: random movement within one room.  The paper collects
        # five traces in each of five rooms (25 total); each variant
        # below is one room's wander.
        "route1": WalkRoute("route1", [
            Point(1.5, 2.0, person_z0),
            Point(3.5, 6.5, person_z0),
            Point(2.0, 5.5, person_z0),
            Point(4.5, 3.0, person_z0),
        ], duration=8.0),
        "route1_kitchen": WalkRoute("route1_kitchen", [
            Point(8.7, 5.0, person_z0),
            Point(11.2, 7.3, person_z0),
            Point(9.5, 6.8, person_z0),
            Point(11.0, 5.2, person_z0),
        ], duration=8.0),
        "route1_restroom": WalkRoute("route1_restroom", [
            Point(8.8, 1.0, person_z0),
            Point(11.0, 3.2, person_z0),
            Point(9.5, 2.0, person_z0),
            Point(10.8, 0.9, person_z0),
        ], duration=8.0),
        "route1_bedroom_a": WalkRoute("route1_bedroom_a", [
            Point(1.2, 1.2, person_z1),
            Point(4.8, 6.5, person_z1),
            Point(2.2, 5.8, person_z1),
            Point(4.5, 2.0, person_z1),
        ], duration=8.0),
        "route1_bedroom_b": WalkRoute("route1_bedroom_b", [
            Point(8.8, 3.8, person_z1),
            Point(11.2, 7.2, person_z1),
            Point(9.5, 6.0, person_z1),
            Point(11.0, 4.2, person_z1),
        ], duration=8.0),
        # Route 2: #21 (living room) -> #37 (restroom), mimicking Up.
        # The walk ends with a couple of steps inside the restroom,
        # which flattens the fitted slope relative to a stair descent.
        "route2": WalkRoute("route2", [
            Point(4.0, 3.2, person_z0),
            Point(6.0, 4.6, person_z0),
            Point(7.2, 3.4, person_z0),
            Point(8.4, 2.6, person_z0),
            Point(8.8, 0.8, person_z0),
            Point(10.2, 1.4, person_z0),
        ], duration=9.5),
        # Route 3: #48 (stair top) -> #59 (leak zone), mimicking Down.
        "route3": WalkRoute("route3", [
            Point(7.7, 3.3, person_z1),
            Point(6.6, 4.4, person_z1),
            Point(4.5, 4.8, person_z1),
            Point(1.8, 5.0, person_z1),
        ], duration=8.0),
    }

    return Testbed(
        name="house",
        plan=plan,
        speaker_locations=[speaker_loc_1, speaker_loc_2],
        speaker_rooms=["living_room", "kitchen"],
        routes=routes,
        # Deployment 1: hallway points seen through the living-room
        # doorway.  Deployment 2 (kitchen): #27 faces the kitchen door.
        line_of_sight_points={0: [25, 26, 27], 1: [27]},
        stair_region=(6.0, 3.0, 8.0, 6.0),
    )


# ---------------------------------------------------------------------------
# Testbed 2: two-bedroom apartment
# ---------------------------------------------------------------------------

def apartment_testbed() -> Testbed:
    """The two-bedroom apartment (54 measurement points, one floor).

    A short hallway connects the living room to both bedrooms, the
    kitchen and the bath; the doors are offset so no room has a
    two-door sightline to another room's interior.
    """
    plan = FloorPlan("two-bedroom apartment", floor_count=1)

    living = plan.add_room(Room("living_room", 0.0, 0.0, 4.5, 8.0, floor=0))
    plan.add_room(Room("hall", 4.5, 2.5, 6.0, 5.5, floor=0))
    kitchen = plan.add_room(Room("kitchen", 4.5, 5.5, 10.0, 8.0, floor=0))
    bedroom_1 = plan.add_room(Room("bedroom_1", 6.0, 2.5, 10.0, 5.5, floor=0))
    bedroom_2 = plan.add_room(Room("bedroom_2", 6.0, 0.0, 10.0, 2.5, floor=0))
    bath = plan.add_room(Room("bath", 4.5, 0.0, 6.0, 2.5, floor=0))

    plan.add_wall((4.5, 0.0), (4.5, 8.0), floor=0, doors=(
        Door(3.6 / 8.0, 4.4 / 8.0),  # living <-> hall
    ))
    plan.add_wall((6.0, 2.5), (6.0, 5.5), floor=0, doors=(
        Door(2.3 / 3.0, 2.9 / 3.0),  # hall <-> bedroom 1 (y 4.8-5.4)
    ))
    plan.add_wall((4.5, 5.5), (10.0, 5.5), floor=0, doors=(
        Door(0.5 / 5.5, 1.3 / 5.5),  # hall <-> kitchen (x 5.0-5.8)
    ))
    plan.add_wall((4.5, 2.5), (10.0, 2.5), floor=0, doors=(
        Door(0.5 / 5.5, 1.3 / 5.5),  # hall <-> bath (x 5.0-5.8)
        Door(2.0 / 5.5, 3.0 / 5.5),  # bedroom 2 entry (x 6.5-7.5)
    ))
    plan.add_wall((6.0, 0.0), (6.0, 2.5), floor=0)  # bath / bedroom 2

    plan.add_points("living_room", _grid_points(living, 3, 6))   # 1-18
    plan.add_points("kitchen", _grid_points(kitchen, 4, 2))      # 19-26
    plan.add_points("bedroom_1", _grid_points(bedroom_1, 4, 3))  # 27-38
    plan.add_points("bedroom_2", _grid_points(bedroom_2, 4, 3))  # 39-50
    plan.add_points("bath", _grid_points(bath, 2, 2))            # 51-54
    plan.validate()

    return Testbed(
        name="apartment",
        plan=plan,
        speaker_locations=[Point(2.0, 4.0, SPEAKER_HEIGHT), Point(8.0, 4.0, SPEAKER_HEIGHT)],
        speaker_rooms=["living_room", "bedroom_1"],
        routes={},
        line_of_sight_points={0: [], 1: []},
        stair_region=None,
    )


# ---------------------------------------------------------------------------
# Testbed 3: office
# ---------------------------------------------------------------------------

def office_testbed() -> Testbed:
    """The large office (70 measurement points, one floor)."""
    plan = FloorPlan("office", floor_count=1)

    open_office = plan.add_room(Room("open_office", 0.0, 0.0, 9.0, 10.0, floor=0))
    plan.add_room(Room("corridor", 9.0, 0.0, 11.0, 10.0, floor=0))
    meeting = plan.add_room(Room("meeting_room", 11.0, 4.0, 16.0, 10.0, floor=0))
    lab = plan.add_room(Room("lab", 11.0, 0.0, 16.0, 4.0, floor=0))

    plan.add_wall((9.0, 0.0), (9.0, 10.0), floor=0, doors=(
        Door(4.5 / 10.0, 5.5 / 10.0),  # open office <-> corridor doorway
    ))
    plan.add_wall((11.0, 0.0), (11.0, 10.0), floor=0, doors=(
        Door(6.5 / 10.0, 7.4 / 10.0),  # meeting room door
        Door(1.5 / 10.0, 2.5 / 10.0),  # lab door
    ))
    plan.add_wall((11.0, 4.0), (16.0, 4.0), floor=0)  # meeting / lab

    plan.add_points("open_office", _grid_points(open_office, 5, 6))  # 1-30
    # Corridor points; #37/#38 (y = 5.0 row) face the open-office
    # doorway and are within the speaker's line of sight from the
    # first deployment location.
    corridor_points = []
    for y in (0.9, 2.6, 4.3, 5.0, 7.4, 9.1):
        for x in (9.5, 10.5):
            corridor_points.append(Point(x, y, DEVICE_CARRY_HEIGHT))
    plan.add_points("corridor", corridor_points)                 # 31-42
    plan.add_points("meeting_room", _grid_points(meeting, 4, 3))  # 43-54
    plan.add_points("lab", _grid_points(lab, 4, 4))               # 55-70
    plan.validate()

    return Testbed(
        name="office",
        plan=plan,
        speaker_locations=[Point(3.0, 5.0, SPEAKER_HEIGHT), Point(13.5, 8.5, SPEAKER_HEIGHT)],
        speaker_rooms=["open_office", "meeting_room"],
        routes={},
        line_of_sight_points={0: [37, 38], 1: []},
        stair_region=None,
    )


_BUILDERS = {
    "house": house_testbed,
    "apartment": apartment_testbed,
    "office": office_testbed,
}


def testbed_by_name(name: str) -> Testbed:
    """Build a testbed by its short name: house | apartment | office."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise FloorPlanError(
            f"unknown testbed {name!r}; choose from {sorted(_BUILDERS)}"
        ) from None
