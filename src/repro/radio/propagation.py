"""Indoor propagation model on the paper's app-reported RSSI scale.

The paper's measurement figures (Figures 8 and 9) report RSSI in a
relative unit where locations next to the speaker read near 0, the far
corner of the speaker's room reads about -8, other rooms read well
below the threshold, and the thresholds chosen by the calibration app
land between -5 and -8.  We therefore model

``rssi = -K * log10(max(d, d0) / d0) - W * walls - F * floors
+ shadow(position) + noise(sample)``

with ``K`` units per distance decade, a per-wall penalty ``W``, a
per-floor-slab penalty ``F``, a *static* spatial shadowing term that is
a deterministic function of the endpoint pair (so repeated measurements
at one location agree, as they do in the paper's 16-sample averages),
and zero-mean per-sample noise covering orientation and body effects.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.radio.floorplan import FloorPlan
from repro.radio.geometry import Point, distance


@dataclass(frozen=True)
class PropagationParams:
    """Tunable propagation constants (paper-scale units)."""

    reference_rssi: float = 0.0  # reading at d0 with clear line of sight
    path_loss_per_decade: float = 9.0  # K
    reference_distance: float = 0.6  # d0, metres
    wall_penalty: float = 5.0  # W, units per interior wall
    floor_penalty: float = 6.0  # F, units per floor slab (outside weak zones)
    shadowing_sigma: float = 0.8  # static spatial shadowing
    sample_noise_sigma: float = 0.5  # per-measurement noise
    body_occlusion: float = 0.7  # extra mean loss when body blocks LOS
    rssi_floor: float = -40.0  # scanner sensitivity limit


class PropagationModel:
    """Computes speaker-Bluetooth RSSI anywhere in a floor plan."""

    def __init__(
        self,
        plan: FloorPlan,
        params: Optional[PropagationParams] = None,
        seed: int = 0,
    ) -> None:
        self.plan = plan
        self.params = params or PropagationParams()
        self._seed = int(seed)

    # -- deterministic part ------------------------------------------------
    def mean_rssi(self, tx: Point, rx: Point) -> float:
        """Expected RSSI (no sample noise), including static shadowing."""
        p = self.params
        d = max(distance(tx, rx), p.reference_distance)
        path_loss = p.path_loss_per_decade * np.log10(d / p.reference_distance)
        walls = self.plan.walls_crossed(tx, rx)
        slab_loss = self.plan.slab_penalties(tx, rx, p.floor_penalty)
        rssi = (
            p.reference_rssi
            - path_loss
            - p.wall_penalty * walls
            - slab_loss
            + self._static_shadowing(tx, rx)
        )
        return float(max(rssi, p.rssi_floor))

    def _static_shadowing(self, tx: Point, rx: Point) -> float:
        """Deterministic zero-mean shadowing tied to the endpoint pair.

        Positions are quantized to 0.25 m so that small mobility steps
        see a smooth-ish field rather than white noise.
        """
        key = (
            f"{self._seed}|{round(tx.x * 4)},{round(tx.y * 4)},{round(tx.z * 4)}"
            f"|{round(rx.x * 4)},{round(rx.y * 4)},{round(rx.z * 4)}"
        )
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "little") / float(2**64)  # 0..1
        # Inverse-CDF of a normal would be overkill; a scaled sum of two
        # uniforms gives a symmetric, bounded, roughly bell-shaped term.
        unit2 = int.from_bytes(digest[8:16], "little") / float(2**64)
        return (unit + unit2 - 1.0) * self.params.shadowing_sigma * 2.0

    # -- sampled measurements ----------------------------------------------
    def sample_rssi(
        self,
        tx: Point,
        rx: Point,
        rng: np.random.Generator,
        body_blocked: bool = False,
    ) -> float:
        """One noisy RSSI measurement as a scanner would report it."""
        p = self.params
        rssi = self.mean_rssi(tx, rx)
        rssi += float(rng.normal(0.0, p.sample_noise_sigma))
        if body_blocked:
            rssi -= float(abs(rng.normal(p.body_occlusion, p.body_occlusion / 2)))
        return float(max(rssi, p.rssi_floor))

    def average_rssi(
        self,
        tx: Point,
        rx: Point,
        rng: np.random.Generator,
        samples: int = 16,
        body_blocked_fraction: float = 0.25,
    ) -> float:
        """Average of ``samples`` measurements.

        Mirrors the paper's measurement procedure: 4 readings in each of
        4 body orientations per location, roughly a quarter of which
        have the body between phone and speaker.
        """
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples!r}")
        readings = []
        for index in range(samples):
            blocked = (index / samples) < body_blocked_fraction
            readings.append(self.sample_rssi(tx, rx, rng, body_blocked=blocked))
        return float(np.mean(readings))
