"""Indoor propagation model on the paper's app-reported RSSI scale.

The paper's measurement figures (Figures 8 and 9) report RSSI in a
relative unit where locations next to the speaker read near 0, the far
corner of the speaker's room reads about -8, other rooms read well
below the threshold, and the thresholds chosen by the calibration app
land between -5 and -8.  We therefore model

``rssi = -K * log10(max(d, d0) / d0) - W * walls - F * floors
+ shadow(position) + noise(sample)``

with ``K`` units per distance decade, a per-wall penalty ``W``, a
per-floor-slab penalty ``F``, a *static* spatial shadowing term that is
a deterministic function of the endpoint pair (so repeated measurements
at one location agree, as they do in the paper's 16-sample averages),
and zero-mean per-sample noise covering orientation and body effects.

Hot-path architecture
---------------------
Every table and figure bottoms out here, so the model is layered as a
cached, vectorized pipeline whose outputs are *bit-identical* to the
scalar reference:

* the deterministic ``mean_rssi`` is memoized on the exact endpoint
  pair (``_mean_cache``) and its SHA-256-derived shadowing term is a
  seeded field cached per quantized key (``_shadow_cache``), so the
  hash runs once per 0.25 m cell instead of once per sample;
* ``mean_rssi_many`` evaluates a whole measurement grid with numpy
  (vectorized distances and wall counts via
  :meth:`FloorPlan.walls_crossed_many`);
* ``sample_rssi_batch`` / ``average_rssi_batch`` draw all per-sample
  noise as one ``Generator.standard_normal(size)`` array, consuming the
  bitstream in exactly the order of the scalar loop.

Note on ``np.log10``: the batch path deliberately keeps numpy's log10
(array form) rather than ``math.log10``.  Numpy's scalar and array
ufunc loops agree bit-for-bit, but ``math.log10`` differs from them by
1 ulp on ~3 % of inputs — swapping it in would silently change every
table.  ``math.sqrt``/``np.sqrt`` are IEEE-exact and interchangeable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.radio.floorplan import FloorPlan
from repro.radio.geometry import Point, distance

# Bounds for the memoization layers: mobility workloads sample at a
# fresh position every time, so the dictionaries are wiped wholesale
# when they outgrow these caps (grids and repeated samples stay hot).
_MEAN_CACHE_MAX = 1 << 16
_SHADOW_CACHE_MAX = 1 << 16


@dataclass(frozen=True)
class PropagationParams:
    """Tunable propagation constants (paper-scale units)."""

    reference_rssi: float = 0.0  # reading at d0 with clear line of sight
    path_loss_per_decade: float = 9.0  # K
    reference_distance: float = 0.6  # d0, metres
    wall_penalty: float = 5.0  # W, units per interior wall
    floor_penalty: float = 6.0  # F, units per floor slab (outside weak zones)
    shadowing_sigma: float = 0.8  # static spatial shadowing
    sample_noise_sigma: float = 0.5  # per-measurement noise
    body_occlusion: float = 0.7  # extra mean loss when body blocks LOS
    rssi_floor: float = -40.0  # scanner sensitivity limit


class PropagationModel:
    """Computes speaker-Bluetooth RSSI anywhere in a floor plan."""

    def __init__(
        self,
        plan: FloorPlan,
        params: Optional[PropagationParams] = None,
        seed: int = 0,
    ) -> None:
        self.plan = plan
        self.params = params or PropagationParams()
        self._seed = int(seed)
        self._mean_cache: Dict[Tuple[float, ...], float] = {}
        self._shadow_cache: Dict[Tuple[int, ...], float] = {}
        self._plan_version = plan.version

    def _check_plan_version(self) -> None:
        if self.plan.version != self._plan_version:
            self._mean_cache.clear()
            self._shadow_cache.clear()
            self._plan_version = self.plan.version

    # -- deterministic part ------------------------------------------------
    def mean_rssi(self, tx: Point, rx: Point) -> float:
        """Expected RSSI (no sample noise), including static shadowing.

        Memoized on the exact endpoint pair; misses fall through to
        :meth:`mean_rssi_uncached`, the scalar reference.
        """
        self._check_plan_version()
        key = (tx.x, tx.y, tx.z, rx.x, rx.y, rx.z)
        cached = self._mean_cache.get(key)
        if cached is not None:
            return cached
        value = self.mean_rssi_uncached(tx, rx)
        if len(self._mean_cache) >= _MEAN_CACHE_MAX:
            self._mean_cache.clear()
        self._mean_cache[key] = value
        return value

    def mean_rssi_uncached(self, tx: Point, rx: Point) -> float:
        """The scalar reference computation (no memoization)."""
        p = self.params
        d = max(distance(tx, rx), p.reference_distance)
        path_loss = p.path_loss_per_decade * np.log10(d / p.reference_distance)
        walls = self.plan.walls_crossed(tx, rx)
        slab_loss = self.plan.slab_penalties(tx, rx, p.floor_penalty)
        rssi = (
            p.reference_rssi
            - path_loss
            - p.wall_penalty * walls
            - slab_loss
            + self._static_shadowing(tx, rx)
        )
        return float(max(rssi, p.rssi_floor))

    def mean_rssi_many(self, tx: Point, points: Sequence[Point]) -> np.ndarray:
        """Expected RSSI from ``tx`` to every receiver, vectorized.

        Bit-identical to ``[mean_rssi(tx, rx) for rx in points]``: the
        distance/path-loss arithmetic runs as elementwise float64 ops in
        the same order as the scalar path, wall counts come from the
        broadcasted kernel, and results are written into the same memo
        ``mean_rssi`` reads (so a following sampling pass is all hits).
        """
        self._check_plan_version()
        n = len(points)
        out = np.empty(n, dtype=np.float64)
        missing: List[int] = []
        for index, rx in enumerate(points):
            cached = self._mean_cache.get((tx.x, tx.y, tx.z, rx.x, rx.y, rx.z))
            if cached is None:
                missing.append(index)
            else:
                out[index] = cached
        if not missing:
            return out
        p = self.params
        subset = [points[i] for i in missing]
        dx = np.array([tx.x - rx.x for rx in subset], dtype=np.float64)
        dy = np.array([tx.y - rx.y for rx in subset], dtype=np.float64)
        dz = np.array([tx.z - rx.z for rx in subset], dtype=np.float64)
        d = np.maximum(np.sqrt(dx * dx + dy * dy + dz * dz), p.reference_distance)
        path_loss = p.path_loss_per_decade * np.log10(d / p.reference_distance)
        walls = self.plan.walls_crossed_many(tx, subset)
        slab = np.array(
            [self.plan.slab_penalties(tx, rx, p.floor_penalty) for rx in subset],
            dtype=np.float64,
        )
        shadow = np.array(
            [self._static_shadowing(tx, rx) for rx in subset], dtype=np.float64
        )
        rssi = np.maximum(
            p.reference_rssi - path_loss - p.wall_penalty * walls - slab + shadow,
            p.rssi_floor,
        )
        if len(self._mean_cache) + len(missing) >= _MEAN_CACHE_MAX:
            self._mean_cache.clear()
        for slot, index in enumerate(missing):
            value = float(rssi[slot])
            rx = points[index]
            self._mean_cache[(tx.x, tx.y, tx.z, rx.x, rx.y, rx.z)] = value
            out[index] = value
        return out

    def _static_shadowing(self, tx: Point, rx: Point) -> float:
        """Deterministic zero-mean shadowing tied to the endpoint pair.

        Positions are quantized to 0.25 m so that small mobility steps
        see a smooth-ish field rather than white noise.  The SHA-256
        evaluation runs once per quantized cell; afterwards the value
        comes from the seeded field cache.
        """
        qkey = (
            round(tx.x * 4), round(tx.y * 4), round(tx.z * 4),
            round(rx.x * 4), round(rx.y * 4), round(rx.z * 4),
        )
        value = self._shadow_cache.get(qkey)
        if value is not None:
            return value
        key = (
            f"{self._seed}|{qkey[0]},{qkey[1]},{qkey[2]}"
            f"|{qkey[3]},{qkey[4]},{qkey[5]}"
        )
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "little") / float(2**64)  # 0..1
        # Inverse-CDF of a normal would be overkill; a scaled sum of two
        # uniforms gives a symmetric, bounded, roughly bell-shaped term.
        unit2 = int.from_bytes(digest[8:16], "little") / float(2**64)
        value = (unit + unit2 - 1.0) * self.params.shadowing_sigma * 2.0
        if len(self._shadow_cache) >= _SHADOW_CACHE_MAX:
            self._shadow_cache.clear()
        self._shadow_cache[qkey] = value
        return value

    # -- sampled measurements ----------------------------------------------
    def sample_rssi(
        self,
        tx: Point,
        rx: Point,
        rng: np.random.Generator,
        body_blocked: bool = False,
    ) -> float:
        """One noisy RSSI measurement as a scanner would report it."""
        p = self.params
        rssi = self.mean_rssi(tx, rx)
        rssi += float(rng.normal(0.0, p.sample_noise_sigma))
        if body_blocked:
            rssi -= float(abs(rng.normal(p.body_occlusion, p.body_occlusion / 2)))
        return float(max(rssi, p.rssi_floor))

    def sample_rssi_batch(
        self,
        tx: Point,
        rx: Point,
        rng: np.random.Generator,
        blocked: Sequence[bool],
    ) -> np.ndarray:
        """``len(blocked)`` noisy measurements in one vectorized draw.

        Equivalent, bit-for-bit, to calling :meth:`sample_rssi` once per
        entry of ``blocked``: the scalar loop consumes the generator's
        bitstream as ``noise_0, [body_0,] noise_1, [body_1,] ...`` and a
        single ``standard_normal(size)`` call yields exactly that
        sequence of variates, to which the same affine transforms are
        applied (``Generator.normal(loc, scale)`` is
        ``loc + scale * standard_normal()``).
        """
        p = self.params
        mean = self.mean_rssi(tx, rx)
        flags = np.asarray(blocked, dtype=bool)
        n = int(flags.size)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        occluded = int(flags.sum())
        z = rng.standard_normal(n + occluded)
        # Draw i's noise variate sits after all earlier noise AND body
        # draws; a blocked draw's body variate immediately follows it.
        before = np.cumsum(flags) - flags
        noise_index = np.arange(n) + before
        rssi = mean + (0.0 + p.sample_noise_sigma * z[noise_index])
        if occluded:
            body = np.abs(
                p.body_occlusion + (p.body_occlusion / 2) * z[noise_index[flags] + 1]
            )
            rssi[flags] = rssi[flags] - body
        return np.maximum(rssi, p.rssi_floor)

    def average_rssi(
        self,
        tx: Point,
        rx: Point,
        rng: np.random.Generator,
        samples: int = 16,
        body_blocked_fraction: float = 0.25,
    ) -> float:
        """Average of ``samples`` measurements (scalar reference).

        Mirrors the paper's measurement procedure: 4 readings in each of
        4 body orientations per location, roughly a quarter of which
        have the body between phone and speaker.
        """
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples!r}")
        readings = []
        for index in range(samples):
            blocked = (index / samples) < body_blocked_fraction
            readings.append(self.sample_rssi(tx, rx, rng, body_blocked=blocked))
        return float(np.mean(readings))

    def average_rssi_batch(
        self,
        tx: Point,
        rx: Point,
        rng: np.random.Generator,
        samples: int = 16,
        body_blocked_fraction: float = 0.25,
    ) -> float:
        """Batched :meth:`average_rssi`: same value, one noise draw."""
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples!r}")
        blocked = [
            (index / samples) < body_blocked_fraction for index in range(samples)
        ]
        readings = self.sample_rssi_batch(tx, rx, rng, blocked)
        return float(np.mean(readings))

    def average_rssi_grid(
        self,
        tx: Point,
        points: Sequence[Point],
        rng: np.random.Generator,
        samples: int = 16,
        body_blocked_fraction: float = 0.25,
    ) -> np.ndarray:
        """Measurement-averaged RSSI for a whole grid in one shot.

        Bit-identical to ``[average_rssi(tx, rx, rng, ...) for rx in
        points]``: each location consumes a fixed ``samples +
        blocked_count`` stretch of the generator's bitstream, so one
        ``standard_normal`` draw reshaped to (points, draws) replays the
        per-location loop exactly; means come from the vectorized
        :meth:`mean_rssi_many` and the per-location average reduces the
        same 16 values with the same pairwise summation.
        """
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples!r}")
        count = len(points)
        if count == 0:
            return np.empty(0, dtype=np.float64)
        p = self.params
        means = self.mean_rssi_many(tx, points)
        flags = np.array(
            [(index / samples) < body_blocked_fraction for index in range(samples)],
            dtype=bool,
        )
        occluded = int(flags.sum())
        draws_per_point = samples + occluded
        z = rng.standard_normal(count * draws_per_point).reshape(count, draws_per_point)
        before = np.cumsum(flags) - flags
        noise_index = np.arange(samples) + before
        # Advanced indexing on axis 1 yields a transposed-layout array;
        # force C order so the per-row mean reduces contiguously with
        # numpy's pairwise summation, exactly like ``np.mean`` over the
        # scalar loop's 16-reading list (a strided reduce falls back to
        # naive summation and drifts by 1 ulp).
        rssi = np.ascontiguousarray(
            means[:, None] + (0.0 + p.sample_noise_sigma * z[:, noise_index])
        )
        if occluded:
            body = np.abs(
                p.body_occlusion
                + (p.body_occlusion / 2) * z[:, noise_index[flags] + 1]
            )
            rssi[:, flags] = rssi[:, flags] - body
        np.maximum(rssi, p.rssi_floor, out=rssi)
        return rssi.mean(axis=1)
