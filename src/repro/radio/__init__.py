"""Bluetooth RF substrate: geometry, floor plans, propagation, testbeds.

The Decision Module's only physical input is the smart speaker's
Bluetooth RSSI as measured at the owner's phone or watch.  This package
provides the physics behind that scalar:

* :mod:`repro.radio.geometry` — 3-D points and wall-crossing tests;
* :mod:`repro.radio.floorplan` — rooms, walls with door openings,
  multi-floor buildings, and numbered measurement grids;
* :mod:`repro.radio.propagation` — log-distance path loss with per-wall
  and per-floor attenuation, static spatial shadowing and per-sample
  measurement noise, on the paper's app-reported RSSI scale
  (0 near the speaker down to roughly -30 across floors);
* :mod:`repro.radio.bluetooth` — beacon/scanner pair with scan latency;
* :mod:`repro.radio.testbeds` — the paper's three evaluation sites
  (two-floor house, two-bedroom apartment, office) with the same
  measurement-point counts (78 / 54 / 70) and two speaker deployment
  locations each.
"""

from repro.radio.bluetooth import BluetoothBeacon, BluetoothScanner, RssiSample
from repro.radio.floorplan import Door, FloorPlan, MeasurementPoint, Room, Wall
from repro.radio.geometry import Point, distance, segment_crosses_wall
from repro.radio.propagation import PropagationModel, PropagationParams
from repro.radio.testbeds import (
    Testbed,
    apartment_testbed,
    house_testbed,
    office_testbed,
    testbed_by_name,
)

__all__ = [
    "BluetoothBeacon",
    "BluetoothScanner",
    "Door",
    "FloorPlan",
    "MeasurementPoint",
    "Point",
    "PropagationModel",
    "PropagationParams",
    "Room",
    "RssiSample",
    "Testbed",
    "Wall",
    "apartment_testbed",
    "distance",
    "house_testbed",
    "office_testbed",
    "segment_crosses_wall",
    "testbed_by_name",
]
