"""Floor plans: rooms, walls with doors, measurement grids.

A :class:`FloorPlan` is a set of axis-aligned rooms on one or more
floors, a set of walls (with door openings), and a numbered grid of
measurement points — the paper numbers every location it measured
(1-78 in the house, 1-54 in the apartment, 1-70 in the office) and
refers to routes by those numbers, so the reproduction does too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FloorPlanError
from repro.radio.geometry import (
    Point,
    WallArray,
    count_floor_crossings,
    floor_crossing_points,
    point_in_rect,
    segment_crosses_wall,
)

# Wall-crossing results are memoized on exact endpoint coordinates; the
# cache is wiped wholesale when it outgrows this bound so long mobility
# simulations (every sample at a fresh position) cannot grow it without
# limit.
_CROSSING_CACHE_MAX = 1 << 16

FLOOR_HEIGHT = 3.0  # metres between storeys
DEVICE_CARRY_HEIGHT = 1.0  # phones/watches carried about a metre up


@dataclass(frozen=True)
class Door:
    """An opening in a wall, as a (start, end) interval along the wall
    expressed as fractions 0..1 of the wall's length."""

    u_start: float
    u_end: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.u_start < self.u_end <= 1.0:
            raise FloorPlanError(f"invalid door interval ({self.u_start}, {self.u_end})")


@dataclass(frozen=True)
class Wall:
    """A vertical wall: a 2-D segment extruded from z_low to z_high."""

    start: Tuple[float, float]
    end: Tuple[float, float]
    z_low: float
    z_high: float
    doors: Tuple[Door, ...] = ()

    def crossed_by(self, a: Point, b: Point) -> bool:
        """Whether the segment a->b penetrates this wall (doors excluded)."""
        openings = [(door.u_start, door.u_end) for door in self.doors]
        return segment_crosses_wall(a, b, self.start, self.end, self.z_low, self.z_high, openings)


@dataclass(frozen=True)
class Room:
    """An axis-aligned room on one floor.

    ``height`` defaults to one storey; stairwells that pierce the slab
    (so their upper measurement points are still "in" the room) use a
    taller value.
    """

    name: str
    x0: float
    y0: float
    x1: float
    y1: float
    floor: int  # 0 = ground floor
    height: float = FLOOR_HEIGHT

    def __post_init__(self) -> None:
        if self.x0 >= self.x1 or self.y0 >= self.y1:
            raise FloorPlanError(f"room {self.name!r} has non-positive extent")
        if self.height <= 0:
            raise FloorPlanError(f"room {self.name!r} has non-positive height")

    @property
    def z_floor(self) -> float:
        """The z coordinate of this room's floor."""
        return self.floor * FLOOR_HEIGHT

    def contains(self, point: Point) -> bool:
        """Whether a point lies inside the room's volume."""
        if not point_in_rect(point, self.x0, self.y0, self.x1, self.y1):
            return False
        return self.z_floor - 1e-9 <= point.z <= self.z_floor + self.height + 1e-9

    def center(self, height: float = DEVICE_CARRY_HEIGHT) -> Point:
        """The room's center at carrying height."""
        return Point((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2, self.z_floor + height)

    def grid(self, nx: int, ny: int, height: float = DEVICE_CARRY_HEIGHT) -> List[Point]:
        """``nx * ny`` evenly spaced interior points, row-major."""
        points = []
        for iy in range(ny):
            for ix in range(nx):
                x = self.x0 + (ix + 0.5) * (self.x1 - self.x0) / nx
                y = self.y0 + (iy + 0.5) * (self.y1 - self.y0) / ny
                points.append(Point(x, y, self.z_floor + height))
        return points


@dataclass(frozen=True)
class SlabZone:
    """A locally weak region of a floor slab (duct, void, stair opening).

    A radio path piercing the slab inside this rectangle suffers
    ``attenuation`` instead of the model's default per-floor penalty.
    The paper's house exhibits exactly this: the room directly above the
    speaker reads above the RSSI threshold (locations #55, #56, #59-62)
    while the rest of the upper floor reads far below it.
    """

    x0: float
    y0: float
    x1: float
    y1: float
    slab_height: float  # z of the slab this zone belongs to
    attenuation: float  # replaces the default floor penalty

    def covers(self, x: float, y: float, slab_height: float) -> bool:
        """Whether a slab crossing at (x, y) falls in this zone."""
        if abs(slab_height - self.slab_height) > 1e-6:
            return False
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1


@dataclass(frozen=True)
class MeasurementPoint:
    """A numbered location from the paper's figures."""

    number: int
    point: Point
    room_name: str


class FloorPlan:
    """A building: rooms + walls + numbered measurement points."""

    def __init__(self, name: str, floor_count: int = 1) -> None:
        if floor_count < 1:
            raise FloorPlanError(f"floor_count must be >= 1, got {floor_count!r}")
        self.name = name
        self.floor_count = floor_count
        self.rooms: Dict[str, Room] = {}
        self.walls: List[Wall] = []
        self.points: Dict[int, MeasurementPoint] = {}
        self.slab_zones: List[SlabZone] = []
        # Vectorized wall substrate: rebuilt lazily after wall changes.
        self._wall_array: Optional[WallArray] = None
        self._crossing_cache: Dict[Tuple[float, ...], int] = {}
        self._version = 0

    # -- construction -----------------------------------------------------
    def add_room(self, room: Room) -> Room:
        """Add a room (unique name, valid floor)."""
        if room.name in self.rooms:
            raise FloorPlanError(f"duplicate room name {room.name!r}")
        if not 0 <= room.floor < self.floor_count:
            raise FloorPlanError(f"room {room.name!r} on invalid floor {room.floor}")
        self.rooms[room.name] = room
        return room

    def add_wall(
        self,
        start: Tuple[float, float],
        end: Tuple[float, float],
        floor: int = 0,
        doors: Tuple[Door, ...] = (),
    ) -> Wall:
        """Add a wall on ``floor`` with optional door openings."""
        z_low = floor * FLOOR_HEIGHT
        wall = Wall(start=start, end=end, z_low=z_low, z_high=z_low + FLOOR_HEIGHT, doors=doors)
        self.walls.append(wall)
        self._invalidate_geometry()
        return wall

    def add_slab_zone(self, zone: SlabZone) -> SlabZone:
        """Register a weak slab region (see :class:`SlabZone`)."""
        if zone.slab_height not in self.floor_heights:
            raise FloorPlanError(
                f"slab zone height {zone.slab_height} matches no floor slab"
            )
        self.slab_zones.append(zone)
        self._version += 1
        return zone

    def _invalidate_geometry(self) -> None:
        self._wall_array = None
        self._crossing_cache.clear()
        self._version += 1

    def add_points(self, room_name: str, points: List[Point]) -> List[MeasurementPoint]:
        """Append numbered measurement points (numbering continues)."""
        if room_name not in self.rooms:
            raise FloorPlanError(f"unknown room {room_name!r}")
        added = []
        next_number = max(self.points) + 1 if self.points else 1
        for offset, point in enumerate(points):
            mp = MeasurementPoint(next_number + offset, point, room_name)
            self.points[mp.number] = mp
            added.append(mp)
        return added

    # -- queries ------------------------------------------------------------
    @property
    def floor_heights(self) -> List[float]:
        """Z coordinates of the slabs between floors."""
        return [FLOOR_HEIGHT * level for level in range(1, self.floor_count)]

    def point(self, number: int) -> MeasurementPoint:
        """Look up a numbered measurement point."""
        try:
            return self.points[number]
        except KeyError:
            raise FloorPlanError(f"{self.name} has no measurement point #{number}") from None

    def points_in_room(self, room_name: str) -> List[MeasurementPoint]:
        """Measurement points inside a room."""
        return [mp for mp in self.points.values() if mp.room_name == room_name]

    def room_of(self, point: Point) -> Optional[Room]:
        """The room containing ``point``, if any."""
        for room in self.rooms.values():
            if room.contains(point):
                return room
        return None

    def floor_of(self, point: Point) -> int:
        """Which storey a point is on (by height)."""
        level = int(point.z // FLOOR_HEIGHT)
        return max(0, min(level, self.floor_count - 1))

    @property
    def version(self) -> int:
        """Bumped whenever walls or slab zones change.

        Consumers that memoize propagation-relevant results (e.g.
        :class:`~repro.radio.propagation.PropagationModel`) compare this
        to know when their caches are stale.
        """
        return self._version

    @property
    def wall_array(self) -> WallArray:
        """The walls as a vectorized :class:`WallArray` (built lazily)."""
        if self._wall_array is None:
            self._wall_array = WallArray([
                (
                    wall.start,
                    wall.end,
                    wall.z_low,
                    wall.z_high,
                    [(door.u_start, door.u_end) for door in wall.doors],
                )
                for wall in self.walls
            ])
        return self._wall_array

    def walls_crossed(self, a: Point, b: Point) -> int:
        """Number of walls the straight path a->b penetrates.

        Results are memoized on the exact endpoint pair.  A single-pair
        miss runs the per-wall python loop: with the handful of walls a
        testbed has, numpy's fixed per-op overhead makes the vectorized
        kernel a net loss for one pair (it wins ~5x per point once a
        whole grid amortizes it — see :meth:`walls_crossed_many`).
        """
        key = (a.x, a.y, a.z, b.x, b.y, b.z)
        cached = self._crossing_cache.get(key)
        if cached is not None:
            return cached
        count = self.walls_crossed_scalar(a, b)
        self._remember_crossing(key, count)
        return count

    def walls_crossed_scalar(self, a: Point, b: Point) -> int:
        """Reference implementation: the original per-wall python loop."""
        return sum(1 for wall in self.walls if wall.crossed_by(a, b))

    def walls_crossed_many(self, a: Point, points: Sequence[Point]) -> np.ndarray:
        """Crossing counts from ``a`` to every receiver in ``points``.

        One broadcasted (walls x points) pass; equivalent to calling
        :meth:`walls_crossed` per point.  Results land in the same
        memo the scalar entry point reads.
        """
        counts = self.wall_array.crossing_counts_many(a, points)
        for rx, count in zip(points, counts):
            self._remember_crossing((a.x, a.y, a.z, rx.x, rx.y, rx.z), int(count))
        return counts

    def _remember_crossing(self, key: Tuple[float, ...], count: int) -> None:
        if len(self._crossing_cache) >= _CROSSING_CACHE_MAX:
            self._crossing_cache.clear()
        self._crossing_cache[key] = count

    def floors_crossed(self, a: Point, b: Point) -> int:
        """Number of slabs the segment a->b pierces."""
        return count_floor_crossings(a, b, self.floor_heights)

    def slab_penalties(self, a: Point, b: Point, default_penalty: float) -> float:
        """Total floor-slab attenuation along the path a->b.

        Each slab crossing costs ``default_penalty`` unless it pierces
        a registered weak :class:`SlabZone`, whose ``attenuation``
        applies instead.
        """
        total = 0.0
        for x, y, slab_height in floor_crossing_points(a, b, self.floor_heights):
            penalty = default_penalty
            for zone in self.slab_zones:
                if zone.covers(x, y, slab_height):
                    penalty = zone.attenuation
                    break
            total += penalty
        return total

    def same_room(self, a: Point, b: Point) -> bool:
        """Whether two points share a room."""
        room_a, room_b = self.room_of(a), self.room_of(b)
        return room_a is not None and room_a is room_b

    def validate(self) -> None:
        """Sanity-check plan consistency; raises on problems."""
        for number, mp in self.points.items():
            room = self.rooms.get(mp.room_name)
            if room is None or not room.contains(mp.point):
                raise FloorPlanError(
                    f"measurement point #{number} is not inside room {mp.room_name!r}"
                )
