"""Minimal 3-D geometry for indoor propagation.

Walls are vertical rectangles: a 2-D segment extruded over a height
range.  The only geometric question propagation asks is: does the
straight line between transmitter and receiver cross this wall (outside
its door openings)?
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Point:
    """A point in metres; ``z`` is height above the ground floor."""

    x: float
    y: float
    z: float = 1.0

    def offset(self, dx: float = 0.0, dy: float = 0.0, dz: float = 0.0) -> "Point":
        """A new point displaced by (dx, dy, dz)."""
        return Point(self.x + dx, self.y + dy, self.z + dz)

    def lerp(self, other: "Point", t: float) -> "Point":
        """Linear interpolation: ``t=0`` is self, ``t=1`` is other."""
        return Point(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
            self.z + (other.z - self.z) * t,
        )

    def xy(self) -> Tuple[float, float]:
        """The (x, y) projection."""
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean 3-D distance in metres."""
    return math.sqrt((a.x - b.x) ** 2 + (a.y - b.y) ** 2 + (a.z - b.z) ** 2)


def _segment_intersection_2d(
    p1: Tuple[float, float],
    p2: Tuple[float, float],
    q1: Tuple[float, float],
    q2: Tuple[float, float],
) -> Optional[Tuple[float, float]]:
    """Intersection parameters ``(t, u)`` of segments p and q, or None.

    ``t`` parametrizes p (0..1), ``u`` parametrizes q (0..1).
    Collinear overlaps return None: a ray sliding along a wall face is
    not treated as crossing it.
    """
    rx, ry = p2[0] - p1[0], p2[1] - p1[1]
    sx, sy = q2[0] - q1[0], q2[1] - q1[1]
    denom = rx * sy - ry * sx
    if abs(denom) < 1e-12:
        return None
    qpx, qpy = q1[0] - p1[0], q1[1] - p1[1]
    t = (qpx * sy - qpy * sx) / denom
    u = (qpx * ry - qpy * rx) / denom
    if -1e-9 <= t <= 1 + 1e-9 and -1e-9 <= u <= 1 + 1e-9:
        return (t, u)
    return None


def segment_crosses_wall(
    a: Point,
    b: Point,
    wall_start: Tuple[float, float],
    wall_end: Tuple[float, float],
    z_low: float,
    z_high: float,
    openings: Optional[List[Tuple[float, float]]] = None,
) -> bool:
    """True if the 3-D segment a->b passes through the wall rectangle.

    ``openings`` are (u_start, u_end) intervals along the wall segment
    (0..1) that are open (doors); a crossing inside an opening does not
    count, matching the paper's line-of-sight locations seen through a
    doorway.
    """
    hit = _segment_intersection_2d(a.xy(), b.xy(), wall_start, wall_end)
    if hit is None:
        return False
    t, u = hit
    z_at_crossing = a.z + (b.z - a.z) * t
    if not (z_low - 1e-9 <= z_at_crossing <= z_high + 1e-9):
        return False
    if openings:
        for u_start, u_end in openings:
            if u_start - 1e-9 <= u <= u_end + 1e-9:
                return False
    return True


def count_floor_crossings(a: Point, b: Point, floor_heights: List[float]) -> int:
    """Number of floor slabs the segment a->b passes through.

    ``floor_heights`` are the z coordinates of slabs above the ground
    floor (e.g. ``[3.0]`` for a two-storey house).
    """
    z_low, z_high = min(a.z, b.z), max(a.z, b.z)
    return sum(1 for h in floor_heights if z_low < h < z_high)


def floor_crossing_points(
    a: Point, b: Point, floor_heights: List[float]
) -> List[Tuple[float, float, float]]:
    """Where the segment a->b pierces each floor slab.

    Returns ``(x, y, slab_height)`` triples, one per crossed slab — the
    propagation model uses the pierce position to apply locally weaker
    slab attenuation (ducts, voids, stair openings).
    """
    crossings: List[Tuple[float, float, float]] = []
    if abs(b.z - a.z) < 1e-12:
        return crossings
    z_low, z_high = min(a.z, b.z), max(a.z, b.z)
    for height in floor_heights:
        if z_low < height < z_high:
            t = (height - a.z) / (b.z - a.z)
            crossings.append((a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t, height))
    return crossings


def point_in_rect(point: Point, x0: float, y0: float, x1: float, y1: float) -> bool:
    """2-D containment test (z ignored)."""
    return x0 - 1e-9 <= point.x <= x1 + 1e-9 and y0 - 1e-9 <= point.y <= y1 + 1e-9


def path_points(a: Point, b: Point, count: int) -> List[Point]:
    """``count`` evenly spaced points from a to b inclusive."""
    if count < 2:
        raise ValueError(f"need at least 2 points, got {count!r}")
    return [a.lerp(b, i / (count - 1)) for i in range(count)]
