"""Minimal 3-D geometry for indoor propagation.

Walls are vertical rectangles: a 2-D segment extruded over a height
range.  The only geometric question propagation asks is: does the
straight line between transmitter and receiver cross this wall (outside
its door openings)?

Two forms of the crossing test live here: the scalar reference
(:func:`segment_crosses_wall`) and a vectorized kernel
(:class:`WallArray`) that answers the same question for every wall at
once — or for every (wall, endpoint) pair of a whole measurement grid.
The vectorized kernel applies the exact same float64 arithmetic and
tolerances as the scalar path, so crossing counts agree bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Point:
    """A point in metres; ``z`` is height above the ground floor."""

    x: float
    y: float
    z: float = 1.0

    def offset(self, dx: float = 0.0, dy: float = 0.0, dz: float = 0.0) -> "Point":
        """A new point displaced by (dx, dy, dz)."""
        return Point(self.x + dx, self.y + dy, self.z + dz)

    def lerp(self, other: "Point", t: float) -> "Point":
        """Linear interpolation: ``t=0`` is self, ``t=1`` is other."""
        return Point(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
            self.z + (other.z - self.z) * t,
        )

    def xy(self) -> Tuple[float, float]:
        """The (x, y) projection."""
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean 3-D distance in metres."""
    return math.sqrt((a.x - b.x) ** 2 + (a.y - b.y) ** 2 + (a.z - b.z) ** 2)


def _segment_intersection_2d(
    p1: Tuple[float, float],
    p2: Tuple[float, float],
    q1: Tuple[float, float],
    q2: Tuple[float, float],
) -> Optional[Tuple[float, float]]:
    """Intersection parameters ``(t, u)`` of segments p and q, or None.

    ``t`` parametrizes p (0..1), ``u`` parametrizes q (0..1).
    Collinear overlaps return None: a ray sliding along a wall face is
    not treated as crossing it.
    """
    rx, ry = p2[0] - p1[0], p2[1] - p1[1]
    sx, sy = q2[0] - q1[0], q2[1] - q1[1]
    denom = rx * sy - ry * sx
    if abs(denom) < 1e-12:
        return None
    qpx, qpy = q1[0] - p1[0], q1[1] - p1[1]
    t = (qpx * sy - qpy * sx) / denom
    u = (qpx * ry - qpy * rx) / denom
    if -1e-9 <= t <= 1 + 1e-9 and -1e-9 <= u <= 1 + 1e-9:
        return (t, u)
    return None


def segment_crosses_wall(
    a: Point,
    b: Point,
    wall_start: Tuple[float, float],
    wall_end: Tuple[float, float],
    z_low: float,
    z_high: float,
    openings: Optional[List[Tuple[float, float]]] = None,
) -> bool:
    """True if the 3-D segment a->b passes through the wall rectangle.

    ``openings`` are (u_start, u_end) intervals along the wall segment
    (0..1) that are open (doors); a crossing inside an opening does not
    count, matching the paper's line-of-sight locations seen through a
    doorway.
    """
    hit = _segment_intersection_2d(a.xy(), b.xy(), wall_start, wall_end)
    if hit is None:
        return False
    t, u = hit
    z_at_crossing = a.z + (b.z - a.z) * t
    if not (z_low - 1e-9 <= z_at_crossing <= z_high + 1e-9):
        return False
    if openings:
        for u_start, u_end in openings:
            if u_start - 1e-9 <= u <= u_end + 1e-9:
                return False
    return True


def count_floor_crossings(a: Point, b: Point, floor_heights: List[float]) -> int:
    """Number of floor slabs the segment a->b passes through.

    ``floor_heights`` are the z coordinates of slabs above the ground
    floor (e.g. ``[3.0]`` for a two-storey house).
    """
    z_low, z_high = min(a.z, b.z), max(a.z, b.z)
    return sum(1 for h in floor_heights if z_low < h < z_high)


def floor_crossing_points(
    a: Point, b: Point, floor_heights: List[float]
) -> List[Tuple[float, float, float]]:
    """Where the segment a->b pierces each floor slab.

    Returns ``(x, y, slab_height)`` triples, one per crossed slab — the
    propagation model uses the pierce position to apply locally weaker
    slab attenuation (ducts, voids, stair openings).
    """
    crossings: List[Tuple[float, float, float]] = []
    if abs(b.z - a.z) < 1e-12:
        return crossings
    z_low, z_high = min(a.z, b.z), max(a.z, b.z)
    for height in floor_heights:
        if z_low < height < z_high:
            t = (height - a.z) / (b.z - a.z)
            crossings.append((a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t, height))
    return crossings


def point_in_rect(point: Point, x0: float, y0: float, x1: float, y1: float) -> bool:
    """2-D containment test (z ignored)."""
    return x0 - 1e-9 <= point.x <= x1 + 1e-9 and y0 - 1e-9 <= point.y <= y1 + 1e-9


def path_points(a: Point, b: Point, count: int) -> List[Point]:
    """``count`` evenly spaced points from a to b inclusive."""
    if count < 2:
        raise ValueError(f"need at least 2 points, got {count!r}")
    return [a.lerp(b, i / (count - 1)) for i in range(count)]


class WallArray:
    """All of a floor plan's walls as numpy columns.

    Answers :func:`segment_crosses_wall` for every wall at once
    (:meth:`crossing_mask`) or for every (wall, receiver) pair of a
    measurement grid (:meth:`crossing_counts_many`).  The arithmetic
    mirrors the scalar reference operation-for-operation — same float64
    products, same division, same ``1e-12`` / ``1e-9`` tolerances — so
    the resulting crossing counts are identical, not merely close.

    Walls are static once a plan is built; the owning
    :class:`~repro.radio.floorplan.FloorPlan` rebuilds the array when a
    wall is added.
    """

    def __init__(
        self,
        walls: Sequence[
            Tuple[Tuple[float, float], Tuple[float, float], float, float,
                  Sequence[Tuple[float, float]]]
        ],
    ) -> None:
        count = len(walls)
        self.count = count
        self.qx = np.array([w[0][0] for w in walls], dtype=np.float64)
        self.qy = np.array([w[0][1] for w in walls], dtype=np.float64)
        ex = np.array([w[1][0] for w in walls], dtype=np.float64)
        ey = np.array([w[1][1] for w in walls], dtype=np.float64)
        # Wall direction vector s = end - start (the scalar path's s).
        self.sx = ex - self.qx
        self.sy = ey - self.qy
        self.z_low = np.array([w[2] for w in walls], dtype=np.float64)
        self.z_high = np.array([w[3] for w in walls], dtype=np.float64)
        # Door openings are rare and ragged; keep them as a sparse list
        # of (wall_index, openings) applied after the dense test.
        self.door_walls: List[Tuple[int, Tuple[Tuple[float, float], ...]]] = [
            (index, tuple(w[4])) for index, w in enumerate(walls) if w[4]
        ]
        # Axis-aligned bounding boxes (for python-side prefilters).
        self.bx0 = np.minimum(self.qx, ex)
        self.bx1 = np.maximum(self.qx, ex)
        self.by0 = np.minimum(self.qy, ey)
        self.by1 = np.maximum(self.qy, ey)

    def crossing_mask(self, a: Point, b: Point) -> np.ndarray:
        """Boolean mask of walls penetrated by the 3-D segment a->b."""
        if self.count == 0:
            return np.zeros(0, dtype=bool)
        rx, ry = b.x - a.x, b.y - a.y
        qpx = self.qx - a.x
        qpy = self.qy - a.y
        denom = rx * self.sy - ry * self.sx
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (qpx * self.sy - qpy * self.sx) / denom
            u = (qpx * ry - qpy * rx) / denom
            z = a.z + (b.z - a.z) * t
        ok = (
            (np.abs(denom) >= 1e-12)
            & (t >= -1e-9) & (t <= 1 + 1e-9)
            & (u >= -1e-9) & (u <= 1 + 1e-9)
            & (z >= self.z_low - 1e-9) & (z <= self.z_high + 1e-9)
        )
        for index, openings in self.door_walls:
            if ok[index]:
                through = u[index]
                for u_start, u_end in openings:
                    if u_start - 1e-9 <= through <= u_end + 1e-9:
                        ok[index] = False
                        break
        return ok

    def crossing_counts_many(self, a: Point, points: Sequence[Point]) -> np.ndarray:
        """Crossing counts from ``a`` to each receiver, as one matrix op.

        Returns an int64 array aligned with ``points``; entry *i* equals
        ``sum(segment_crosses_wall(a, points[i], wall) for wall in walls)``.
        """
        n = len(points)
        if self.count == 0 or n == 0:
            return np.zeros(n, dtype=np.int64)
        bx = np.array([q.x for q in points], dtype=np.float64)
        by = np.array([q.y for q in points], dtype=np.float64)
        bz = np.array([q.z for q in points], dtype=np.float64)
        rx = bx - a.x  # (n,)
        ry = by - a.y
        qpx = (self.qx - a.x)[:, None]  # (m, 1)
        qpy = (self.qy - a.y)[:, None]
        sx = self.sx[:, None]
        sy = self.sy[:, None]
        denom = rx[None, :] * sy - ry[None, :] * sx  # (m, n)
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (qpx * sy - qpy * sx) / denom
            u = (qpx * ry[None, :] - qpy * rx[None, :]) / denom
            z = a.z + (bz[None, :] - a.z) * t
        ok = (
            (np.abs(denom) >= 1e-12)
            & (t >= -1e-9) & (t <= 1 + 1e-9)
            & (u >= -1e-9) & (u <= 1 + 1e-9)
            & (z >= self.z_low[:, None] - 1e-9) & (z <= self.z_high[:, None] + 1e-9)
        )
        for index, openings in self.door_walls:
            row = ok[index]
            if not row.any():
                continue
            through = u[index]
            for u_start, u_end in openings:
                row &= ~((through >= u_start - 1e-9) & (through <= u_end + 1e-9))
            ok[index] = row
        return ok.sum(axis=0, dtype=np.int64)
