"""Bluetooth beacon and scanner.

Smart speakers keep Bluetooth enabled for audio casting (Section II-A);
the guard exploits this by having the owner's phone/watch *scan* for
the speaker's advertisements and report the RSSI.  A scan is not
instantaneous: BLE advertising intervals mean the scanner needs several
hundred milliseconds to catch enough advertisement frames, which is a
visible component of the paper's Figure 7 query-latency distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.faults.plan import FaultInjector
from repro.radio.geometry import Point
from repro.radio.propagation import PropagationModel
from repro.sim.random import bounded_lognormal
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class RssiSample:
    """One reported measurement of a beacon's signal strength."""

    rssi: float
    time: float
    beacon_name: str
    scanner_name: str


class BluetoothBeacon:
    """The speaker side: an advertising Bluetooth radio at a position."""

    def __init__(self, name: str, position: Point) -> None:
        self.name = name
        self.position = position

    def move_to(self, position: Point) -> None:
        """Relocate the beacon."""
        self.position = position


class BluetoothScanner:
    """The phone/watch side: measures a beacon's RSSI.

    ``position_provider`` returns the scanner's current location (the
    carrying person moves); ``body_blocked_provider`` optionally reports
    whether the carrier's body currently shadows the radio path.
    """

    # Scan-time model: BLE scans need to catch advertisement frames.
    SCAN_MEAN = 0.62
    SCAN_SIGMA = 0.50
    SCAN_MIN = 0.25
    SCAN_MAX = 2.8
    # 2.4 GHz coexistence: while the speaker is streaming audio over
    # WiFi, BLE advertisements get squeezed and scans take longer.
    INTERFERENCE_FACTOR = 1.5

    def __init__(
        self,
        name: str,
        model: PropagationModel,
        position_provider: Callable[[], Point],
        rng: np.random.Generator,
        body_blocked_provider: Optional[Callable[[], bool]] = None,
        interference_provider: Optional[Callable[[], bool]] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.name = name
        self.model = model
        self.position_provider = position_provider
        self.body_blocked_provider = body_blocked_provider
        self.interference_provider = interference_provider
        self.faults = faults
        self._rng = rng
        self.scan_count = 0
        self.scans_failed = 0

    def instant_rssi(self, beacon: BluetoothBeacon, time: float) -> RssiSample:
        """A single immediate measurement (used for trace recording,
        where the app samples every 0.2 s)."""
        blocked = bool(self.body_blocked_provider()) if self.body_blocked_provider else False
        rssi = self.model.sample_rssi(
            beacon.position, self.position_provider(), self._rng, body_blocked=blocked
        )
        return RssiSample(rssi=rssi, time=time, beacon_name=beacon.name, scanner_name=self.name)

    # A scan window catches several advertisement frames; the reported
    # RSSI is their average, which is much steadier than one frame.
    FRAMES_PER_SCAN = 3

    def scan(
        self,
        sim: Simulator,
        beacon: BluetoothBeacon,
        callback: Callable[[RssiSample], None],
    ) -> float:
        """Start an asynchronous scan; ``callback(sample)`` on completion.

        Returns the scan duration that was drawn (useful for tests).
        The reported RSSI averages the advertisement frames caught
        during the window, measured at scan-completion position.
        """
        duration = bounded_lognormal(
            self._rng, self.SCAN_MEAN, self.SCAN_SIGMA, self.SCAN_MIN, self.SCAN_MAX
        )
        if self.interference_provider is not None and self.interference_provider():
            duration = min(duration * self.INTERFERENCE_FACTOR, self.SCAN_MAX * 1.5)
        self.scan_count += 1
        if self.faults is not None and self.faults.scan_failed(self.name):
            # The window elapses without catching a single advertisement
            # frame (scheduler starvation, 2.4 GHz collision burst): the
            # app has nothing to report, so the callback never fires.
            self.scans_failed += 1
            return duration

        def finish() -> None:
            # All frames land at the same instant, so the position is
            # constant across the window; body occlusion is re-rolled
            # per frame (it consumes the carrier's rng stream exactly
            # as per-frame instant_rssi calls would).  The frame noise
            # comes from one batched draw instead of per-frame scalar
            # draws — same bitstream, same values.
            position = self.position_provider()
            blocked = [
                bool(self.body_blocked_provider()) if self.body_blocked_provider else False
                for _ in range(self.FRAMES_PER_SCAN)
            ]
            frames = self.model.sample_rssi_batch(
                beacon.position, position, self._rng, blocked
            )
            callback(RssiSample(
                rssi=float(sum(frames) / len(frames)),
                time=sim.now,
                beacon_name=beacon.name,
                scanner_name=self.name,
            ))

        sim.schedule(duration, finish)
        return duration
