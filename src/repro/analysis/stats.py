"""Statistical utilities: bootstrap confidence intervals.

The paper reports point estimates from single 7-day runs; the
reproduction can do better and attach uncertainty.  Used by the table
benchmarks to report 95 % bootstrap intervals over the per-command
outcomes of each cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:
        return f"{self.estimate:.3f} [{self.low:.3f}, {self.high:.3f}]"

    @property
    def width(self) -> float:
        """Interval width (high - low)."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def bootstrap_interval(
    outcomes: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap interval of ``statistic`` over ``outcomes``.

    ``outcomes`` is typically a 0/1 vector (command correct / not).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    values = np.asarray(outcomes, dtype=float)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    rng = np.random.default_rng(seed)
    estimate = float(statistic(values))
    if values.size == 1:
        return ConfidenceInterval(estimate, estimate, estimate, confidence)
    indices = rng.integers(0, values.size, size=(resamples, values.size))
    stats = np.asarray([statistic(values[row]) for row in indices])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return ConfidenceInterval(estimate, float(low), float(high), confidence)


def accuracy_interval(
    correct_flags: Sequence[bool],
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap interval for an accuracy-style proportion."""
    return bootstrap_interval(
        [1.0 if flag else 0.0 for flag in correct_flags],
        confidence=confidence,
        seed=seed,
    )


def proportion_difference_interval(
    a_flags: Sequence[bool],
    b_flags: Sequence[bool],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap interval for P(a) - P(b) (e.g. an ablation's effect).

    Each group is resampled independently; the interval excludes zero
    when the effect is significant at the chosen level.
    """
    a = np.asarray([1.0 if f else 0.0 for f in a_flags])
    b = np.asarray([1.0 if f else 0.0 for f in b_flags])
    if a.size == 0 or b.size == 0:
        raise ValueError("both groups need at least one observation")
    rng = np.random.default_rng(seed)
    estimate = float(a.mean() - b.mean())
    diffs = []
    for _ in range(resamples):
        diffs.append(
            float(a[rng.integers(0, a.size, a.size)].mean()
                  - b[rng.integers(0, b.size, b.size)].mean())
        )
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(diffs, [alpha, 1.0 - alpha])
    return ConfidenceInterval(estimate, float(low), float(high), confidence)
