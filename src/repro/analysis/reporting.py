"""Plain-text table rendering for benchmark output.

Every benchmark regenerates its paper table/figure as text; this keeps
the rendering in one place so the output stays uniform.
"""

from __future__ import annotations

from typing import List, Sequence


def render_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table with a title rule."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {columns}")
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    ruler = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(cells[0][i].ljust(widths[i]) for i in range(columns)))
    lines.append(ruler)
    for row in cells[1:]:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def fmt_percent(value: float, decimals: int = 2) -> str:
    """Format a ratio as a percentage; NaN (an undefined metric, e.g.
    precision with zero positive predictions) renders as an em dash."""
    if value != value:  # NaN-safe without importing math
        return "—"
    return f"{value:.{decimals}%}"


def render_task_timings(timings: Sequence[object],
                        title: str = "Experiment task timings") -> str:
    """Render the engine's per-task timing records as a table.

    ``timings`` is a sequence of :class:`repro.experiments.parallel.TaskTiming`
    (anything with ``label``, ``elapsed`` and ``source`` works).
    """
    rows = [[t.label, f"{t.elapsed:.2f}s", t.source] for t in timings]
    executed = [t.elapsed for t in timings if getattr(t, "source", "run") == "run"]
    summary = (f"{len(rows)} tasks, {len(rows) - len(executed)} cached, "
               f"{sum(executed):.2f}s total task time")
    table = render_table(title, ["task", "elapsed", "source"], rows)
    return f"{table}\n{summary}"


def render_metrics_snapshot(snapshot: dict,
                            title: str = "Guard metrics") -> str:
    """Render a :meth:`repro.obs.metrics.MetricsRegistry.snapshot` dict.

    Counters and gauges share one table; histograms get a second table
    with count/mean/min/max (empty histograms render as dashes).
    """
    rows = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        rows.append([name, "counter", value])
    for name, gauge in sorted(snapshot.get("gauges", {}).items()):
        rows.append([name, "gauge", f"{gauge['value']:g} (high {gauge['high_water']:g})"])
    sections = []
    if rows:
        sections.append(render_table(title, ["metric", "kind", "value"], rows))
    hist_rows = []
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        count = hist["count"]
        if count:
            mean = hist["total"] / count
            hist_rows.append([name, count, f"{mean:.4g}",
                              f"{hist['min']:.4g}", f"{hist['max']:.4g}"])
        else:
            hist_rows.append([name, 0, "—", "—", "—"])
    if hist_rows:
        sections.append(render_table(f"{title}: histograms",
                                     ["histogram", "count", "mean", "min", "max"],
                                     hist_rows))
    if not sections:
        return f"{title}\n{'=' * len(title)}\n(no metrics recorded)"
    return "\n\n".join(sections)


def render_histogram(title: str, values: Sequence[float], bins: Sequence[float],
                     width: int = 40) -> str:
    """ASCII histogram (used for the Figure 7 delay distribution)."""
    if len(bins) < 2:
        raise ValueError("need at least two bin edges")
    counts: List[int] = [0] * (len(bins) - 1)
    for value in values:
        for i in range(len(bins) - 1):
            last = i == len(bins) - 2
            if bins[i] <= value < bins[i + 1] or (last and value == bins[i + 1]):
                counts[i] += 1
                break
    peak = max(counts) if counts else 1
    lines = [title, "=" * len(title)]
    for i, count in enumerate(counts):
        bar = "#" * (0 if peak == 0 else round(width * count / max(peak, 1)))
        lines.append(f"[{bins[i]:5.2f}, {bins[i+1]:5.2f})  {count:>4}  {bar}")
    return "\n".join(lines)
