"""Binary classification metrics in the paper's convention.

The paper treats *malicious* commands as the positive class: recall is
the fraction of attacks blocked, precision the fraction of blocked
commands that really were attacks, and the legitimate-command errors
show up as precision loss (Tables II-IV).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BinaryLabel(enum.Enum):
    """Positive/negative class labels (positive = malicious)."""
    POSITIVE = "positive"  # malicious / command (class of interest)
    NEGATIVE = "negative"


@dataclass
class ConfusionMatrix:
    """Counts of a binary classifier's outcomes."""

    true_positive: int = 0
    false_positive: int = 0
    true_negative: int = 0
    false_negative: int = 0

    def record(self, actual_positive: bool, predicted_positive: bool) -> None:
        """Add one (actual, predicted) outcome to the counts."""
        if actual_positive and predicted_positive:
            self.true_positive += 1
        elif actual_positive and not predicted_positive:
            self.false_negative += 1
        elif predicted_positive:
            self.false_positive += 1
        else:
            self.true_negative += 1

    # -- totals ------------------------------------------------------------
    @property
    def total(self) -> int:
        """Number of recorded outcomes."""
        return (self.true_positive + self.false_positive
                + self.true_negative + self.false_negative)

    @property
    def actual_positive(self) -> int:
        """Ground-truth positives (TP + FN)."""
        return self.true_positive + self.false_negative

    @property
    def actual_negative(self) -> int:
        """Ground-truth negatives (TN + FP)."""
        return self.true_negative + self.false_positive

    # -- rates ------------------------------------------------------------
    @property
    def accuracy(self) -> float:
        """Fraction of outcomes classified correctly."""
        if self.total == 0:
            return float("nan")
        return (self.true_positive + self.true_negative) / self.total

    @property
    def precision(self) -> float:
        """TP / (TP + FP); NaN with no positive predictions."""
        denominator = self.true_positive + self.false_positive
        if denominator == 0:
            return float("nan")
        return self.true_positive / denominator

    @property
    def recall(self) -> float:
        """TP / (TP + FN); NaN with no actual positives."""
        if self.actual_positive == 0:
            return float("nan")
        return self.true_positive / self.actual_positive

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        if p != p or r != r or (p + r) == 0:  # NaN-safe
            return float("nan")
        return 2 * p * r / (p + r)

    def merged(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        """Element-wise sum with another matrix."""
        return ConfusionMatrix(
            self.true_positive + other.true_positive,
            self.false_positive + other.false_positive,
            self.true_negative + other.true_negative,
            self.false_negative + other.false_negative,
        )

    def render(self) -> str:
        """Text rendering in the style of the paper's Table I."""
        lines = [
            "                  Predicted",
            "                  Positive  Negative  Total",
            f"Actual Positive   {self.true_positive:>8}  {self.false_negative:>8}  {self.actual_positive:>5}",
            f"Actual Negative   {self.false_positive:>8}  {self.true_negative:>8}  {self.actual_negative:>5}",
            f"Accuracy: {self.accuracy:.2%}  Precision: {self.precision:.2%}  Recall: {self.recall:.2%}",
        ]
        return "\n".join(lines)
