"""Binary classification metrics in the paper's convention.

The paper treats *malicious* commands as the positive class: recall is
the fraction of attacks blocked, precision the fraction of blocked
commands that really were attacks, and the legitimate-command errors
show up as precision loss (Tables II-IV).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


class BinaryLabel(enum.Enum):
    """Positive/negative class labels (positive = malicious)."""
    POSITIVE = "positive"  # malicious / command (class of interest)
    NEGATIVE = "negative"


@dataclass
class ConfusionMatrix:
    """Counts of a binary classifier's outcomes."""

    true_positive: int = 0
    false_positive: int = 0
    true_negative: int = 0
    false_negative: int = 0

    def record(self, actual_positive: bool, predicted_positive: bool) -> None:
        """Add one (actual, predicted) outcome to the counts."""
        if actual_positive and predicted_positive:
            self.true_positive += 1
        elif actual_positive and not predicted_positive:
            self.false_negative += 1
        elif predicted_positive:
            self.false_positive += 1
        else:
            self.true_negative += 1

    # -- totals ------------------------------------------------------------
    @property
    def total(self) -> int:
        """Number of recorded outcomes."""
        return (self.true_positive + self.false_positive
                + self.true_negative + self.false_negative)

    @property
    def actual_positive(self) -> int:
        """Ground-truth positives (TP + FN)."""
        return self.true_positive + self.false_negative

    @property
    def actual_negative(self) -> int:
        """Ground-truth negatives (TN + FP)."""
        return self.true_negative + self.false_positive

    # -- rates ------------------------------------------------------------
    @property
    def accuracy(self) -> float:
        """Fraction of outcomes classified correctly."""
        if self.total == 0:
            return float("nan")
        return (self.true_positive + self.true_negative) / self.total

    @property
    def precision(self) -> float:
        """TP / (TP + FP); NaN with no positive predictions."""
        denominator = self.true_positive + self.false_positive
        if denominator == 0:
            return float("nan")
        return self.true_positive / denominator

    @property
    def recall(self) -> float:
        """TP / (TP + FN); NaN with no actual positives."""
        if self.actual_positive == 0:
            return float("nan")
        return self.true_positive / self.actual_positive

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        if p != p or r != r or (p + r) == 0:  # NaN-safe
            return float("nan")
        return 2 * p * r / (p + r)

    def merged(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        """Element-wise sum with another matrix."""
        return ConfusionMatrix(
            self.true_positive + other.true_positive,
            self.false_positive + other.false_positive,
            self.true_negative + other.true_negative,
            self.false_negative + other.false_negative,
        )

    def render(self) -> str:
        """Text rendering in the style of the paper's Table I.

        Undefined rates (an empty matrix, or no positive predictions)
        render as an em dash, never as ``nan%``.
        """
        from repro.analysis.reporting import fmt_percent

        lines = [
            "                  Predicted",
            "                  Positive  Negative  Total",
            f"Actual Positive   {self.true_positive:>8}  {self.false_negative:>8}  {self.actual_positive:>5}",
            f"Actual Negative   {self.false_positive:>8}  {self.true_negative:>8}  {self.actual_negative:>5}",
            f"Accuracy: {fmt_percent(self.accuracy)}  "
            f"Precision: {fmt_percent(self.precision)}  "
            f"Recall: {fmt_percent(self.recall)}",
        ]
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Availability under faults (the resilience experiments)
# ---------------------------------------------------------------------------

def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile by linear interpolation; NaN when empty.

    Deliberately dependency-free (no numpy import in the scoring path)
    and deterministic: sorted linear interpolation, the same convention
    numpy calls ``linear``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    data = sorted(float(v) for v in values)
    if not data:
        return float("nan")
    if len(data) == 1:
        return data[0]
    rank = (len(data) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    fraction = rank - low
    return data[low] * (1.0 - fraction) + data[high] * fraction


@dataclass
class ResilienceSummary:
    """How the decision pipeline held up across one run's command queries.

    *Availability* is the fraction of command decisions that resolved
    with live or degraded evidence — anything but a bare TIMEOUT verdict
    falling through to the fail-open/fail-closed policy.
    """

    decisions: int = 0
    live_grants: int = 0  # LEGITIMATE from a live report
    degraded_grants: int = 0  # LEGITIMATE from the proximity cache
    malicious_verdicts: int = 0
    timeouts: int = 0  # TIMEOUT verdicts (policy decided the outcome)
    retries: int = 0  # backoff re-pushes
    offline_requeries: int = 0  # next-best re-queries after a NACK
    offline_events: int = 0  # push NACKs (device unreachable)
    latency_p50: float = float("nan")
    latency_p95: float = float("nan")

    @property
    def availability(self) -> float:
        """Evidence-backed decisions / all decisions (NaN when none)."""
        if self.decisions == 0:
            return float("nan")
        return (self.decisions - self.timeouts) / self.decisions


def summarize_resilience(
    command_events: Sequence[object],
    resilience_counts: Optional[Dict[str, int]] = None,
) -> ResilienceSummary:
    """Fold a guard's command events (and optional typed-event counts,
    from :meth:`repro.core.events.GuardLog.resilience_counts`) into one
    :class:`ResilienceSummary`."""
    from repro.core.decision import Verdict

    counts = resilience_counts or {}
    summary = ResilienceSummary(
        retries=counts.get("push_retry", 0) + counts.get("offline_requery", 0),
        offline_requeries=counts.get("offline_requery", 0),
        offline_events=counts.get("device_offline", 0),
        degraded_grants=counts.get("degraded_grant", 0),
    )
    latencies: List[float] = []
    for event in command_events:
        verdict = getattr(event, "verdict", None)
        if verdict is None:
            continue
        summary.decisions += 1
        if verdict is Verdict.TIMEOUT:
            summary.timeouts += 1
        elif verdict is Verdict.MALICIOUS:
            summary.malicious_verdicts += 1
        elif verdict is Verdict.LEGITIMATE:
            summary.live_grants += 1
        latency = getattr(event, "decision_latency", None)
        if latency is not None:
            latencies.append(latency)
    # Degraded grants surface as LEGITIMATE verdicts; keep live vs
    # degraded apart so availability gains are attributable.
    summary.live_grants = max(0, summary.live_grants - summary.degraded_grants)
    summary.latency_p50 = percentile(latencies, 50.0)
    summary.latency_p95 = percentile(latencies, 95.0)
    return summary
