"""RSSI trace containers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.regression import LinearFit, linear_fit
from repro.radio.bluetooth import RssiSample


@dataclass
class RssiTrace:
    """A timed series of RSSI samples (relative to trace start)."""

    times: List[float]
    values: List[float]
    label: Optional[str] = None  # ground-truth route name, if known

    @staticmethod
    def from_samples(samples: Sequence[RssiSample], label: Optional[str] = None) -> "RssiTrace":
        """Build a trace from scanner samples, re-based to t=0."""
        if not samples:
            raise ValueError("cannot build a trace from zero samples")
        t0 = samples[0].time
        return RssiTrace(
            times=[s.time - t0 for s in samples],
            values=[s.rssi for s in samples],
            label=label,
        )

    def __len__(self) -> int:
        return len(self.times)

    def fit(self) -> LinearFit:
        """Least-squares line fit over the trace."""
        return linear_fit(self.times, self.values)

    @property
    def span(self) -> float:
        """Seconds between the first and last sample."""
        return self.times[-1] - self.times[0] if self.times else 0.0
