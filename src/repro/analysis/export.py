"""CSV export of figure/table data.

Each experiment result can be re-plotted downstream; these writers
produce tidy CSV files alongside the text renderings (the benchmark
suite drops them in ``benchmarks/results/``).
"""

from __future__ import annotations

import csv
import pathlib
from typing import Iterable, Sequence, Union

PathLike = Union[str, pathlib.Path]


def write_csv(path: PathLike, header: Sequence[str], rows: Iterable[Sequence[object]]) -> pathlib.Path:
    """Write one tidy CSV; returns the resolved path."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(header))
        count = 0
        for row in rows:
            if len(row) != len(header):
                raise ValueError(
                    f"row {row!r} has {len(row)} cells, header has {len(header)}"
                )
            writer.writerow(list(row))
            count += 1
    return target


def export_rssi_map(result, path: PathLike) -> pathlib.Path:
    """Figure 8/9 data: one row per numbered location."""
    return write_csv(
        path,
        ["location", "room", "rssi", "threshold", "legitimate", "leak"],
        (
            [r.number, r.room, round(r.rssi, 3), round(result.threshold, 3),
             r.number in result.legitimate_points, r.number in result.leak_points]
            for r in result.readings
        ),
    )


def export_delays(result, path: PathLike) -> pathlib.Path:
    """Figure 7 data: one row per invocation."""
    return write_csv(
        path,
        ["speaker", "delay_seconds"],
        ([result.speaker_kind, round(d, 4)] for d in result.delays),
    )


def export_trace_features(result, path: PathLike) -> pathlib.Path:
    """Figure 10 data: one row per trace (training + held-out)."""

    def rows():
        for split, source in (("training", result.training), ("test", result.testing)):
            for route, features in source.items():
                for f in features:
                    yield [split, route, round(f.slope, 4), round(f.intercept, 4)]

    return write_csv(path, ["split", "route", "slope", "intercept"], rows())


def export_table_cells(table_result, path: PathLike) -> pathlib.Path:
    """Tables II-IV data: one row per cell with the interval."""

    def rows():
        for cell in table_result.cells:
            interval = cell.accuracy_interval()
            yield [
                cell.scenario_name,
                cell.legit_correct, cell.legit_total,
                cell.malicious_correct, cell.malicious_total,
                round(cell.matrix.accuracy, 4),
                round(cell.matrix.precision, 4),
                round(cell.matrix.recall, 4),
                round(interval.low, 4), round(interval.high, 4),
            ]

    return write_csv(
        path,
        ["case", "legit_correct", "legit_total", "malicious_correct",
         "malicious_total", "accuracy", "precision", "recall",
         "accuracy_ci_low", "accuracy_ci_high"],
        rows(),
    )
