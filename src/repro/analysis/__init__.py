"""Analysis utilities: metrics, regression, traces, report rendering."""

from repro.analysis.metrics import BinaryLabel, ConfusionMatrix
from repro.analysis.regression import LinearFit, linear_fit
from repro.analysis.export import (
    export_delays,
    export_rssi_map,
    export_table_cells,
    export_trace_features,
    write_csv,
)
from repro.analysis.reporting import render_histogram, render_table
from repro.analysis.stats import (
    ConfidenceInterval,
    accuracy_interval,
    bootstrap_interval,
    proportion_difference_interval,
)
from repro.analysis.traces import RssiTrace

__all__ = [
    "BinaryLabel",
    "ConfidenceInterval",
    "ConfusionMatrix",
    "LinearFit",
    "RssiTrace",
    "accuracy_interval",
    "bootstrap_interval",
    "export_delays",
    "export_rssi_map",
    "export_table_cells",
    "export_trace_features",
    "linear_fit",
    "proportion_difference_interval",
    "render_histogram",
    "render_table",
    "write_csv",
]
