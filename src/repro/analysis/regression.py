"""Least-squares line fitting for RSSI traces.

The floor-level method (paper Section V-B2) converts each 40-sample
RSSI trace into the (slope, y-intercept) of its fitted line; those two
features drive the Up/Down/route classifier of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """Result of a least-squares line fit."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at ``x``."""
        return self.slope * x + self.intercept


def linear_fit(times: Sequence[float], values: Sequence[float]) -> LinearFit:
    """Fit ``values ~ slope * times + intercept``.

    Raises :class:`ValueError` on fewer than two points or a degenerate
    (constant-time) input.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape:
        raise ValueError(f"length mismatch: {t.shape} vs {v.shape}")
    if t.size < 2:
        raise ValueError("need at least two samples to fit a line")
    t_var = float(np.var(t))
    if t_var == 0.0:
        raise ValueError("all samples share one timestamp; cannot fit")
    slope = float(np.cov(t, v, bias=True)[0, 1] / t_var)
    intercept = float(np.mean(v) - slope * np.mean(t))
    residuals = v - (slope * t + intercept)
    total = float(np.sum((v - np.mean(v)) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - float(np.sum(residuals**2)) / total
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)
