"""VoiceGuard configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass
class VoiceGuardConfig:
    """Tunable parameters of the guard.

    Defaults follow the paper: a spike after ~2.5 s of (non-heartbeat)
    silence opens a new recognition window; classification needs at
    most seven packets; a held command is dropped if no device proves
    proximity before ``decision_timeout``.
    """

    # Traffic recognition.
    idle_gap: float = 2.5  # seconds of app-data silence that ends a spike
    classification_timeout: float = 0.6  # give up waiting for more packets
    classification_max_packets: int = 7
    heartbeat_len: int = 41  # ignored for spike detection

    # Window recognizer: "signature" (the paper's matcher, default) or a
    # trainable kind from repro.core.recognizers ("knn" / "mlp"), trained
    # per speaker during the scenario build.  ``recognizer_train_morph``
    # names a repro.attacks.morphing adversary whose reshaping is applied
    # to the training windows (adversarial retraining); None trains clean.
    recognizer: str = "signature"
    recognizer_train_windows: int = 30  # training windows per class
    recognizer_train_morph: Optional[str] = None

    # Decision.
    decision_timeout: float = 5.0  # no reply from any device -> timeout verdict
    fail_open: bool = False  # on timeout: True = release, False = drop
    rssi_margin: float = 0.0  # extra slack subtracted from thresholds

    # Decision resilience (all off by default: one push per device and a
    # flat timeout, the paper's original behaviour).
    push_retries: int = 0  # extra push attempts per silent device
    retry_base: float = 1.5  # first backoff delay; doubles per attempt...
    retry_cap: float = 6.0  # ...but never exceeds this
    proximity_cache_ttl: float = 0.0  # degraded mode: trust proximity this recent (0 = off)

    # Floor tracking.
    floor_tracking: bool = True  # only effective on multi-floor testbeds

    # Safety bound: never hold a flow longer than this, whatever happens.
    max_hold: float = 25.0

    # Concurrency (all inert by default: a single command in flight
    # behaves byte-identically to the pre-concurrency pipeline).
    max_concurrent_queries: int = 0  # in-flight RSSI queries (0 = unlimited)
    decision_batching: bool = False  # one report may settle several commands
    held_byte_budget: int = 0  # global cap on held payload bytes (0 = unlimited)
    # Overflow policy when the budget is exhausted: True = forward the
    # victim window unchecked, False = drop it; None follows fail_open.
    overflow_fail_open: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.idle_gap <= 0:
            raise ConfigError(f"idle_gap must be positive, got {self.idle_gap!r}")
        if self.classification_timeout <= 0:
            raise ConfigError("classification_timeout must be positive")
        if self.classification_max_packets < 2:
            raise ConfigError("classification needs at least 2 packets")
        # Validation is syntactic only (the recognizer registry lives a
        # layer above config); unknown names fail at scenario build.
        if not self.recognizer or not isinstance(self.recognizer, str):
            raise ConfigError(
                f"recognizer must be a non-empty name, got {self.recognizer!r}")
        if self.recognizer_train_windows < 1:
            raise ConfigError(
                "recognizer_train_windows must be positive, got "
                f"{self.recognizer_train_windows!r}")
        if self.recognizer_train_morph is not None and self.recognizer == "signature":
            raise ConfigError(
                "recognizer_train_morph requires a trainable recognizer")
        if self.decision_timeout <= 0:
            raise ConfigError("decision_timeout must be positive")
        if self.push_retries < 0:
            raise ConfigError(f"push_retries must be >= 0, got {self.push_retries!r}")
        if self.retry_base <= 0:
            raise ConfigError(f"retry_base must be positive, got {self.retry_base!r}")
        if self.retry_cap < self.retry_base:
            raise ConfigError("retry_cap must be at least retry_base")
        if self.proximity_cache_ttl < 0:
            raise ConfigError(
                f"proximity_cache_ttl must be >= 0, got {self.proximity_cache_ttl!r}"
            )
        if self.max_hold < self.decision_timeout:
            raise ConfigError("max_hold must be at least decision_timeout")
        if self.max_concurrent_queries < 0:
            raise ConfigError(
                f"max_concurrent_queries must be >= 0, got {self.max_concurrent_queries!r}"
            )
        if self.held_byte_budget < 0:
            raise ConfigError(
                f"held_byte_budget must be >= 0, got {self.held_byte_budget!r}"
            )

    @property
    def overflow_releases(self) -> bool:
        """Effective overflow policy (``overflow_fail_open`` or ``fail_open``)."""
        if self.overflow_fail_open is not None:
            return self.overflow_fail_open
        return self.fail_open
