"""Learned window recognizers (ROADMAP: learned traffic recognition).

The paper's recognizer is a hand-built signature matcher over packet
lengths (:mod:`repro.core.recognition`).  *Fingerprinting Encrypted
Voice Traffic on Smart Speakers with Deep Learning* (PAPERS.md) shows
that trained classifiers over length/timing sequences dominate such
signatures — and survive the padding/morphing attacks that defeat them
(*Deep Adversarial Learning on Google Home devices*).  This module
provides that escalation without heavy ML dependencies:

* :func:`extract_features` — a fixed-dimension float64 feature vector
  per spike window.  The length aggregates are computed from integer
  accumulations (counts, sums, bucket tallies), so they are *bit-exactly*
  invariant under any permutation of the window's lengths — the property
  ``tests/test_recognition_learning.py`` pins with Hypothesis.
* :class:`KnnRecognizer` / :class:`MlpRecognizer` — numpy-only trainable
  recognizers with deterministic training (k-NN with stable tie-breaks;
  a tiny full-batch-gradient-descent MLP whose init draws from a named
  :class:`~repro.sim.random.RngHub` stream).
* :class:`SignatureRecognizer` — the built-in matcher wrapped in the
  same pluggable interface, so experiments sweep all three by name via
  the :data:`RECOGNIZERS` registry.
* :func:`train_window_recognizer` — per-speaker training from corpus
  traces, memoized per world bucket exactly like ``threshold.py``'s
  calibration memo so :class:`~repro.experiments.pool.ScenarioPool`
  warm-starts stay byte-identical (a memo-warm build never touches the
  training RNG streams; ``RngHub.reseed`` makes that unobservable).

Online semantics: a learned recognizer decides only when the spike
ends (every record of a pending window stays held until the
``classification_timeout`` fires), unlike the signature matcher's
seven-packet incremental decision.  That is the latency price of
length-agnostic recognition, and it is paid only when a learned
recognizer is installed — the default signature path is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.events import TrafficClass
from repro.core.registry import PluginRegistry
from repro.errors import WorkloadError
from repro.sim.random import RngHub

# ---------------------------------------------------------------------------
# Feature extraction
# ---------------------------------------------------------------------------

# Length-bucket edges (bytes): control chatter, small streaming records,
# mid-size phase records, large records, near-MTU audio upload.
LENGTH_BUCKETS = (100, 300, 700, 1200)

# First-k packet lengths appended verbatim (the signature matcher's view).
HEAD_LEN = 5

FEATURE_NAMES: Tuple[str, ...] = (
    # -- order-invariant length aggregates (integer accumulations) --
    "count",
    "total_kb",
    "mean_len",
    "std_len",
    "min_len",
    "max_len",
    "frac_lt_100",
    "frac_100_300",
    "frac_300_700",
    "frac_700_1200",
    "frac_ge_1200",
    # -- timing (functions of the offsets alone) --
    "duration",
    "mean_gap",
    "max_gap",
    "rate",
    # -- stream-order head --
    "head_0",
    "head_1",
    "head_2",
    "head_3",
    "head_4",
)

FEATURE_DIM = len(FEATURE_NAMES)

# Features at indices [0, PERMUTATION_INVARIANT) are bit-exactly
# unchanged by any permutation of the window's lengths (offsets fixed):
# the aggregates reduce over integer sums/counts and the timing block
# never reads a length.  Only the head block is order-sensitive.
PERMUTATION_INVARIANT = FEATURE_DIM - HEAD_LEN


def extract_features(lengths: Sequence[int],
                     offsets: Sequence[float]) -> np.ndarray:
    """One window's ``(FEATURE_DIM,)`` float64 feature vector.

    ``lengths`` are the window's application-data record lengths in
    arrival order; ``offsets`` the matching arrival times (seconds,
    any origin — only differences matter).  Aggregates are accumulated
    in exact integer arithmetic before the final float conversion, so
    reordering ``lengths`` cannot perturb them even in the last bit.
    """
    n = len(lengths)
    if n == 0:
        raise WorkloadError("cannot featurize an empty window")
    if len(offsets) != n:
        raise WorkloadError(
            f"lengths/offsets mismatch: {n} vs {len(offsets)}")
    total = 0
    total_sq = 0
    lo = hi = int(lengths[0])
    buckets = [0] * (len(LENGTH_BUCKETS) + 1)
    for raw in lengths:
        value = int(raw)
        total += value
        total_sq += value * value
        if value < lo:
            lo = value
        if value > hi:
            hi = value
        for slot, edge in enumerate(LENGTH_BUCKETS):
            if value < edge:
                buckets[slot] += 1
                break
        else:
            buckets[-1] += 1
    mean = total / n
    variance = max(total_sq / n - mean * mean, 0.0)

    duration = float(offsets[-1]) - float(offsets[0])
    if duration < 0.0:
        raise WorkloadError("window offsets must be non-decreasing")
    if n > 1:
        max_gap = max(float(offsets[i + 1]) - float(offsets[i])
                      for i in range(n - 1))
        mean_gap = duration / (n - 1)
    else:
        max_gap = 0.0
        mean_gap = 0.0
    rate = n / (duration + 1e-3)

    features = np.empty(FEATURE_DIM, dtype=np.float64)
    features[0] = float(n)
    features[1] = total / 1000.0
    features[2] = mean
    features[3] = float(np.sqrt(variance))
    features[4] = float(lo)
    features[5] = float(hi)
    for slot in range(len(LENGTH_BUCKETS) + 1):
        features[6 + slot] = buckets[slot] / n
    features[11] = duration
    features[12] = mean_gap
    features[13] = max_gap
    features[14] = rate
    for slot in range(HEAD_LEN):
        features[15 + slot] = float(lengths[slot]) if slot < n else 0.0
    return features


# ---------------------------------------------------------------------------
# Training samples
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WindowSample:
    """One labelled spike window (lengths + offsets + ground truth)."""

    lengths: Tuple[int, ...]
    offsets: Tuple[float, ...]
    label: str  # "command" | "response" | "noise"

    @property
    def is_command(self) -> bool:
        """Whether the window carries a voice command."""
        return self.label == "command"


def _sample_from_records(records, label: str) -> WindowSample:
    return WindowSample(
        lengths=tuple(int(r.length) for r in records),
        offsets=tuple(float(r.offset) for r in records),
        label=label,
    )


def synth_windows(speaker_kind: str, rng: np.random.Generator,
                  per_class: int) -> List[WindowSample]:
    """``per_class`` command + ``per_class`` non-command windows.

    Windows come from the same traffic models the simulated speakers
    emit (:mod:`repro.speakers.interaction`), with command durations
    sampled from the paper's corpora — the offline equivalent of
    capturing labelled traces at the guard's tap.  Echo negatives are
    phase-2 response spikes; Google negatives are synthetic background
    drizzle (the Mini's command connections are on-demand, so its real
    negatives are non-speech noise, not responses).
    """
    from repro.audio.commands import alexa_corpus, google_corpus
    from repro.audio.speech import full_utterance_duration
    from repro.speakers.interaction import EchoTrafficModel, GoogleTrafficModel

    samples: List[WindowSample] = []
    if speaker_kind == "echo":
        corpus = alexa_corpus()
        model = EchoTrafficModel(rng, anomalous_rate=0.0)
        for _ in range(per_class):
            command = corpus.sample(rng)
            duration = full_utterance_duration(command, rng)
            script = model.command_phase(duration)
            samples.append(_sample_from_records(script.records, "command"))
        for _ in range(per_class):
            samples.append(_sample_from_records(model.response_spike(),
                                                "response"))
    elif speaker_kind == "google":
        corpus = google_corpus()
        model = GoogleTrafficModel(rng)
        for _ in range(per_class):
            command = corpus.sample(rng)
            duration = full_utterance_duration(command, rng)
            samples.append(_sample_from_records(
                model.command_upload(duration), "command"))
        for _ in range(per_class):
            samples.append(_noise_window(rng))
    else:
        raise WorkloadError(f"unknown speaker kind {speaker_kind!r}")
    return samples


def _noise_window(rng: np.random.Generator) -> WindowSample:
    """Background drizzle: a few small records over a long, slow span."""
    count = int(rng.integers(3, 9))
    lengths = []
    offsets = []
    offset = 0.0
    for _ in range(count):
        lengths.append(int(rng.integers(60, 220)))
        offsets.append(offset)
        offset += float(rng.uniform(0.3, 0.9))
    return WindowSample(lengths=tuple(lengths), offsets=tuple(offsets),
                        label="noise")


def morph_sample(sample: WindowSample, morpher,
                 rng: np.random.Generator) -> WindowSample:
    """Apply a traffic morpher's offline reshaping to one window.

    ``morpher`` is duck-typed (``morph_window(records, rng)`` over
    ``(offset, length)`` pairs) so this module never imports the
    attacker package — see :mod:`repro.attacks.morphing`.
    """
    records = list(zip(sample.offsets, sample.lengths))
    morphed = morpher.morph_window(records, rng)
    return WindowSample(
        lengths=tuple(int(length) for _, length in morphed),
        offsets=tuple(float(offset) for offset, _ in morphed),
        label=sample.label,
    )


# ---------------------------------------------------------------------------
# Recognizer interface
# ---------------------------------------------------------------------------

class WindowRecognizer:
    """Pluggable per-speaker window classifier.

    The online contract mirrors the built-in matcher's two call sites
    in :class:`~repro.core.recognition.TrafficRecognition`:

    * :meth:`observe` runs after every record of a pending window and
      may decide early (return a class) or abstain (return ``None``);
    * :meth:`finalize` runs when the spike has ended (classification
      timeout or idle-gap expiry) and must decide.
    """

    name = "recognizer"
    trainable = False

    def __init__(self, speaker_kind: str) -> None:
        if speaker_kind not in ("echo", "google"):
            raise WorkloadError(f"unknown speaker kind {speaker_kind!r}")
        self.speaker_kind = speaker_kind

    def fit(self, samples: Sequence[WindowSample],
            init_rng: np.random.Generator) -> "WindowRecognizer":
        """Train from labelled windows (no-op for untrainable kinds)."""
        return self

    def observe(self, lengths: Sequence[int],
                offsets: Sequence[float]) -> Optional[TrafficClass]:
        """Incremental decision while the window is still filling."""
        return None

    def finalize(self, lengths: Sequence[int],
                 offsets: Sequence[float]) -> TrafficClass:
        """Mandatory decision once the spike has ended."""
        raise NotImplementedError

    def predict_window(self, lengths: Sequence[int],
                       offsets: Sequence[float]) -> TrafficClass:
        """Offline replay of the online contract over a whole window."""
        for end in range(1, len(lengths) + 1):
            decided = self.observe(lengths[:end], offsets[:end])
            if decided is not None:
                return decided
        return self.finalize(lengths, offsets)


class SignatureRecognizer(WindowRecognizer):
    """The paper's hand-built matcher behind the pluggable interface."""

    name = "signature"

    def observe(self, lengths: Sequence[int],
                offsets: Sequence[float]) -> Optional[TrafficClass]:
        if self.speaker_kind == "google":
            return TrafficClass.COMMAND
        from repro.core.recognition import classify_echo_lengths

        return classify_echo_lengths(list(lengths))

    def finalize(self, lengths: Sequence[int],
                 offsets: Sequence[float]) -> TrafficClass:
        if self.speaker_kind == "google":
            return TrafficClass.COMMAND
        from repro.core.recognition import finalize_echo_lengths

        return finalize_echo_lengths(list(lengths))


class LearnedRecognizer(WindowRecognizer):
    """Shared plumbing for feature-space recognizers.

    Predictions are binary (command vs not); the non-command class maps
    to RESPONSE on the Echo (its negatives are response spikes) and to
    UNKNOWN on the Google Mini (its negatives are background noise).
    """

    trainable = True

    def __init__(self, speaker_kind: str) -> None:
        super().__init__(speaker_kind)
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._mean is not None

    def _standardize_fit(self, matrix: np.ndarray) -> np.ndarray:
        self._mean = matrix.mean(axis=0)
        scale = matrix.std(axis=0)
        scale[scale < 1e-9] = 1.0
        self._scale = scale
        return (matrix - self._mean) / self._scale

    def _standardize(self, features: np.ndarray) -> np.ndarray:
        if self._mean is None or self._scale is None:
            raise WorkloadError(f"{self.name} recognizer is not fitted")
        return (features - self._mean) / self._scale

    def _feature_matrix(
        self, samples: Sequence[WindowSample]
    ) -> Tuple[np.ndarray, np.ndarray]:
        if not samples:
            raise WorkloadError("cannot fit a recognizer on zero windows")
        matrix = np.stack([extract_features(s.lengths, s.offsets)
                           for s in samples])
        labels = np.array([1 if s.is_command else 0 for s in samples],
                          dtype=np.int64)
        return matrix, labels

    def _negative_class(self) -> TrafficClass:
        if self.speaker_kind == "echo":
            return TrafficClass.RESPONSE
        return TrafficClass.UNKNOWN

    def _predict_is_command(self, features: np.ndarray) -> bool:
        raise NotImplementedError

    def finalize(self, lengths: Sequence[int],
                 offsets: Sequence[float]) -> TrafficClass:
        features = extract_features(lengths, offsets)
        if self._predict_is_command(features):
            return TrafficClass.COMMAND
        return self._negative_class()

    def predict_window(self, lengths: Sequence[int],
                       offsets: Sequence[float]) -> TrafficClass:
        # Learned recognizers never decide early; skip the per-record
        # abstention loop when replaying windows offline.
        return self.finalize(lengths, offsets)


class KnnRecognizer(LearnedRecognizer):
    """k-nearest-neighbour vote in standardized feature space.

    Fully deterministic: Euclidean distances in float64, neighbours
    ordered by ``(distance, training index)`` so ties break identically
    everywhere, odd ``k`` so the vote itself cannot tie.
    """

    name = "knn"

    def __init__(self, speaker_kind: str, k: int = 5) -> None:
        super().__init__(speaker_kind)
        if k < 1 or k % 2 == 0:
            raise WorkloadError(f"k must be odd and positive, got {k!r}")
        self.k = k
        self._train: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None

    def fit(self, samples: Sequence[WindowSample],
            init_rng: np.random.Generator) -> "KnnRecognizer":
        matrix, labels = self._feature_matrix(samples)
        self._train = self._standardize_fit(matrix)
        self._labels = labels
        return self

    def _predict_is_command(self, features: np.ndarray) -> bool:
        if self._train is None or self._labels is None:
            raise WorkloadError("knn recognizer is not fitted")
        deltas = self._train - self._standardize(features)
        distances = np.sqrt(np.sum(deltas * deltas, axis=1))
        order = np.lexsort((np.arange(len(distances)), distances))
        k = min(self.k, len(distances))
        votes = int(self._labels[order[:k]].sum())
        return 2 * votes > k


class MlpRecognizer(LearnedRecognizer):
    """One-hidden-layer logistic MLP, full-batch gradient descent.

    Small enough to train in milliseconds, deterministic end to end:
    weights initialize from the caller's named RNG stream and every
    update is a fixed sequence of float64 matrix operations, so the
    same seed yields bit-identical weights on any worker.
    """

    name = "mlp"

    def __init__(self, speaker_kind: str, hidden: int = 16,
                 epochs: int = 300, learning_rate: float = 0.2) -> None:
        super().__init__(speaker_kind)
        if hidden < 1:
            raise WorkloadError(f"hidden size must be positive, got {hidden!r}")
        if epochs < 1:
            raise WorkloadError(f"epochs must be positive, got {epochs!r}")
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.w1: Optional[np.ndarray] = None
        self.b1: Optional[np.ndarray] = None
        self.w2: Optional[np.ndarray] = None
        self.b2 = 0.0

    def fit(self, samples: Sequence[WindowSample],
            init_rng: np.random.Generator) -> "MlpRecognizer":
        matrix, labels = self._feature_matrix(samples)
        x = self._standardize_fit(matrix)
        y = labels.astype(np.float64)
        n, dim = x.shape
        init_scale = 1.0 / np.sqrt(dim)
        w1 = init_rng.standard_normal((dim, self.hidden)) * init_scale
        b1 = np.zeros(self.hidden, dtype=np.float64)
        w2 = init_rng.standard_normal(self.hidden) / np.sqrt(self.hidden)
        b2 = 0.0
        lr = self.learning_rate
        for _ in range(self.epochs):
            hidden = np.tanh(x @ w1 + b1)
            logits = hidden @ w2 + b2
            prob = 1.0 / (1.0 + np.exp(-logits))
            grad_logits = (prob - y) / n
            grad_w2 = hidden.T @ grad_logits
            grad_b2 = float(grad_logits.sum())
            grad_hidden = np.outer(grad_logits, w2) * (1.0 - hidden * hidden)
            grad_w1 = x.T @ grad_hidden
            grad_b1 = grad_hidden.sum(axis=0)
            w1 -= lr * grad_w1
            b1 -= lr * grad_b1
            w2 -= lr * grad_w2
            b2 -= lr * grad_b2
        self.w1, self.b1, self.w2, self.b2 = w1, b1, w2, b2
        return self

    def decision_value(self, features: np.ndarray) -> float:
        """The pre-sigmoid logit for one standardized-input window."""
        if self.w1 is None or self.b1 is None or self.w2 is None:
            raise WorkloadError("mlp recognizer is not fitted")
        hidden = np.tanh(self._standardize(features) @ self.w1 + self.b1)
        return float(hidden @ self.w2 + self.b2)

    def _predict_is_command(self, features: np.ndarray) -> bool:
        return self.decision_value(features) >= 0.0

    def weight_bytes(self) -> bytes:
        """Every trained parameter, bit-exact (determinism assertions)."""
        if self.w1 is None or self.b1 is None or self.w2 is None:
            raise WorkloadError("mlp recognizer is not fitted")
        assert self._mean is not None and self._scale is not None
        parts = [self.w1, self.b1, self.w2,
                 np.array([self.b2]), self._mean, self._scale]
        return b"".join(np.ascontiguousarray(p).tobytes() for p in parts)


# ---------------------------------------------------------------------------
# Registry + memoized training
# ---------------------------------------------------------------------------

RECOGNIZERS = PluginRegistry("window recognizer")
RECOGNIZERS.register("signature", SignatureRecognizer)
RECOGNIZERS.register("knn", KnnRecognizer)
RECOGNIZERS.register("mlp", MlpRecognizer)


# Keyed like threshold.py's calibration memo: per world bucket plus the
# training hyper-identity.  Trained recognizers are immutable after fit
# (predict-only), so replaying the stored object is safe; a memo-warm
# build never creates the training streams, and the pool's per-home
# ``RngHub.reseed`` makes warm and cold builds indistinguishable.
_RECOGNIZER_MEMO: Dict[tuple, WindowRecognizer] = {}


def clear_recognizer_memo() -> None:
    """Drop memoized recognizer training (tests / cold benchmarks)."""
    _RECOGNIZER_MEMO.clear()


def train_window_recognizer(
    kind: str,
    speaker_kind: str,
    hub: RngHub,
    train_per_class: int = 30,
    morpher=None,
    memo_bucket: Optional[tuple] = None,
) -> WindowRecognizer:
    """Build and train one recognizer from the hub's named streams.

    ``morpher`` (optional, duck-typed) reshapes the training windows —
    adversarial retraining, the defender's answer to traffic morphing.
    Training data, morph draws, and weight init each consume their own
    stream (``recognition.train.data`` / ``.morph`` / ``.init``), so
    installing a recognizer never perturbs any other component's
    randomness, and a memo hit draws from none of them.
    """
    if train_per_class < 1:
        raise WorkloadError(
            f"train_per_class must be positive, got {train_per_class!r}")
    morph_name = getattr(morpher, "name", None) if morpher is not None else None
    memo_key = None
    if memo_bucket is not None:
        memo_key = (memo_bucket, kind, speaker_kind, train_per_class,
                    morph_name)
        hit = _RECOGNIZER_MEMO.get(memo_key)
        if hit is not None:
            return hit
    recognizer = RECOGNIZERS.create(kind, speaker_kind)
    assert isinstance(recognizer, WindowRecognizer)
    if recognizer.trainable:
        samples = synth_windows(speaker_kind,
                                hub.stream("recognition.train.data"),
                                train_per_class)
        if morpher is not None:
            morph_rng = hub.stream("recognition.train.morph")
            samples = [morph_sample(s, morpher, morph_rng) for s in samples]
        recognizer.fit(samples, hub.stream("recognition.train.init"))
    if memo_key is not None:
        _RECOGNIZER_MEMO[memo_key] = recognizer
    return recognizer
