"""The VoiceGuard façade: assembles and wires every sub-module.

Typical usage (see ``examples/quickstart.py`` for a full scenario):

.. code-block:: python

    guard = VoiceGuard(env, network, guard_ip)
    guard.protect(echo_dot, SpeakerProfile.ECHO)
    guard.register_device(phone, threshold=-8.0)
    guard.enable_floor_tracking(motion_sensor, trained_classifier)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import VoiceGuardConfig
from repro.core.decision import DecisionCoordinator, DecisionModule, RssiDecisionMethod
from repro.core.events import CommandEvent, GuardLog
from repro.core.floor import FloorLevelTracker, TraceClassifier
from repro.core.handler import TrafficHandler
from repro.core.recognition import SpeakerProfile, TrafficRecognition
from repro.core.registry import DeviceRegistry
from repro.home.devices import MobileDevice, MotionSensor
from repro.home.environment import HomeEnvironment
from repro.net.addresses import IPv4Address
from repro.net.link import Network
from repro.net.proxy import HoldBudget, TransparentProxy, UdpForwarder
from repro.speakers.base import SmartSpeaker


class VoiceGuard:
    """The deployed guard: proxy + recognizer + handler + decision."""

    def __init__(
        self,
        env: HomeEnvironment,
        network: Network,
        guard_ip: IPv4Address,
        config: Optional[VoiceGuardConfig] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.config = config or VoiceGuardConfig()
        self.log = GuardLog()
        self.obs = env.obs

        # Global byte budget over every hold queue: with N speakers'
        # commands in flight the guard parks records for all of them at
        # once, and memory must stay bounded.  The default (0 bytes =
        # unlimited) never refuses a hold, keeping single-command runs
        # byte-identical to the pre-concurrency pipeline.
        self.hold_budget = HoldBudget(
            limit_bytes=self.config.held_byte_budget,
            fail_open=self.config.overflow_releases,
            obs=self.obs,
        )
        self.proxy = TransparentProxy("voiceguard", guard_ip, obs=self.obs,
                                      hold_budget=self.hold_budget)
        network.attach(self.proxy)
        self.udp_forwarder: Optional[UdpForwarder] = None

        self.registry = DeviceRegistry()
        self.floor_tracker: Optional[FloorLevelTracker] = None

        self.recognition = TrafficRecognition(env.sim, self.config, self.log,
                                              obs=self.obs)
        # The retry jitter draws from its own named stream: enabling
        # retries never perturbs any other component's randomness.
        self.rssi_method = RssiDecisionMethod(
            sim=env.sim,
            push=env.push,
            registry=self.registry,
            beacon=env.speaker_beacon,
            timeout=self.config.decision_timeout,
            rssi_margin=self.config.rssi_margin,
            floor_check=self._floor_ok,
            push_retries=self.config.push_retries,
            retry_base=self.config.retry_base,
            retry_cap=self.config.retry_cap,
            proximity_cache_ttl=self.config.proximity_cache_ttl,
            retry_rng=env.rng.stream("decision.retry"),
            on_event=self.log.record_resilience,
            obs=self.obs,
        )
        # The coordinator schedules and batches concurrent queries; with
        # the default knobs (no slot limit, no batching) it dispatches
        # every query immediately — a pure pass-through.
        self.coordinator = DecisionCoordinator(
            self.rssi_method,
            sim=env.sim,
            max_inflight=self.config.max_concurrent_queries,
            batching=self.config.decision_batching,
            obs=self.obs,
        )
        self.decision = DecisionModule(self.coordinator)
        self.handler = TrafficHandler(
            sim=env.sim,
            config=self.config,
            proxy=self.proxy,
            udp_forwarder=None,
            decision=self.decision,
            obs=self.obs,
        )

        # Wiring: tapped packets -> recognizer -> handler -> proxy queues.
        self.proxy.record_policy = self.recognition.observe
        self.proxy.on_hold_overflow = self.handler.on_hold_overflow
        self.proxy.add_snooper(self.recognition.observe_snoop)
        self.recognition.on_classified = self.handler.on_window_classified
        # Closed flows release their recognizer state so week-long
        # campaigns don't accumulate one _FlowState per connection.
        self.proxy.on_flow_closed = self.recognition.on_flow_closed

        self._protected: Dict[IPv4Address, SpeakerProfile] = {}

    # -- deployment ---------------------------------------------------------
    def protect(self, speaker: SmartSpeaker, profile: SpeakerProfile) -> None:
        """Interpose on ``speaker``'s traffic and recognize its grammar."""
        self.network.install_tap(speaker.ip, self.proxy)
        self.recognition.add_speaker(speaker.ip, profile)
        self._protected[speaker.ip] = profile
        if profile is SpeakerProfile.GOOGLE:
            if self.udp_forwarder is None:
                self.udp_forwarder = UdpForwarder(self.proxy, speaker.ip)
                self.handler.udp_forwarder = self.udp_forwarder
            else:
                self.udp_forwarder.add_covered(speaker.ip)

    def set_window_recognizer(self, profile: SpeakerProfile,
                              recognizer) -> None:
        """Install a pluggable window recognizer for one profile.

        See :mod:`repro.core.recognizers`; the scenario builder calls
        this when ``config.recognizer`` selects a trainable kind.
        """
        self.recognition.set_window_recognizer(profile, recognizer)

    def register_device(
        self,
        device: MobileDevice,
        threshold: float,
        approved_by_owner: bool = True,
        initial_floor: Optional[int] = None,
    ) -> None:
        """Enroll a legitimate user's phone/watch with its threshold.

        ``initial_floor`` seeds the floor tracker for devices enrolled
        *after* :meth:`enable_floor_tracking`; without it such a device
        would be assumed to start on the speaker's floor, unlike devices
        enrolled before tracking was enabled.
        """
        self.registry.register(device, threshold, approved_by_owner=approved_by_owner)
        if self.floor_tracker is not None:
            self.floor_tracker.track(device, initial_floor=initial_floor)

    def enable_floor_tracking(
        self,
        sensor: MotionSensor,
        classifier: TraceClassifier,
        initial_floors: Optional[Dict[str, int]] = None,
    ) -> FloorLevelTracker:
        """Attach the stair motion sensor and trace classifier."""
        tracker = FloorLevelTracker(
            sim=self.env.sim,
            beacon=self.env.speaker_beacon,
            classifier=classifier,
            speaker_floor=self.env.speaker_floor,
            floor_count=self.env.testbed.plan.floor_count,
            faults=self.env.faults,
            obs=self.obs,
        )
        for entry in self.registry.entries():
            floor = (initial_floors or {}).get(entry.name)
            tracker.track(entry.device, initial_floor=floor)
        sensor.on_motion = tracker.on_motion
        self.floor_tracker = tracker
        return tracker

    def _floor_ok(self, device_name: str) -> bool:
        if not self.config.floor_tracking or self.floor_tracker is None:
            return True
        return self.floor_tracker.floor_ok(device_name)

    # -- reporting ------------------------------------------------------------
    @property
    def events(self) -> List[CommandEvent]:
        """A copy of every logged window event."""
        return list(self.log.events)

    def command_events(self) -> List[CommandEvent]:
        """Logged events classified as commands."""
        return self.log.commands()

    def summary(self) -> Dict[str, float]:
        """Counters: windows, commands, released, blocked, plus rates.

        The rates are 0.0 (not NaN) on a run that saw no commands, so
        downstream reporting never divides by zero.
        """
        commands = self.log.commands()
        released = float(self.handler.commands_released)
        blocked = float(self.handler.commands_blocked)
        total = float(len(commands))
        return {
            "windows": float(len(self.log)),
            "commands": total,
            "released": released,
            "blocked": blocked,
            "benign_released": float(self.handler.benign_windows_released),
            "release_rate": released / total if total else 0.0,
            "block_rate": blocked / total if total else 0.0,
        }
