"""Additional decision methods and combinators (paper Section VII).

The paper stresses that the Decision Module "has an open and extensible
framework so that other approaches ... can be easily integrated".
This module provides that extensibility surface:

* :class:`AllOfMethod` / :class:`AnyOfMethod` — combinators that query
  sub-methods concurrently and combine their verdicts;
* :class:`QuietHoursMethod` — a schedule policy (block everything while
  the home is vacant, e.g. working hours or vacations);
* :class:`AllowListMethod` — a static presence override for users
  without a phone (e.g. "always allow while the guard is in demo
  mode"), mainly useful in tests and as an integration template.

Each method keeps the same asynchronous contract as the built-in RSSI
method, so any of them (or user-defined ones) can be dropped into
:class:`~repro.core.decision.DecisionModule`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.decision import (
    DecisionCallback,
    DecisionContext,
    DecisionMethod,
    DecisionResult,
    RssiDecisionMethod,
    Verdict,
)
from repro.core.registry import PluginRegistry
from repro.errors import ConfigError
from repro.sim.simulator import Simulator


class AllowListMethod(DecisionMethod):
    """Accepts or rejects everything, per a switchable flag."""

    def __init__(self, allow: bool = True) -> None:
        self.allow = allow
        self.decisions = 0

    def decide(self, context: DecisionContext, callback: DecisionCallback) -> None:
        """Answer immediately with the configured verdict."""
        self.decisions += 1
        verdict = Verdict.LEGITIMATE if self.allow else Verdict.MALICIOUS
        callback(DecisionResult(verdict=verdict))


@dataclass(frozen=True)
class QuietWindow:
    """A daily time window (seconds since local midnight)."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end <= 86400:
            raise ConfigError(f"invalid quiet window [{self.start}, {self.end}]")

    def covers(self, seconds_of_day: float) -> bool:
        """Whether a time of day falls inside the window."""
        return self.start <= seconds_of_day < self.end


class QuietHoursMethod(DecisionMethod):
    """Blocks all commands during configured daily windows.

    A remote attacker's favourite moment is when nobody is home; a
    schedule policy kills entire classes of attacks with zero queries.
    Outside quiet hours the verdict is LEGITIMATE, so this method is
    meant to be composed with the RSSI method via :class:`AllOfMethod`.
    """

    def __init__(self, sim: Simulator, windows: Sequence[QuietWindow]) -> None:
        if not windows:
            raise ConfigError("QuietHoursMethod needs at least one window")
        self.sim = sim
        self.windows = list(windows)
        self.blocked_by_schedule = 0

    def decide(self, context: DecisionContext, callback: DecisionCallback) -> None:
        """Block during quiet hours, pass otherwise."""
        seconds_of_day = self.sim.now % 86400
        if any(window.covers(seconds_of_day) for window in self.windows):
            self.blocked_by_schedule += 1
            callback(DecisionResult(verdict=Verdict.MALICIOUS))
        else:
            callback(DecisionResult(verdict=Verdict.LEGITIMATE))


class _CombinerState:
    __slots__ = ("results", "done")

    def __init__(self, count: int) -> None:
        self.results: List[Optional[DecisionResult]] = [None] * count
        self.done = False


def _merge_evidence(results: Sequence[Optional[DecisionResult]]) -> Tuple[list, list]:
    reports: list = []
    vetoed: list = []
    for result in results:
        if result is not None:
            reports.extend(result.reports)
            vetoed.extend(result.floor_vetoed)
    return reports, vetoed


class AllOfMethod(DecisionMethod):
    """LEGITIMATE only if *every* sub-method says legitimate.

    Short-circuits to MALICIOUS on the first rejecting sub-method.  A
    TIMEOUT from any sub-method makes the combined verdict TIMEOUT
    (unless another already rejected).
    """

    def __init__(self, methods: Sequence[DecisionMethod]) -> None:
        if not methods:
            raise ConfigError("AllOfMethod needs at least one sub-method")
        self.methods = list(methods)

    def decide(self, context: DecisionContext, callback: DecisionCallback) -> None:
        """Query every sub-method; legitimate only if all agree."""
        state = _CombinerState(len(self.methods))

        def finish(verdict: Verdict) -> None:
            if state.done:
                return
            state.done = True
            reports, vetoed = _merge_evidence(state.results)
            callback(DecisionResult(verdict=verdict, reports=reports, floor_vetoed=vetoed))

        def on_result(index: int, result: DecisionResult) -> None:
            if state.done:
                return
            state.results[index] = result
            if result.verdict is Verdict.MALICIOUS:
                finish(Verdict.MALICIOUS)
                return
            if all(r is not None for r in state.results):
                if any(r.verdict is Verdict.TIMEOUT for r in state.results):
                    finish(Verdict.TIMEOUT)
                else:
                    finish(Verdict.LEGITIMATE)

        for index, method in enumerate(self.methods):
            method.decide(context, lambda r, i=index: on_result(i, r))


class AnyOfMethod(DecisionMethod):
    """LEGITIMATE if *any* sub-method says legitimate.

    Short-circuits on the first accepting sub-method; MALICIOUS once
    every sub-method rejected; TIMEOUT if nothing accepted and at least
    one sub-method timed out.
    """

    def __init__(self, methods: Sequence[DecisionMethod]) -> None:
        if not methods:
            raise ConfigError("AnyOfMethod needs at least one sub-method")
        self.methods = list(methods)

    def decide(self, context: DecisionContext, callback: DecisionCallback) -> None:
        """Query every sub-method; legitimate if any accepts."""
        state = _CombinerState(len(self.methods))

        def finish(verdict: Verdict) -> None:
            if state.done:
                return
            state.done = True
            reports, vetoed = _merge_evidence(state.results)
            satisfied = None
            for result in state.results:
                if result is not None and result.satisfied_by:
                    satisfied = result.satisfied_by
                    break
            callback(DecisionResult(
                verdict=verdict, reports=reports,
                satisfied_by=satisfied, floor_vetoed=vetoed,
            ))

        def on_result(index: int, result: DecisionResult) -> None:
            if state.done:
                return
            state.results[index] = result
            if result.verdict is Verdict.LEGITIMATE:
                finish(Verdict.LEGITIMATE)
                return
            if all(r is not None for r in state.results):
                if any(r.verdict is Verdict.TIMEOUT for r in state.results):
                    finish(Verdict.TIMEOUT)
                else:
                    finish(Verdict.MALICIOUS)

        for index, method in enumerate(self.methods):
            method.decide(context, lambda r, i=index: on_result(i, r))


# ---------------------------------------------------------------------------
# Method registry
# ---------------------------------------------------------------------------

# Name → class registry for the extensibility surface, the same shape
# as the window-recognizer registry (repro.core.recognizers.RECOGNIZERS):
# experiments and ablations select methods by name instead of importing
# classes.
DECISION_METHODS = PluginRegistry("decision method")
DECISION_METHODS.register("rssi", RssiDecisionMethod)
DECISION_METHODS.register("allow-list", AllowListMethod)
DECISION_METHODS.register("quiet-hours", QuietHoursMethod)
DECISION_METHODS.register("all-of", AllOfMethod)
DECISION_METHODS.register("any-of", AnyOfMethod)
