"""VoiceGuard: the paper's contribution.

The guard runs on a general-purpose device inline between the smart
speaker(s) and the home router (paper Figure 2).  It is assembled from:

* :mod:`repro.core.recognition` — the Voice Command Traffic Recognition
  sub-module: spike windows over app-data packet metadata, the Echo's
  phase-1/phase-2 length classifier, AVS-server tracking by DNS snoop
  *and* connection signature, Google-flow tracking by DNS;
* :mod:`repro.core.handler` — the Traffic Handler sub-module: holds a
  suspected command's records in the transparent proxy, releases them
  on a legitimate verdict, discards them otherwise;
* :mod:`repro.core.decision` — the Decision Module framework and its
  Bluetooth-RSSI method (push a measurement request to every registered
  device; legitimate iff any device is above its threshold and on the
  speaker's floor);
* :mod:`repro.core.registry` — the multi-user device registry;
* :mod:`repro.core.floor` — the floor-level tracker driven by stair
  motion events and RSSI trace regression (Figure 10);
* :mod:`repro.core.threshold` — the threshold-calibration app;
* :mod:`repro.core.guard` — the façade that wires everything together.
"""

from repro.core.config import VoiceGuardConfig
from repro.core.decision import (
    DecisionContext,
    DecisionMethod,
    DecisionModule,
    DecisionResult,
    RssiDecisionMethod,
    Verdict,
)
from repro.core.events import CommandEvent, GuardLog, TrafficClass
from repro.core.floor import FloorLevelTracker, TraceClassifier
from repro.core.guard import VoiceGuard
from repro.core.handler import TrafficHandler
from repro.core.methods import (
    AllOfMethod,
    AllowListMethod,
    AnyOfMethod,
    QuietHoursMethod,
    QuietWindow,
)
from repro.core.recognition import SpeakerProfile, TrafficRecognition, Window
from repro.core.registry import DeviceRegistry, RegisteredDevice
from repro.core.signature_learning import LearnedSignature, SignatureLearner
from repro.core.threshold import ThresholdCalibrator, perimeter_route

__all__ = [
    "AllOfMethod",
    "AllowListMethod",
    "AnyOfMethod",
    "CommandEvent",
    "DecisionContext",
    "DecisionMethod",
    "DecisionModule",
    "DecisionResult",
    "DeviceRegistry",
    "FloorLevelTracker",
    "GuardLog",
    "LearnedSignature",
    "QuietHoursMethod",
    "QuietWindow",
    "RegisteredDevice",
    "SignatureLearner",
    "RssiDecisionMethod",
    "SpeakerProfile",
    "ThresholdCalibrator",
    "TraceClassifier",
    "TrafficClass",
    "TrafficHandler",
    "TrafficRecognition",
    "Verdict",
    "VoiceGuard",
    "VoiceGuardConfig",
    "Window",
    "perimeter_route",
]
