"""Multi-user device registry (paper Section IV-C).

VoiceGuard keeps a list of devices belonging to the speaker's
legitimate users, each with its own calibrated RSSI threshold.  A voice
command is legitimate if *at least one* registered device proves
proximity.  Registration requires the owner's approval — an attacker
cannot add his own device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import RegistrationError
from repro.home.devices import MobileDevice


class PluginRegistry:
    """Name → factory registry for pluggable strategies.

    The paper stresses the guard has "an open and extensible framework"
    (Section VII); this is the generic surface behind it.  Decision
    methods (:mod:`repro.core.methods`), window recognizers
    (:mod:`repro.core.recognizers`) and traffic morphers
    (:mod:`repro.attacks.morphing`) each keep a module-level instance,
    so experiments select implementations by name (CLI flags, config
    fields) without importing them directly.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable[..., object]] = {}

    def register(self, name: str, factory: Callable[..., object],
                 replace: bool = False) -> Callable[..., object]:
        """Add ``factory`` under ``name``; refuse silent redefinition."""
        if not replace and name in self._factories:
            raise RegistrationError(
                f"{self.kind} {name!r} is already registered")
        self._factories[name] = factory
        return factory

    def create(self, name: str, *args: object, **kwargs: object) -> object:
        """Instantiate the factory registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise RegistrationError(
                f"no {self.kind} named {name!r}; "
                f"known: {', '.join(self.names()) or '(none)'}"
            ) from None
        return factory(*args, **kwargs)

    def names(self) -> List[str]:
        """Registered names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)


@dataclass
class RegisteredDevice:
    """One enrolled phone/watch and its RSSI threshold."""

    device: MobileDevice
    threshold: float

    @property
    def name(self) -> str:
        """The underlying device's name."""
        return self.device.name


class DeviceRegistry:
    """The guard's list of legitimate users' devices."""

    def __init__(self) -> None:
        self._entries: Dict[str, RegisteredDevice] = {}

    def register(
        self,
        device: MobileDevice,
        threshold: float,
        approved_by_owner: bool = True,
    ) -> RegisteredDevice:
        """Enroll ``device`` with its calibrated ``threshold``.

        ``approved_by_owner`` models the manual login-credential step;
        an unapproved registration (an attacker's attempt) is refused.
        """
        if not approved_by_owner:
            raise RegistrationError(
                f"registration of {device.name!r} requires the owner's approval"
            )
        if device.name in self._entries:
            raise RegistrationError(f"device {device.name!r} is already registered")
        entry = RegisteredDevice(device=device, threshold=float(threshold))
        self._entries[device.name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove a device from the registry."""
        if name not in self._entries:
            raise RegistrationError(f"no registered device named {name!r}")
        del self._entries[name]

    def update_threshold(self, name: str, threshold: float) -> None:
        """Replace a device's RSSI threshold."""
        try:
            self._entries[name].threshold = float(threshold)
        except KeyError:
            raise RegistrationError(f"no registered device named {name!r}") from None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def entries(self) -> List[RegisteredDevice]:
        """All registered devices."""
        return list(self._entries.values())

    def get(self, name: str) -> RegisteredDevice:
        """Look up a registered device by name."""
        try:
            return self._entries[name]
        except KeyError:
            raise RegistrationError(f"no registered device named {name!r}") from None
