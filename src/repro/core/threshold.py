"""The RSSI-threshold calibration app (paper Section IV-C).

The user switches the app on, walks around the speaker's room (e.g.
along the walls), and the app samples the speaker's Bluetooth RSSI
every 0.5 s; when the walk ends, the minimum of the measured values
becomes the device's RSSI threshold.  Everywhere the user could stand
in the room therefore reads at or above the threshold, while other
rooms — behind walls or floors — read below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigError
from repro.home.devices import MobileDevice
from repro.home.environment import HomeEnvironment
from repro.radio.floorplan import Room
from repro.radio.geometry import Point
from repro.radio.testbeds import WalkRoute

SAMPLE_PERIOD = 0.5  # the app samples every 0.5 s


def perimeter_route(room: Room, inset: float = 0.5, laps: int = 1,
                    speed: float = 1.0) -> WalkRoute:
    """A walking route along the room's walls, ``inset`` metres in."""
    x0, y0 = room.x0 + inset, room.y0 + inset
    x1, y1 = room.x1 - inset, room.y1 - inset
    if x0 >= x1 or y0 >= y1:
        raise ConfigError(f"room {room.name!r} is too small for inset {inset}")
    z = room.z_floor
    corners = [Point(x0, y0, z), Point(x1, y0, z), Point(x1, y1, z), Point(x0, y1, z)]
    waypoints = []
    for _ in range(laps):
        waypoints.extend(corners)
    waypoints.append(corners[0])
    length = laps * 2.0 * ((x1 - x0) + (y1 - y0))
    return WalkRoute(f"calibrate-{room.name}", waypoints, duration=length / speed)


@dataclass
class CalibrationResult:
    """Outcome of one calibration walk."""

    device_name: str
    room_name: str
    threshold: float
    samples: List[float] = field(default_factory=list)

    @property
    def sample_count(self) -> int:
        """Number of samples taken during the walk."""
        return len(self.samples)


class ThresholdCalibrator:
    """Runs the calibration walk inside the simulation.

    Note: :meth:`calibrate` *advances the simulator* by the duration of
    the walk; run calibrations during experiment setup, before any
    traffic of interest.
    """

    def __init__(self, env: HomeEnvironment) -> None:
        self.env = env

    def calibrate(
        self,
        device: MobileDevice,
        room: Room,
        laps: int = 1,
        inset: float = 0.5,
    ) -> CalibrationResult:
        """Walk ``device``'s carrier around ``room`` and compute the
        threshold as the minimum sampled RSSI."""
        route = perimeter_route(room, inset=inset, laps=laps)
        carrier = device.carrier
        return_point = carrier.position
        carrier.follow(route)
        samples: List[float] = []
        end_time = self.env.sim.now + route.duration
        while self.env.sim.now < end_time:
            samples.append(device.instant_rssi(self.env.speaker_beacon))
            self.env.sim.run_until(min(self.env.sim.now + SAMPLE_PERIOD, end_time))
        carrier.teleport(return_point)
        if not samples:
            raise ConfigError("calibration walk produced no samples")
        return CalibrationResult(
            device_name=device.name,
            room_name=room.name,
            threshold=min(samples),
            samples=samples,
        )
