"""The RSSI-threshold calibration app (paper Section IV-C).

The user switches the app on, walks around the speaker's room (e.g.
along the walls), and the app samples the speaker's Bluetooth RSSI
every 0.5 s; when the walk ends, the minimum of the measured values
becomes the device's RSSI threshold.  Everywhere the user could stand
in the room therefore reads at or above the threshold, while other
rooms — behind walls or floors — read below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.home.devices import MobileDevice
from repro.home.environment import HomeEnvironment
from repro.radio.floorplan import Room
from repro.radio.geometry import Point
from repro.radio.testbeds import WalkRoute

SAMPLE_PERIOD = 0.5  # the app samples every 0.5 s


def perimeter_route(room: Room, inset: float = 0.5, laps: int = 1,
                    speed: float = 1.0) -> WalkRoute:
    """A walking route along the room's walls, ``inset`` metres in."""
    x0, y0 = room.x0 + inset, room.y0 + inset
    x1, y1 = room.x1 - inset, room.y1 - inset
    if x0 >= x1 or y0 >= y1:
        raise ConfigError(f"room {room.name!r} is too small for inset {inset}")
    z = room.z_floor
    corners = [Point(x0, y0, z), Point(x1, y0, z), Point(x1, y1, z), Point(x0, y1, z)]
    waypoints = []
    for _ in range(laps):
        waypoints.extend(corners)
    waypoints.append(corners[0])
    length = laps * 2.0 * ((x1 - x0) + (y1 - y0))
    return WalkRoute(f"calibrate-{room.name}", waypoints, duration=length / speed)


@dataclass
class CalibrationResult:
    """Outcome of one calibration walk."""

    device_name: str
    room_name: str
    threshold: float
    samples: List[float] = field(default_factory=list)

    @property
    def sample_count(self) -> int:
        """Number of samples taken during the walk."""
        return len(self.samples)


# Memoized calibration walks, keyed by the caller's *world bucket*
# (quantized geometry + deployment + device mix + build seed) plus the
# walk parameters.  A calibration walk is a deterministic function of
# that bucket, so within one process it only needs to run once per
# bucket; later builds replay the stored result while advancing the sim
# clock by exactly the walk's duration, keeping event timelines aligned
# with a memo-cold build.  (RNG stream *states* do diverge — the walk's
# sampling draws are skipped — which is why the scenario pool re-seeds
# every stream per home afterwards; see repro.experiments.pool.rehome.)
_CALIBRATION_MEMO: Dict[tuple, Tuple["CalibrationResult", float]] = {}


def clear_calibration_memo() -> None:
    """Drop memoized calibration walks (tests / cold benchmarks)."""
    _CALIBRATION_MEMO.clear()


class ThresholdCalibrator:
    """Runs the calibration walk inside the simulation.

    Note: :meth:`calibrate` *advances the simulator* by the duration of
    the walk; run calibrations during experiment setup, before any
    traffic of interest.  ``memo_bucket`` (a hashable description of
    everything that determines the walk — geometry, deployment, build
    seed) enables the per-bucket memo above; leave it ``None`` for the
    always-recompute behaviour.
    """

    def __init__(self, env: HomeEnvironment,
                 memo_bucket: Optional[tuple] = None) -> None:
        self.env = env
        self.memo_bucket = memo_bucket

    def calibrate(
        self,
        device: MobileDevice,
        room: Room,
        laps: int = 1,
        inset: float = 0.5,
    ) -> CalibrationResult:
        """Walk ``device``'s carrier around ``room`` and compute the
        threshold as the minimum sampled RSSI."""
        memo_key = None
        if self.memo_bucket is not None:
            memo_key = (self.memo_bucket, device.name, device.kind,
                        room.name, laps, inset)
            hit = _CALIBRATION_MEMO.get(memo_key)
            if hit is not None:
                result, duration = hit
                # Advance the clock exactly as the walk would have, so
                # everything scheduled later lands at the same instants
                # as in a memo-cold build.
                self.env.sim.run_for(duration)
                return result
        route = perimeter_route(room, inset=inset, laps=laps)
        carrier = device.carrier
        return_point = carrier.position
        carrier.follow(route)
        samples: List[float] = []
        end_time = self.env.sim.now + route.duration
        while self.env.sim.now < end_time:
            samples.append(device.instant_rssi(self.env.speaker_beacon))
            self.env.sim.run_until(min(self.env.sim.now + SAMPLE_PERIOD, end_time))
        carrier.teleport(return_point)
        if not samples:
            raise ConfigError("calibration walk produced no samples")
        result = CalibrationResult(
            device_name=device.name,
            room_name=room.name,
            threshold=min(samples),
            samples=samples,
        )
        if memo_key is not None:
            _CALIBRATION_MEMO[memo_key] = (result, route.duration)
        return result
