"""Floor-level tracking via RSSI trace regression (paper Section V-B2).

In a multi-floor home, the room directly above the speaker can read
above the RSSI threshold (the leak of Figure 8a), so proximity alone
would accept an attack issued while the owner is upstairs.  VoiceGuard
therefore tracks each user's *floor level*: a motion sensor near the
stairs triggers an 8-second, 40-sample RSSI trace on every registered
device; a linear fit's slope and y-intercept classify the movement as
Up, Down, or one of the non-stair routes, and Up/Down update the
device's floor.  A command is vetoed when the proving device is not on
the speaker's floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.regression import LinearFit
from repro.analysis.traces import RssiTrace
from repro.errors import ConfigError
from repro.faults.plan import FaultInjector
from repro.home.devices import MobileDevice
from repro.obs.tracer import NULL_SPAN, Observability
from repro.radio.bluetooth import BluetoothBeacon
from repro.sim.simulator import Simulator

# Routes whose traces change the floor estimate, and how.
FLOOR_DELTAS = {"up": +1, "down": -1}


@dataclass(frozen=True)
class TraceFeatures:
    """The two features the paper's method extracts from a trace."""

    slope: float
    intercept: float

    @staticmethod
    def from_fit(fit: LinearFit) -> "TraceFeatures":
        """Extract (slope, intercept) from a line fit."""
        return TraceFeatures(slope=fit.slope, intercept=fit.intercept)


class TraceClassifier:
    """Slope-gate + nearest-centroid classifier (Figure 10's method).

    Step 1 (the paper's slope categories): traces whose |slope| is
    below the gate are in-room movements (Route 1) — the floor cannot
    have changed.  Step 2: among the steep traces, a nearest-centroid
    match on (slope, y-intercept) — normalized by the training spread —
    separates Up/Down from the confusable Routes 2 and 3.
    """

    def __init__(self, slope_gate: float = 1.0) -> None:
        if slope_gate <= 0:
            raise ConfigError(f"slope gate must be positive, got {slope_gate!r}")
        self.slope_gate = slope_gate
        self._centroids: Dict[str, Tuple[float, float]] = {}
        self._scale: Tuple[float, float] = (1.0, 1.0)
        self.flat_label = "route1"

    @property
    def trained(self) -> bool:
        """Whether centroids have been fitted."""
        return bool(self._centroids)

    def fit(self, training: Dict[str, Sequence[TraceFeatures]]) -> None:
        """Learn centroids from labelled training traces.

        ``training`` maps route labels ("up", "down", "route1",
        "route2", "route3", ...) to collected features.
        """
        if not training:
            raise ConfigError("training data is empty")
        slope_deviations: List[float] = []
        intercept_deviations: List[float] = []
        for label, features in training.items():
            if not features:
                raise ConfigError(f"route {label!r} has no training traces")
            slope_mean = float(np.mean([f.slope for f in features]))
            intercept_mean = float(np.mean([f.intercept for f in features]))
            self._centroids[label] = (slope_mean, intercept_mean)
            if abs(slope_mean) < self.slope_gate:
                # Flat classes (Route 1, possibly multi-room and thus
                # multi-modal) never reach centroid matching — the gate
                # removes them — so they must not inflate the scale.
                continue
            slope_deviations.extend(f.slope - slope_mean for f in features)
            intercept_deviations.extend(f.intercept - intercept_mean for f in features)
        # Pooled *within-class* spread of the steep classes: scaling by
        # it (rather than the global spread) preserves the between-class
        # margins that separate Down from Route 3 in Figure 10.
        slope_std = float(np.std(slope_deviations)) if slope_deviations else 1.0
        intercept_std = float(np.std(intercept_deviations)) if intercept_deviations else 1.0
        self._scale = (max(slope_std, 1e-6), max(intercept_std, 1e-6))

    def classify(self, features: TraceFeatures) -> str:
        """Label a trace.  Untrained classifiers only apply the gate."""
        if abs(features.slope) < self.slope_gate:
            return self.flat_label
        if not self._centroids:
            # Gate-only fallback: steep slope means a stair traversal.
            return "up" if features.slope < 0 else "down"
        band = self._slope_band(features.slope)
        candidates = {
            label: centroid
            for label, centroid in self._centroids.items()
            if self._slope_band(centroid[0]) == band
        }
        if not candidates:
            candidates = dict(self._centroids)
        slope_scale, intercept_scale = self._scale
        best_label, best_distance = "", float("inf")
        for label, (c_slope, c_intercept) in sorted(candidates.items()):
            d = (
                ((features.slope - c_slope) / slope_scale) ** 2
                + ((features.intercept - c_intercept) / intercept_scale) ** 2
            )
            if d < best_distance:
                best_label, best_distance = label, d
        return best_label

    def _slope_band(self, slope: float) -> int:
        if slope <= -self.slope_gate:
            return -1
        if slope >= self.slope_gate:
            return 1
        return 0


@dataclass
class TraceEvent:
    """One classified trace (kept for Figure 10 style reporting)."""

    device_name: str
    time: float
    features: TraceFeatures
    label: str
    floor_before: int
    floor_after: int


class FloorLevelTracker:
    """Maintains a floor estimate per registered device."""

    def __init__(
        self,
        sim: Simulator,
        beacon: BluetoothBeacon,
        classifier: TraceClassifier,
        speaker_floor: int,
        floor_count: int,
        faults: Optional[FaultInjector] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if floor_count < 1:
            raise ConfigError(f"floor_count must be >= 1, got {floor_count!r}")
        self.sim = sim
        self.beacon = beacon
        self.classifier = classifier
        self.speaker_floor = speaker_floor
        self.floor_count = floor_count
        self.faults = faults
        self._devices: Dict[str, MobileDevice] = {}
        self._floors: Dict[str, int] = {}
        self._recording: Dict[str, bool] = {}
        self.trace_events: List[TraceEvent] = []
        self.traces_dropped = 0
        obs = obs or Observability()
        self.tracer = obs.tracer
        metrics = obs.metrics.scope("floor")
        self._m_traces = metrics.counter("traces_recorded")
        self._m_dropped = metrics.counter("traces_dropped")
        self._m_transitions = metrics.counter("floor_transitions")
        self._trace_spans: Dict[str, object] = {}

    def track(self, device: MobileDevice, initial_floor: Optional[int] = None) -> None:
        """Start tracking ``device``; default assumption: speaker floor."""
        self._devices[device.name] = device
        self._floors[device.name] = (
            self.speaker_floor if initial_floor is None else int(initial_floor)
        )

    def floor_of(self, device_name: str) -> Optional[int]:
        """Current floor estimate for a device (None if untracked)."""
        return self._floors.get(device_name)

    def floor_ok(self, device_name: str) -> bool:
        """Is the device believed to be on the speaker's floor?

        Unknown devices pass (the tracker only vetoes what it tracks).
        """
        floor = self._floors.get(device_name)
        return floor is None or floor == self.speaker_floor

    # -- motion-sensor hook -----------------------------------------------------
    def on_motion(self, now: float) -> None:
        """Stairway motion: record a trace on every tracked device."""
        for name, device in self._devices.items():
            if self._recording.get(name):
                continue
            if self.faults is not None and self.faults.trace_dropped(name):
                # The app missed its wake window (Doze, BLE radio busy):
                # this device's floor estimate silently goes stale.
                self.traces_dropped += 1
                self._m_dropped.inc()
                continue
            self._recording[name] = True
            self._trace_spans[name] = self.tracer.begin("floor.trace", device=name)
            device.record_trace(self.beacon, lambda samples, n=name: self._on_trace(n, samples))

    def _on_trace(self, device_name: str, samples: list) -> None:
        self._recording[device_name] = False
        trace = RssiTrace.from_samples(samples)
        features = TraceFeatures.from_fit(trace.fit())
        label = self.classifier.classify(features)
        before = self._floors[device_name]
        delta = FLOOR_DELTAS.get(label, 0)
        after = min(max(before + delta, 0), self.floor_count - 1)
        self._floors[device_name] = after
        self._m_traces.inc()
        if after != before:
            self._m_transitions.inc()
        self._trace_spans.pop(device_name, NULL_SPAN).finish(
            label=label, floor_before=before, floor_after=after)
        self.trace_events.append(TraceEvent(
            device_name=device_name,
            time=self.sim.now,
            features=features,
            label=label,
            floor_before=before,
            floor_after=after,
        ))
