"""Typed resilience events and the last-known-proximity cache.

The resilient decision path (retries, offline re-queries, degraded
grants) emits one :class:`ResilienceEvent` per action it takes, so the
experiments can report *why* availability held up — or didn't — under
injected faults.  This module sits below :mod:`repro.core.decision`
and :mod:`repro.core.events` so both can import it without a cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple


class ResilienceEventType(enum.Enum):
    """What the resilient decision path just did."""

    PUSH_RETRY = "push_retry"  # re-pushed to a silent device (backoff timer)
    DEVICE_OFFLINE = "device_offline"  # messaging cloud NACKed: device unreachable
    OFFLINE_REQUERY = "offline_requery"  # re-queried the next-best device instead
    DECISION_TIMEOUT = "decision_timeout"  # deadline passed with no satisfying report
    DEGRADED_GRANT = "degraded_grant"  # cache proved recent proximity: released
    DEGRADED_MISS = "degraded_miss"  # cache consulted but stale/empty: fell through


@dataclass(frozen=True)
class ResilienceEvent:
    """One action taken by the resilient decision path."""

    type: ResilienceEventType
    time: float
    window_id: int = -1
    device_name: str = ""
    attempt: int = 0  # 1-based push attempt number where applicable


ResilienceRecorder = Callable[[ResilienceEvent], None]


class ProximityCache:
    """Short-TTL last-known-proximity memory, one entry per device.

    Every RSSI report the guard ever receives — including late ones that
    arrive after their query resolved — refreshes this cache.  In
    degraded mode (nothing answered before the deadline, or every device
    is offline) a *fresh* positive entry can stand in for a live proof,
    trading a bounded staleness window for availability.
    """

    def __init__(self, ttl: float) -> None:
        self.ttl = ttl
        # device -> (report time, proved proximity at that time)
        self._entries: Dict[str, Tuple[float, bool]] = {}
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        """A zero TTL disables degraded grants entirely."""
        return self.ttl > 0.0

    def update(self, device_name: str, time: float, satisfied: bool) -> None:
        """Record the freshest proximity evidence for a device."""
        previous = self._entries.get(device_name)
        if previous is None or time >= previous[0]:
            self._entries[device_name] = (time, satisfied)

    def fresh_proof(
        self, now: float, floor_check: Optional[Callable[[str], bool]] = None,
    ) -> Optional[str]:
        """The device with the freshest in-TTL positive entry, if any.

        ``floor_check`` is applied at *grant* time: a device that proved
        proximity recently but has since moved to another floor must not
        vouch for a command (the Section V-B2 veto still applies).
        """
        if not self.enabled:
            return None
        best_name: Optional[str] = None
        best_time = -float("inf")
        for name, (time, satisfied) in self._entries.items():
            if not satisfied or now - time > self.ttl:
                continue
            if floor_check is not None and not floor_check(name):
                continue
            if time > best_time:
                best_name, best_time = name, time
        if best_name is None:
            self.misses += 1
        else:
            self.hits += 1
        return best_name

    def entry(self, device_name: str) -> Optional[Tuple[float, bool]]:
        """The raw (time, satisfied) entry for a device, if present."""
        return self._entries.get(device_name)

    def purge_stale(self, now: float) -> int:
        """Drop entries older than the TTL; returns how many were removed.

        Keeps week-long runs from accumulating entries for devices that
        unregistered long ago; correctness never depends on calling it.
        """
        stale = [name for name, (time, _) in self._entries.items()
                 if now - time > self.ttl]
        for name in stale:
            del self._entries[name]
        return len(stale)


def count_events(events: List[ResilienceEvent]) -> Dict[str, int]:
    """Per-type counts of a resilience event trail."""
    counts: Dict[str, int] = {}
    for event in events:
        key = event.type.value
        counts[key] = counts.get(key, 0) + 1
    return counts
