"""Guard event log.

Every recognition window produces one :class:`CommandEvent` capturing
what the guard saw, decided, and did.  The experiments score these
events against the speakers' ground-truth interaction records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.decision import Verdict
from repro.core.resilience import ResilienceEvent, count_events


class TrafficClass(enum.Enum):
    """Outcome of classifying one traffic spike."""

    COMMAND = "command"
    RESPONSE = "response"
    UNKNOWN = "unknown"


@dataclass
class CommandEvent:
    """One recognized spike and everything the guard did about it."""

    window_id: int
    flow_id: int
    speaker_ip: str
    protocol: str
    opened_at: float
    classification: Optional[TrafficClass] = None
    classified_at: Optional[float] = None
    classify_packet_count: int = 0
    verdict: Optional[Verdict] = None
    verdict_at: Optional[float] = None
    released_at: Optional[float] = None
    discarded_at: Optional[float] = None
    held_records: int = 0
    rssi_reports: List[object] = field(default_factory=list)

    @property
    def hold_duration(self) -> Optional[float]:
        """How long records were parked before release/discard."""
        end = self.released_at if self.released_at is not None else self.discarded_at
        if end is None:
            return None
        return end - self.opened_at

    @property
    def decision_latency(self) -> Optional[float]:
        """Window open -> verdict (the paper's Figure 7 quantity)."""
        if self.verdict_at is None:
            return None
        return self.verdict_at - self.opened_at


class GuardLog:
    """Append-only log of :class:`CommandEvent` with query helpers."""

    def __init__(self) -> None:
        self.events: List[CommandEvent] = []
        self.resilience: List[ResilienceEvent] = []

    def add(self, event: CommandEvent) -> CommandEvent:
        """Append an event and return it."""
        self.events.append(event)
        return event

    def record_resilience(self, event: ResilienceEvent) -> ResilienceEvent:
        """Append one typed resilience event (retry/offline/degraded)."""
        self.resilience.append(event)
        return event

    def resilience_counts(self) -> dict:
        """Per-type counts of the resilience trail."""
        return count_events(self.resilience)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def commands(self) -> List[CommandEvent]:
        """Events classified as commands."""
        return [e for e in self.events if e.classification is TrafficClass.COMMAND]

    def with_verdict(self, verdict: Verdict) -> List[CommandEvent]:
        """Events carrying the given verdict."""
        return [e for e in self.events if e.verdict is verdict]

    def between(self, start: float, end: float) -> List[CommandEvent]:
        """Events opened inside [start, end]."""
        return [e for e in self.events if start <= e.opened_at <= end]
