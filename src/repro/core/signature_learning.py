"""Adaptive connection-signature learning (paper Section VII).

The paper notes its packet-level signatures "have remained the same for
over two years" but that a firmware update could change them, and plans
to "revise the Traffic Processing Module so that it can adaptively
learn the packet-level signatures when they change".  This module
implements that plan:

* whenever a flow's server IP is *independently confirmed* as the AVS
  server by a DNS answer, the learner records the flow's opening
  length-prefix;
* once the same prefix has been observed on ``confirmations`` distinct
  DNS-confirmed connections, it is adopted as the active signature;
* the recognizer then uses the *learned* signature to re-identify the
  AVS server on connections that were not preceded by DNS.

Learning only ever uses DNS-confirmed flows, so an attacker cannot
poison the signature by opening look-alike connections to other
servers (they would also need to control the home's DNS answers, which
the threat model excludes).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.net.packet import Packet
from repro.net.proxy import ProxiedFlow


@dataclass
class LearnedSignature:
    """A signature adopted by the learner."""

    lengths: Tuple[int, ...]
    adopted_at: float
    confirmations: int


class SignatureLearner:
    """Learns a server's connection signature from confirmed flows.

    Parameters
    ----------
    prefix_length:
        How many opening application-data lengths form a signature
        (the Echo Dot's measured signature is 16 packets long).
    confirmations:
        How many distinct DNS-confirmed connections must agree before a
        prefix is adopted.
    """

    def __init__(self, prefix_length: int = 16, confirmations: int = 3) -> None:
        if prefix_length < 4:
            raise ConfigError(f"prefix_length must be >= 4, got {prefix_length!r}")
        if confirmations < 1:
            raise ConfigError(f"confirmations must be >= 1, got {confirmations!r}")
        self.prefix_length = prefix_length
        self.confirmations = confirmations
        self.active: Optional[LearnedSignature] = None
        self.history: List[LearnedSignature] = []
        self._candidate_counts: Counter = Counter()
        # Flow id -> accumulating prefix, only for confirmed-server flows.
        self._prefixes: Dict[int, List[int]] = {}
        self._completed_flows: set = set()

    # -- observation ------------------------------------------------------
    def observe_confirmed_flow(self, flow: ProxiedFlow, packet: Packet, now: float) -> None:
        """Feed one client record of a DNS-confirmed AVS flow."""
        if flow.flow_id in self._completed_flows:
            return
        prefix = self._prefixes.setdefault(flow.flow_id, [])
        prefix.append(packet.payload_len)
        if len(prefix) < self.prefix_length:
            return
        self._completed_flows.add(flow.flow_id)
        candidate = tuple(prefix[: self.prefix_length])
        del self._prefixes[flow.flow_id]
        self._candidate_counts[candidate] += 1
        if self._candidate_counts[candidate] >= self.confirmations:
            self._adopt(candidate, now)

    def _adopt(self, candidate: Tuple[int, ...], now: float) -> None:
        if self.active is not None and self.active.lengths == candidate:
            return
        signature = LearnedSignature(
            lengths=candidate,
            adopted_at=now,
            confirmations=self._candidate_counts[candidate],
        )
        if self.active is not None:
            self.history.append(self.active)
        self.active = signature
        # Stale candidates should not block a later re-learn.
        self._candidate_counts = Counter({candidate: self._candidate_counts[candidate]})

    # -- matching ------------------------------------------------------------
    def matches(self, prefix: List[int]) -> bool:
        """Whether a complete prefix equals the learned signature."""
        if self.active is None:
            return False
        return tuple(prefix[: self.prefix_length]) == self.active.lengths

    def matches_so_far(self, prefix: List[int]) -> bool:
        """Whether a partial prefix is still consistent with the
        learned signature (used for incremental tracking)."""
        if self.active is None:
            return False
        return tuple(prefix) == self.active.lengths[: len(prefix)]

    @property
    def signature_changes(self) -> int:
        """How many times the adopted signature has changed."""
        return len(self.history)
