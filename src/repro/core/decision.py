"""The Decision Module: a pluggable legitimacy-check framework.

The paper's Decision Module "is designed to have a flexible framework
that can utilize various methods to check the legitimacy of a voice
command" (Section IV-C); its current method is Bluetooth-RSSI
proximity.  :class:`DecisionMethod` is the plug-in interface;
:class:`RssiDecisionMethod` implements the paper's method including the
multi-user OR-rule and the floor-level veto.

Resilience: the paper's chain (push -> app wake -> BLE scan -> report)
can drop at every hop, so the method optionally layers three recoveries
on top of the single-shot protocol — all disabled by default, leaving
the original one-push-per-device, flat-timeout behaviour untouched:

* **Retry with backoff** (``push_retries`` > 0): a device that stays
  silent is re-pushed on an exponential backoff schedule (``retry_base``
  doubling up to ``retry_cap``, jittered when an RNG is wired in).
* **Offline re-query**: when the messaging cloud NACKs a push (device
  unreachable), the next-best still-silent device is re-queried
  immediately instead of waiting out its backoff timer; once every
  registered device is known unreachable the query resolves at once
  rather than burning the full timeout.
* **Degraded mode** (``proximity_cache_ttl`` > 0): every report the
  guard ever receives refreshes a last-known-proximity cache; when live
  evidence cannot be obtained, a fresh positive entry (floor-checked at
  grant time) stands in for it.  Only *missing* evidence is backfilled —
  a live below-threshold report is never overridden.

Every recovery action is recorded as a typed
:class:`~repro.core.resilience.ResilienceEvent` so experiments can
report availability and accuracy under injected faults.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.registry import DeviceRegistry, RegisteredDevice
from repro.core.resilience import (
    ProximityCache,
    ResilienceEvent,
    ResilienceEventType,
    ResilienceRecorder,
)
from repro.home.push import PushService, RssiReport
from repro.obs.tracer import NULL_SPAN, Observability
from repro.radio.bluetooth import BluetoothBeacon
from repro.sim.simulator import Simulator


class Verdict(enum.Enum):
    """Decision about one held voice command."""

    LEGITIMATE = "legitimate"
    MALICIOUS = "malicious"
    TIMEOUT = "timeout"  # no device answered in time


@dataclass
class DecisionContext:
    """What the Decision Module knows about the pending command."""

    window_id: int
    speaker_ip: str
    requested_at: float
    span: object = NULL_SPAN  # the command's root span, for parent linking
    # When the hold becomes pointless (the handler's max-hold failsafe
    # fires then); the coordinator schedules the most urgent flow first.
    deadline: float = float("inf")


@dataclass
class DecisionResult:
    """Verdict plus the evidence behind it."""

    verdict: Verdict
    reports: List[RssiReport] = field(default_factory=list)
    satisfied_by: Optional[str] = None  # device that proved proximity
    floor_vetoed: List[str] = field(default_factory=list)
    degraded: bool = False  # granted from the proximity cache, not a live report
    retries: int = 0  # extra pushes sent for this query
    offline_devices: List[str] = field(default_factory=list)
    batched: bool = False  # settled by another pending command's query

    @property
    def legitimate(self) -> bool:
        """Whether the verdict allows the command."""
        return self.verdict is Verdict.LEGITIMATE


DecisionCallback = Callable[[DecisionResult], None]
FloorCheck = Callable[[str], bool]  # device name -> on speaker's floor?


class DecisionMethod:
    """Interface for legitimacy-check methods."""

    def decide(self, context: DecisionContext, callback: DecisionCallback) -> None:
        """Asynchronously decide; ``callback(result)`` exactly once."""
        raise NotImplementedError


class RssiDecisionMethod(DecisionMethod):
    """The paper's Bluetooth-RSSI proximity method (Figure 5).

    On a query, push an RSSI-measurement request to every registered
    device simultaneously; the command is legitimate as soon as one
    device reports RSSI above its threshold *and* passes the floor
    check.  If every device has answered below threshold the command is
    malicious; if nothing answers before the timeout, the verdict is
    TIMEOUT (policy decides what that means).  See the module docstring
    for the optional retry/offline/degraded recoveries.
    """

    def __init__(
        self,
        sim: Simulator,
        push: PushService,
        registry: DeviceRegistry,
        beacon: BluetoothBeacon,
        timeout: float = 5.0,
        rssi_margin: float = 0.0,
        floor_check: Optional[FloorCheck] = None,
        push_retries: int = 0,
        retry_base: float = 1.5,
        retry_cap: float = 6.0,
        proximity_cache_ttl: float = 0.0,
        retry_rng: Optional[np.random.Generator] = None,
        on_event: Optional[ResilienceRecorder] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.sim = sim
        self.push = push
        self.registry = registry
        self.beacon = beacon
        self.timeout = timeout
        self.rssi_margin = rssi_margin
        self.floor_check = floor_check
        self.push_retries = push_retries
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.retry_rng = retry_rng
        self.on_event = on_event
        self.proximity_cache = ProximityCache(ttl=proximity_cache_ttl)
        self.queries_issued = 0
        self.retries_sent = 0
        self.degraded_grants = 0
        self.offline_seen = 0
        self.events: List[ResilienceEvent] = []
        obs = obs or Observability()
        self.tracer = obs.tracer
        metrics = obs.metrics.scope("decision")
        self._m_queries = metrics.counter("queries")
        self._m_retries = metrics.counter("retries_sent")
        self._m_degraded = metrics.counter("degraded_grants")
        self._m_offline = metrics.counter("devices_offline")
        self._m_latency = metrics.histogram("latency")
        self._m_verdicts = {
            verdict: metrics.counter(f"verdict.{verdict.value}") for verdict in Verdict
        }

    def decide(self, context: DecisionContext, callback: DecisionCallback) -> None:
        """Query all registered devices; legitimate on the first satisfying report."""
        entries = self.registry.entries()
        if not entries:
            # No registered users: everything is treated as malicious,
            # mirroring a guard that has not been enrolled yet.
            self._m_verdicts[Verdict.MALICIOUS].inc()
            callback(DecisionResult(verdict=Verdict.MALICIOUS))
            return
        self.queries_issued += 1
        self._m_queries.inc()
        state = _QueryState(expected=len(entries))
        state.span = self.tracer.begin(
            "decision.query", parent=context.span,
            window_id=context.window_id, devices=len(entries),
        )
        max_attempts = 1 + self.push_retries

        def build_result(verdict: Verdict, satisfied_by: Optional[str] = None,
                         degraded: bool = False) -> DecisionResult:
            return DecisionResult(
                verdict=verdict,
                reports=list(state.reports),
                satisfied_by=satisfied_by,
                floor_vetoed=list(state.floor_vetoed),
                degraded=degraded,
                retries=state.retries,
                offline_devices=sorted(state.offline),
            )

        def finish(result: DecisionResult) -> None:
            if state.done:
                return
            state.done = True
            state.deadline.cancel()
            for handle in state.retry_timers.values():
                handle.cancel()
            state.retry_timers.clear()
            self._m_latency.record(self.sim.now - context.requested_at)
            self._m_verdicts[result.verdict].inc()
            for span in state.push_spans.values():
                if not span.finished:
                    span.finish(status="abandoned")
            state.span.finish(verdict=result.verdict.value,
                              degraded=result.degraded, retries=state.retries)
            callback(result)

        def cache_eligible(name: str) -> bool:
            # Live evidence always wins: a device that answered (below
            # threshold, or we would have finished) cannot vouch from
            # the cache.  The floor veto applies at grant time.
            if name in state.answered:
                return False
            if self.floor_check is not None and not self.floor_check(name):
                return False
            return True

        def resolve_without_proof(timed_out: bool) -> None:
            """Deadline hit, or every silent device is known unreachable."""
            if state.done:
                return
            if timed_out:
                self._record(state, ResilienceEventType.DECISION_TIMEOUT, context)
            if self.proximity_cache.enabled:
                proof = self.proximity_cache.fresh_proof(self.sim.now, cache_eligible)
                if proof is not None:
                    self.degraded_grants += 1
                    self._m_degraded.inc()
                    self._record(state, ResilienceEventType.DEGRADED_GRANT,
                                 context, device=proof)
                    finish(build_result(Verdict.LEGITIMATE, satisfied_by=proof,
                                        degraded=True))
                    return
                self._record(state, ResilienceEventType.DEGRADED_MISS, context)
            verdict = Verdict.TIMEOUT if not state.reports else Verdict.MALICIOUS
            finish(build_result(verdict))

        def check_unreachable() -> None:
            # Early exit: nobody left who could still answer.
            silent = state.names - state.answered
            if silent and silent <= state.offline:
                resolve_without_proof(timed_out=False)

        def on_report(report: RssiReport) -> None:
            name = report.device_name
            push_span = state.push_spans.get(name)
            if push_span is not None and not push_span.finished:
                push_span.finish(status="report", rssi=report.sample.rssi)
            entry = self._entry_for(name)
            if entry is not None:
                # Even late or duplicate reports refresh the cache: they
                # are the freshest proximity evidence the guard has.
                self.proximity_cache.update(
                    name, report.reported_at,
                    report.sample.rssi >= entry.threshold - self.rssi_margin,
                )
            if state.done or name in state.answered:
                return
            state.answered.add(name)
            timer = state.retry_timers.pop(name, None)
            if timer is not None:
                timer.cancel()
            state.reports.append(report)
            if entry is not None and self._satisfies(entry, report, state):
                finish(build_result(Verdict.LEGITIMATE, satisfied_by=name))
                return
            if len(state.answered) >= state.expected:
                finish(build_result(Verdict.MALICIOUS))
                return
            check_unreachable()

        def on_undeliverable(device) -> None:
            name = device.name
            push_span = state.push_spans.get(name)
            if push_span is not None and not push_span.finished:
                push_span.finish(status="offline")
            if state.done:
                return
            if name in state.answered or name in state.offline:
                return
            state.offline.add(name)
            self.offline_seen += 1
            self._m_offline.inc()
            self._record(state, ResilienceEventType.DEVICE_OFFLINE, context,
                         device=name, attempt=state.attempts.get(name, 0))
            timer = state.retry_timers.pop(name, None)
            if timer is not None:
                timer.cancel()
            candidate = self._next_best(state)
            if candidate is not None and state.attempts.get(candidate, 0) < max_attempts:
                self._record(state, ResilienceEventType.OFFLINE_REQUERY, context,
                             device=candidate,
                             attempt=state.attempts.get(candidate, 0) + 1)
                send(self.registry.get(candidate))
            check_unreachable()

        def on_retry_timer(name: str) -> None:
            state.retry_timers.pop(name, None)
            if state.done or name in state.answered or name in state.offline:
                return
            entry = self._entry_for(name)
            if entry is None:
                return  # unregistered mid-query
            self._record(state, ResilienceEventType.PUSH_RETRY, context,
                         device=name, attempt=state.attempts.get(name, 0) + 1)
            send(entry)

        def send(entry: RegisteredDevice) -> None:
            name = entry.name
            attempt = state.attempts.get(name, 0) + 1
            state.attempts[name] = attempt
            if attempt > 1:
                state.retries += 1
                self.retries_sent += 1
                self._m_retries.inc()
            previous = state.push_spans.get(name)
            if previous is not None and not previous.finished:
                previous.finish(status="superseded")
            state.push_spans[name] = self.tracer.begin(
                "push.roundtrip", parent=state.span, device=name, attempt=attempt,
            )
            old = state.retry_timers.pop(name, None)
            if old is not None:
                old.cancel()
            if attempt < max_attempts:
                delay = min(self.retry_cap, self.retry_base * (2 ** (attempt - 1)))
                if self.retry_rng is not None:
                    # Decorrelate retry bursts across devices; the draw
                    # comes from a dedicated stream so enabling retries
                    # perturbs no other component's randomness.
                    delay *= 0.9 + 0.2 * float(self.retry_rng.random())
                state.retry_timers[name] = self.sim.schedule(delay, on_retry_timer, name)
            self.push.request_rssi(entry.device, self.beacon, on_report,
                                   on_undeliverable=on_undeliverable)

        state.deadline = self.sim.schedule(self.timeout, resolve_without_proof, True)
        state.names = {entry.name for entry in entries}
        for entry in entries:
            send(entry)

    def _entry_for(self, device_name: str) -> Optional[RegisteredDevice]:
        if device_name in self.registry:
            return self.registry.get(device_name)
        return None

    def _next_best(self, state: "_QueryState") -> Optional[str]:
        """The most promising still-silent, reachable device.

        Rank by the proximity cache: a device that recently proved
        proximity is the best bet to prove it again; unknown-to-the-cache
        devices keep their registration order.
        """
        best_name: Optional[str] = None
        best_rank = (-1.0, -float("inf"))
        for position, entry in enumerate(self.registry.entries()):
            name = entry.name
            if name in state.answered or name in state.offline:
                continue
            cached = self.proximity_cache.entry(name)
            if cached is not None and cached[1]:
                rank = (1.0, cached[0])
            else:
                rank = (0.0, -float(position))
            if rank > best_rank:
                best_name, best_rank = name, rank
        return best_name

    def _satisfies(self, entry: RegisteredDevice, report: RssiReport, state: "_QueryState") -> bool:
        if report.sample.rssi < entry.threshold - self.rssi_margin:
            return False
        if self.floor_check is not None and not self.floor_check(entry.name):
            # Above threshold but on the wrong floor: the leak case the
            # floor tracker exists to veto (Section V-B2).
            state.floor_vetoed.append(entry.name)
            return False
        return True

    def _record(
        self,
        state: "_QueryState",
        type_: ResilienceEventType,
        context: DecisionContext,
        device: str = "",
        attempt: int = 0,
    ) -> None:
        event = ResilienceEvent(
            type=type_,
            time=self.sim.now,
            window_id=context.window_id,
            device_name=device,
            attempt=attempt,
        )
        state.span.event(type_.value, device=device, attempt=attempt)
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)


class _QueryState:
    __slots__ = ("expected", "names", "reports", "floor_vetoed", "done",
                 "deadline", "answered", "offline", "attempts", "retry_timers",
                 "retries", "span", "push_spans")

    def __init__(self, expected: int) -> None:
        self.expected = expected
        self.names: set = set()
        self.reports: List[RssiReport] = []
        self.floor_vetoed: List[str] = []
        self.done = False
        self.deadline = None
        self.answered: set = set()
        self.offline: set = set()
        self.attempts: Dict[str, int] = {}
        self.retry_timers: Dict[str, object] = {}
        self.retries = 0
        self.span = NULL_SPAN
        self.push_spans: Dict[str, object] = {}


class _PendingDecision:
    """One admitted-but-not-yet-dispatched legitimacy check."""

    __slots__ = ("context", "callback", "enqueued_at")

    def __init__(self, context: DecisionContext, callback: DecisionCallback,
                 enqueued_at: float) -> None:
        self.context = context
        self.callback = callback
        self.enqueued_at = enqueued_at


class _InflightQuery:
    """A dispatched query plus the pending commands riding on it."""

    __slots__ = ("context", "subscribers", "started_at")

    def __init__(self, context: DecisionContext, started_at: float) -> None:
        self.context = context
        self.subscribers: List[_PendingDecision] = []
        self.started_at = started_at


class DecisionCoordinator(DecisionMethod):
    """Admission control and batching in front of a decision method.

    With N speakers' commands pending concurrently, the naive pipeline
    launches N independent RSSI queries — N pushes per device for
    evidence that is identical across commands (the phone's proximity
    does not depend on which speaker heard the utterance).  The
    coordinator adds three behaviours, each provably inert while only
    one command is in flight:

    * **Batching** (``batching=True``): a command arriving while a
      query is already in flight subscribes to that query instead of
      launching its own; one phone report then settles every pending
      command at once.  Only queries younger than ``batch_window`` are
      joined, so a subscriber never inherits a verdict built mostly
      from another command's timeout budget.
    * **Prioritized scheduling** (``max_inflight`` > 0): excess queries
      wait in an earliest-deadline-first queue — the flow closest to
      its max-hold failsafe is queried next — and dispatch as slots
      free up.  A queued command whose deadline passes resolves as
      TIMEOUT without ever burning a query slot.
    * **Queue observability**: ``decision.inflight`` /
      ``decision.queue_depth`` gauges (high-water marks included) and a
      ``decision.queue_wait`` histogram feed the loadtest's knee chart.
    """

    def __init__(
        self,
        method: DecisionMethod,
        sim: Simulator,
        max_inflight: int = 0,
        batching: bool = False,
        batch_window: Optional[float] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.method = method
        self.sim = sim
        self.max_inflight = max_inflight
        self.batching = batching
        timeout = getattr(method, "timeout", 5.0)
        self.batch_window = batch_window if batch_window is not None else timeout / 2.0
        self.batched_settlements = 0
        self.queued_total = 0
        self.expired_in_queue = 0
        self._seq = 0
        self._inflight: Dict[int, _InflightQuery] = {}
        self._waiting: List[Tuple[float, int, _PendingDecision]] = []
        metrics = (obs or Observability()).metrics.scope("decision")
        self._g_inflight = metrics.gauge("inflight")
        self._g_queue = metrics.gauge("queue_depth")
        self._m_batched = metrics.counter("batched_settlements")
        self._m_queued = metrics.counter("queued")
        self._m_expired = metrics.counter("expired_in_queue")
        self._m_queue_wait = metrics.histogram("queue_wait")

    @property
    def inflight_count(self) -> int:
        """Queries currently running in the underlying method."""
        return len(self._inflight)

    @property
    def queue_depth(self) -> int:
        """Admitted commands waiting for a query slot."""
        return len(self._waiting)

    def decide(self, context: DecisionContext, callback: DecisionCallback) -> None:
        """Dispatch, subscribe to an in-flight query, or enqueue."""
        if self.batching:
            target = self._joinable_query()
            if target is not None:
                target.subscribers.append(
                    _PendingDecision(context, callback, self.sim.now))
                context.span.event(
                    "decision.batched",
                    primary_window=target.context.window_id,
                    riders=len(target.subscribers),
                )
                return
        if self.max_inflight and len(self._inflight) >= self.max_inflight:
            self._seq += 1
            heapq.heappush(
                self._waiting,
                (context.deadline, self._seq,
                 _PendingDecision(context, callback, self.sim.now)),
            )
            self.queued_total += 1
            self._m_queued.inc()
            self._g_queue.set(float(len(self._waiting)))
            context.span.event("decision.queued", depth=len(self._waiting))
            return
        self._dispatch(context, callback)

    def _joinable_query(self) -> Optional[_InflightQuery]:
        """The oldest in-flight query still fresh enough to join."""
        best: Optional[Tuple[int, _InflightQuery]] = None
        horizon = self.sim.now - self.batch_window
        for seq, entry in self._inflight.items():
            if entry.started_at < horizon:
                continue
            if best is None or seq < best[0]:
                best = (seq, entry)
        return best[1] if best is not None else None

    def _dispatch(self, context: DecisionContext, callback: DecisionCallback) -> None:
        self._seq += 1
        seq = self._seq
        entry = _InflightQuery(context, self.sim.now)
        self._inflight[seq] = entry
        self._g_inflight.set(float(len(self._inflight)))

        def done(result: DecisionResult) -> None:
            self._inflight.pop(seq, None)
            self._g_inflight.set(float(len(self._inflight)))
            callback(result)
            for rider in entry.subscribers:
                self.batched_settlements += 1
                self._m_batched.inc()
                rider.callback(replace(result, batched=True))
            self._drain()

        self.method.decide(context, done)

    def _drain(self) -> None:
        """Fill freed query slots, most urgent deadline first."""
        while self._waiting and (
            not self.max_inflight or len(self._inflight) < self.max_inflight
        ):
            deadline, _seq, pending = heapq.heappop(self._waiting)
            self._g_queue.set(float(len(self._waiting)))
            if deadline <= self.sim.now:
                # The handler's failsafe already resolved this window;
                # don't burn a slot proving what nobody is waiting for.
                self.expired_in_queue += 1
                self._m_expired.inc()
                pending.callback(DecisionResult(verdict=Verdict.TIMEOUT))
                continue
            self._m_queue_wait.record(self.sim.now - pending.enqueued_at)
            self._dispatch(pending.context, pending.callback)


class DecisionModule:
    """Holds the active method; the extensibility point of Section VII."""

    def __init__(self, method: DecisionMethod) -> None:
        self.method = method
        self.decisions_made = 0

    def decide(self, context: DecisionContext, callback: DecisionCallback) -> None:
        """Delegate to the active method."""
        self.decisions_made += 1
        self.method.decide(context, callback)
