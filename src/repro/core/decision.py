"""The Decision Module: a pluggable legitimacy-check framework.

The paper's Decision Module "is designed to have a flexible framework
that can utilize various methods to check the legitimacy of a voice
command" (Section IV-C); its current method is Bluetooth-RSSI
proximity.  :class:`DecisionMethod` is the plug-in interface;
:class:`RssiDecisionMethod` implements the paper's method including the
multi-user OR-rule and the floor-level veto.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.registry import DeviceRegistry, RegisteredDevice
from repro.home.push import PushService, RssiReport
from repro.radio.bluetooth import BluetoothBeacon
from repro.sim.simulator import Simulator


class Verdict(enum.Enum):
    """Decision about one held voice command."""

    LEGITIMATE = "legitimate"
    MALICIOUS = "malicious"
    TIMEOUT = "timeout"  # no device answered in time


@dataclass
class DecisionContext:
    """What the Decision Module knows about the pending command."""

    window_id: int
    speaker_ip: str
    requested_at: float


@dataclass
class DecisionResult:
    """Verdict plus the evidence behind it."""

    verdict: Verdict
    reports: List[RssiReport] = field(default_factory=list)
    satisfied_by: Optional[str] = None  # device that proved proximity
    floor_vetoed: List[str] = field(default_factory=list)

    @property
    def legitimate(self) -> bool:
        """Whether the verdict allows the command."""
        return self.verdict is Verdict.LEGITIMATE


DecisionCallback = Callable[[DecisionResult], None]
FloorCheck = Callable[[str], bool]  # device name -> on speaker's floor?


class DecisionMethod:
    """Interface for legitimacy-check methods."""

    def decide(self, context: DecisionContext, callback: DecisionCallback) -> None:
        """Asynchronously decide; ``callback(result)`` exactly once."""
        raise NotImplementedError


class RssiDecisionMethod(DecisionMethod):
    """The paper's Bluetooth-RSSI proximity method (Figure 5).

    On a query, push an RSSI-measurement request to every registered
    device simultaneously; the command is legitimate as soon as one
    device reports RSSI above its threshold *and* passes the floor
    check.  If every device has answered below threshold the command is
    malicious; if nothing answers before the timeout, the verdict is
    TIMEOUT (policy decides what that means).
    """

    def __init__(
        self,
        sim: Simulator,
        push: PushService,
        registry: DeviceRegistry,
        beacon: BluetoothBeacon,
        timeout: float = 5.0,
        rssi_margin: float = 0.0,
        floor_check: Optional[FloorCheck] = None,
    ) -> None:
        self.sim = sim
        self.push = push
        self.registry = registry
        self.beacon = beacon
        self.timeout = timeout
        self.rssi_margin = rssi_margin
        self.floor_check = floor_check
        self.queries_issued = 0

    def decide(self, context: DecisionContext, callback: DecisionCallback) -> None:
        """Query all registered devices; legitimate on the first satisfying report."""
        entries = self.registry.entries()
        if not entries:
            # No registered users: everything is treated as malicious,
            # mirroring a guard that has not been enrolled yet.
            callback(DecisionResult(verdict=Verdict.MALICIOUS))
            return
        self.queries_issued += 1
        state = _QueryState(expected=len(entries))

        def finish(result: DecisionResult) -> None:
            if state.done:
                return
            state.done = True
            state.deadline.cancel()
            callback(result)

        def on_report(report: RssiReport) -> None:
            if state.done:
                return
            state.reports.append(report)
            entry = self._entry_for(report.device_name)
            if entry is not None and self._satisfies(entry, report, state):
                finish(DecisionResult(
                    verdict=Verdict.LEGITIMATE,
                    reports=list(state.reports),
                    satisfied_by=report.device_name,
                    floor_vetoed=list(state.floor_vetoed),
                ))
                return
            if len(state.reports) >= state.expected:
                finish(DecisionResult(
                    verdict=Verdict.MALICIOUS,
                    reports=list(state.reports),
                    floor_vetoed=list(state.floor_vetoed),
                ))

        def on_timeout() -> None:
            verdict = Verdict.TIMEOUT if not state.reports else Verdict.MALICIOUS
            finish(DecisionResult(
                verdict=verdict,
                reports=list(state.reports),
                floor_vetoed=list(state.floor_vetoed),
            ))

        state.deadline = self.sim.schedule(self.timeout, on_timeout)
        self.push.request_group([e.device for e in entries], self.beacon, on_report)

    def _entry_for(self, device_name: str) -> Optional[RegisteredDevice]:
        if device_name in self.registry:
            return self.registry.get(device_name)
        return None

    def _satisfies(self, entry: RegisteredDevice, report: RssiReport, state: "_QueryState") -> bool:
        if report.sample.rssi < entry.threshold - self.rssi_margin:
            return False
        if self.floor_check is not None and not self.floor_check(entry.name):
            # Above threshold but on the wrong floor: the leak case the
            # floor tracker exists to veto (Section V-B2).
            state.floor_vetoed.append(entry.name)
            return False
        return True


class _QueryState:
    __slots__ = ("expected", "reports", "floor_vetoed", "done", "deadline")

    def __init__(self, expected: int) -> None:
        self.expected = expected
        self.reports: List[RssiReport] = []
        self.floor_vetoed: List[str] = []
        self.done = False
        self.deadline = None


class DecisionModule:
    """Holds the active method; the extensibility point of Section VII."""

    def __init__(self, method: DecisionMethod) -> None:
        self.method = method
        self.decisions_made = 0

    def decide(self, context: DecisionContext, callback: DecisionCallback) -> None:
        """Delegate to the active method."""
        self.decisions_made += 1
        self.method.decide(context, callback)
