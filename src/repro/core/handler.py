"""The Traffic Handler sub-module (paper Section IV-B2).

Acts on the recognizer's classifications: a *command* window stays held
while the Decision Module is queried, then its records are released to
the cloud (legitimate) or discarded (malicious); *response*/*unknown*
windows are released immediately, keeping the user-visible delay of a
mis-suspected spike to a few packets' worth of time.

Discarded records leave the speaker's next forwarded record out of TLS
sequence, so the cloud closes the session — the command can never
execute, the paper's Figure 4 case III.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import VoiceGuardConfig
from repro.core.decision import DecisionContext, DecisionModule, DecisionResult, Verdict
from repro.core.events import TrafficClass
from repro.core.recognition import Window
from repro.net.packet import Protocol
from repro.net.proxy import ForwarderDecision, ProxiedFlow, TransparentProxy, UdpForwarder
from repro.obs.tracer import Observability
from repro.sim.simulator import Simulator


class TrafficHandler:
    """Resolves windows: release or discard their held records."""

    def __init__(
        self,
        sim: Simulator,
        config: VoiceGuardConfig,
        proxy: TransparentProxy,
        udp_forwarder: Optional[UdpForwarder],
        decision: DecisionModule,
        obs: Optional[Observability] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.proxy = proxy
        self.udp_forwarder = udp_forwarder
        self.decision = decision
        self.commands_released = 0
        self.commands_blocked = 0
        self.benign_windows_released = 0
        self.overflow_resolutions = 0
        # Command windows whose records are parked, keyed by flow id in
        # arrival order: the overflow policy sheds the oldest pending
        # window on the flow whose hold the budget refused.
        self._pending_windows: Dict[int, List[Window]] = {}
        metrics = (obs or Observability()).metrics.scope("proxy")
        self._m_released = metrics.counter("commands_released")
        self._m_blocked = metrics.counter("commands_blocked")
        self._m_benign = metrics.counter("benign_released")
        self._m_failsafe = metrics.counter("failsafe_resolutions")
        self._m_overflow = metrics.counter("overflow_resolutions")
        self._m_hold = metrics.histogram("hold_duration")
        self._m_held_records = metrics.counter("records_resolved")

    # -- recognizer callback ------------------------------------------------
    def on_window_classified(self, window: Window, classification: TrafficClass) -> None:
        """Recognizer callback: release benign windows, query commands."""
        if classification is TrafficClass.COMMAND:
            self._query_decision(window)
        else:
            # Response or unknown spike: let it through immediately.
            self.benign_windows_released += 1
            self._m_benign.inc()
            self._release(window)

    # -- decision plumbing -----------------------------------------------------
    def _query_decision(self, window: Window) -> None:
        context = DecisionContext(
            window_id=window.window_id,
            speaker_ip=str(window.speaker_ip),
            requested_at=self.sim.now,
            span=window.span,
            deadline=self.sim.now + self.config.max_hold,
        )
        self._pending_windows.setdefault(window.flow.flow_id, []).append(window)

        def on_result(result: DecisionResult) -> None:
            if window.resolved:
                return  # the max-hold failsafe beat us to it
            if window.event is not None:
                window.event.verdict = result.verdict
                window.event.verdict_at = self.sim.now
                window.event.rssi_reports = list(result.reports)
            window.span.set(verdict=result.verdict.value)
            if result.verdict is Verdict.LEGITIMATE:
                self.commands_released += 1
                self._m_released.inc()
                self._release(window)
            elif result.verdict is Verdict.MALICIOUS:
                self.commands_blocked += 1
                self._m_blocked.inc()
                self._discard(window)
            else:  # TIMEOUT
                if self.config.fail_open:
                    self.commands_released += 1
                    self._m_released.inc()
                    self._release(window)
                else:
                    self.commands_blocked += 1
                    self._m_blocked.inc()
                    self._discard(window)

        def failsafe() -> None:
            # Never hold a flow past max_hold, whatever went wrong.
            if not window.resolved:
                self._m_failsafe.inc()
                window.span.event("handler.max_hold_failsafe")
                if self.config.fail_open:
                    self._release(window)
                else:
                    self._discard(window)

        self.sim.schedule(self.config.max_hold, failsafe)
        self.decision.decide(context, on_result)

    # -- backpressure ---------------------------------------------------------
    def on_hold_overflow(self, flow: ProxiedFlow) -> ForwarderDecision:
        """The hold budget refused a record on ``flow``: shed load.

        Resolves the oldest pending command window on the flow by the
        configured overflow policy — fail-open releases it unchecked,
        fail-closed discards it — freeing its held bytes, and returns
        the fate of the record that could not be held.  The window's
        decision query keeps running; its eventual verdict finds the
        window already resolved and is ignored.
        """
        fail_open = self.config.overflow_releases
        verdict = ForwarderDecision.FORWARD if fail_open else ForwarderDecision.DROP
        windows = self._pending_windows.get(flow.flow_id)
        if not windows:
            return verdict
        window = windows[0]
        self.overflow_resolutions += 1
        self._m_overflow.inc()
        window.span.event("handler.hold_overflow",
                          policy="fail_open" if fail_open else "fail_closed")
        if fail_open:
            self.commands_released += 1
            self._m_released.inc()
            self._release(window)
        else:
            self.commands_blocked += 1
            self._m_blocked.inc()
            self._discard(window)
        return verdict

    # -- actuation ------------------------------------------------------------
    def _unregister(self, window: Window) -> None:
        windows = self._pending_windows.get(window.flow.flow_id)
        if windows is None:
            return
        try:
            windows.remove(window)
        except ValueError:
            return
        if not windows:
            del self._pending_windows[window.flow.flow_id]

    def _release(self, window: Window) -> None:
        self._unregister(window)
        count = self._release_flow(window.flow)
        window.released = True
        self._finish_spans(window, "released", count)
        if window.event is not None:
            window.event.released_at = self.sim.now
            window.event.held_records += count

    def _discard(self, window: Window) -> None:
        self._unregister(window)
        count = self._discard_flow(window.flow)
        window.discarded = True
        self._finish_spans(window, "discarded", count)
        if window.event is not None:
            window.event.discarded_at = self.sim.now
            window.event.held_records += count

    def _finish_spans(self, window: Window, outcome: str, held: int) -> None:
        self._m_held_records.inc(held)
        self._m_hold.record(self.sim.now - window.opened_at)
        window.hold_span.finish(records=held, outcome=outcome)
        window.span.finish(outcome=outcome)

    def _release_flow(self, flow: ProxiedFlow) -> int:
        if flow.protocol is Protocol.UDP:
            if self.udp_forwarder is None:
                return 0
            return self.udp_forwarder.release_held(flow)
        return self.proxy.release_held(flow)

    def _discard_flow(self, flow: ProxiedFlow) -> int:
        if flow.protocol is Protocol.UDP:
            if self.udp_forwarder is None:
                return 0
            return self.udp_forwarder.discard_held(flow)
        return self.proxy.discard_held(flow)
