"""Voice Command Traffic Recognition (paper Section IV-B1).

The recognizer watches the client-side application-data records of each
proxied flow and groups them into *spike windows*: a window opens with
the first non-heartbeat record after an idle gap and absorbs records
until the gap reappears.  Windows are classified from their first few
packet lengths:

* **Echo Dot** — a window is a *command* (phase 1) if one of the marker
  lengths 138/75 appears among its first five packets, or its first
  packet is 250-650 bytes followed by one of three fixed patterns; it
  is a *response* (phase 2) if a 77-byte record immediately followed by
  a 33-byte record appears within the first seven packets; anything
  else is unknown and released.
* **Google Home Mini** — the connection is on-demand, so *any* spike
  after idle is a command.

Flows are matched to cloud servers two ways: DNS snooping, and — for
the Echo Dot, whose AVS server changes IP without DNS — the 16-packet
connection signature.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.core.config import VoiceGuardConfig
from repro.core.events import CommandEvent, GuardLog, TrafficClass
from repro.net.addresses import IPv4Address
from repro.net.packet import Packet, Protocol
from repro.net.proxy import ForwarderDecision, ProxiedFlow
from repro.obs.tracer import NULL_SPAN, Observability
from repro.sim.simulator import Simulator
from repro.speakers import signatures as sig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.recognizers import WindowRecognizer


class SpeakerProfile(enum.Enum):
    """Which speaker's traffic grammar a client IP speaks."""

    ECHO = "echo"
    GOOGLE = "google"


@dataclass
class Window:
    """One spike window: consecutive records without an idle gap."""

    window_id: int
    flow: ProxiedFlow
    speaker_ip: IPv4Address
    opened_at: float
    last_packet_time: float
    lengths: List[int] = field(default_factory=list)
    # Arrival time of each record in ``lengths`` (sim seconds).  Fed to
    # pluggable window recognizers; never serialized into events or
    # golden fixtures, so recording them changes no baseline.
    offsets: List[float] = field(default_factory=list)
    classification: Optional[TrafficClass] = None
    classified_at: Optional[float] = None
    released: bool = False
    discarded: bool = False
    event: Optional[CommandEvent] = None
    # Observability: the per-window span tree (no-op objects when the
    # tracer is disabled, so downstream code stays unconditional).
    span: object = NULL_SPAN
    classify_span: object = NULL_SPAN
    hold_span: object = NULL_SPAN

    @property
    def pending(self) -> bool:
        """Whether the window is still unclassified."""
        return self.classification is None

    @property
    def resolved(self) -> bool:
        """Whether held records were released or discarded."""
        return self.released or self.discarded


@dataclass
class _FlowState:
    flow: ProxiedFlow
    prefix: List[int] = field(default_factory=list)
    window: Optional[Window] = None
    last_data_time: Optional[float] = None  # non-heartbeat app data
    signature_matched: bool = False
    signature_failed: bool = False


@dataclass
class _SpeakerState:
    profile: SpeakerProfile
    avs_ip: Optional[IPv4Address] = None
    avs_ip_source: Optional[str] = None  # "dns" | "signature"
    google_ips: Set[IPv4Address] = field(default_factory=set)


ClassifiedCallback = Callable[[Window, TrafficClass], None]


def classify_echo_lengths(lengths: List[int]) -> Optional[TrafficClass]:
    """Incremental Echo Dot phase classifier.

    Evidence is evaluated in *stream order* — exactly as a live
    recognizer sees packets — so whichever signal completes first wins:
    a marker length (138/75) within the first five packets, the 77->33
    pair within the first seven, or a fixed pattern completing at the
    fifth packet.  Returns ``None`` while undecidable and UNKNOWN once
    seven packets yield nothing.
    """
    low, high = sig.PHASE1_FIRST_RANGE
    head = lengths[: sig.PHASE2_MARKER_MAX_INDEX]
    for index, length in enumerate(head):
        if index < 5 and length in sig.PHASE1_MARKERS:
            return TrafficClass.COMMAND
        if index >= 1 and (head[index - 1], length) == sig.PHASE2_MARKER_PAIR:
            return TrafficClass.RESPONSE
        if (
            index == 4
            and low <= head[0] <= high
            and tuple(head[1:5]) in sig.PHASE1_FIXED_PATTERNS
        ):
            return TrafficClass.COMMAND
    if len(lengths) >= sig.PHASE2_MARKER_MAX_INDEX:
        return TrafficClass.UNKNOWN
    return None


def finalize_echo_lengths(lengths: List[int]) -> TrafficClass:
    """Classification when the spike ended early (fewer than 7 packets)."""
    decided = classify_echo_lengths(lengths)
    return decided if decided is not None else TrafficClass.UNKNOWN


class TrafficRecognition:
    """Per-speaker traffic recognizer over proxied flows."""

    def __init__(
        self,
        sim: Simulator,
        config: VoiceGuardConfig,
        log: GuardLog,
        obs: Optional[Observability] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.log = log
        obs = obs or Observability()
        self.tracer = obs.tracer
        metrics = obs.metrics.scope("recognition")
        self._m_windows = metrics.counter("windows_opened")
        self._m_classified = {
            TrafficClass.COMMAND: metrics.counter("classified.command"),
            TrafficClass.RESPONSE: metrics.counter("classified.response"),
            TrafficClass.UNKNOWN: metrics.counter("classified.unknown"),
        }
        self._m_classify_packets = metrics.histogram(
            "classify_packets", edges=(1, 2, 3, 4, 5, 6, 7))
        self._m_classify_latency = metrics.histogram("classify_latency")
        self.on_classified: Optional[ClassifiedCallback] = None
        self._speakers: Dict[IPv4Address, _SpeakerState] = {}
        self._flows: Dict[int, _FlowState] = {}
        # Window ids are per-recognizer (not module-global) so repeated
        # runs in one process number their windows identically.
        self._window_ids = itertools.count(1)
        self.windows_opened = 0
        # Ablation knob: with signature tracking off, the guard only
        # learns AVS IPs from DNS and loses the server after silent
        # reconnects (the failure mode Section IV-B describes).
        self.use_signature_tracking = True
        # Optional adaptive learner (paper Section VII's future work):
        # when set, its adopted signature replaces the static constant,
        # surviving firmware changes to the connect sequence.
        self.signature_learner = None  # type: Optional["SignatureLearner"]
        # Pluggable per-profile window recognizers (see
        # repro.core.recognizers).  Empty by default: the built-in
        # signature matcher below runs byte-identically to before the
        # registry existed.  A learned recognizer abstains while the
        # spike is filling, so its windows settle through the existing
        # classification-timeout / idle-gap machinery via finalize().
        self.window_recognizers: Dict[SpeakerProfile, "WindowRecognizer"] = {}

    # -- setup ---------------------------------------------------------------
    def add_speaker(self, ip: IPv4Address, profile: SpeakerProfile) -> None:
        """Register a protected speaker's traffic grammar."""
        self._speakers[ip] = _SpeakerState(profile=profile)

    def speaker_state(self, ip: IPv4Address) -> Optional[_SpeakerState]:
        """Internal state for a speaker IP (None if unknown)."""
        return self._speakers.get(ip)

    def set_window_recognizer(self, profile: SpeakerProfile,
                              recognizer: "WindowRecognizer") -> None:
        """Install a pluggable recognizer for one speaker profile.

        Replaces the built-in signature matcher for every protected
        speaker with that profile; pass-through wiring otherwise stays
        identical (window lifecycle, holds, events).
        """
        self.window_recognizers[profile] = recognizer

    # -- DNS snooping ------------------------------------------------------------
    def observe_snoop(self, packet: Packet) -> None:
        """Inspect tapped packets for DNS answers (Figure 2's snooping)."""
        domain = packet.meta.get("dns_response")
        if domain is None:
            return
        answers = packet.meta.get("dns_answers") or []
        if not answers:
            return
        speaker = self._speakers.get(packet.dst.ip)
        if speaker is None:
            return
        if speaker.profile is SpeakerProfile.ECHO and domain == sig.AVS_DOMAIN:
            speaker.avs_ip = answers[0]
            speaker.avs_ip_source = "dns"
        elif speaker.profile is SpeakerProfile.GOOGLE and domain == sig.GOOGLE_DOMAIN:
            speaker.google_ips.add(answers[0])

    # -- main entry (the proxy's record policy) ------------------------------------
    def observe(self, flow: ProxiedFlow, packet: Packet) -> ForwarderDecision:
        """Classify one client record; returns the forwarding decision."""
        speaker = self._speakers.get(flow.client.ip)
        if speaker is None:
            return ForwarderDecision.FORWARD
        fs = self._flows.get(flow.flow_id)
        if fs is None:
            fs = _FlowState(flow=flow)
            self._flows[flow.flow_id] = fs
        now = self.sim.now

        if speaker.profile is SpeakerProfile.ECHO:
            self._track_signature(speaker, fs, packet, now)
            relevant = speaker.avs_ip is not None and flow.server.ip == speaker.avs_ip
        else:
            relevant = flow.server.ip in speaker.google_ips
        if not relevant:
            return ForwarderDecision.FORWARD

        self._expire_stale_window(fs, now)
        heartbeat = packet.payload_len == self.config.heartbeat_len

        if fs.window is None:
            if heartbeat:
                return ForwarderDecision.FORWARD
            self._open_window(speaker, fs, packet, now)
            return self._window_action(fs.window)

        window = fs.window
        window.last_packet_time = now
        if not heartbeat:
            fs.last_data_time = now
        if window.pending and not heartbeat:
            window.lengths.append(packet.payload_len)
            window.offsets.append(now)
            self._try_classify(speaker, window)
        return self._window_action(window)

    # -- lifecycle ------------------------------------------------------------
    def on_flow_closed(self, flow: ProxiedFlow) -> None:
        """Forget a closed flow's tracking state.

        Long campaign runs open thousands of short-lived connections;
        without pruning, ``_flows`` grows one entry per flow for the
        life of the guard.  A still-pending window is unaffected: the
        scheduled classification check holds its own reference and
        settles it normally.
        """
        self._flows.pop(flow.flow_id, None)

    def tracked_flow_count(self) -> int:
        """Number of flows currently holding recognizer state."""
        return len(self._flows)

    # -- window mechanics ------------------------------------------------------------
    def _open_window(self, speaker: _SpeakerState, fs: _FlowState, packet: Packet, now: float) -> None:
        window = Window(
            window_id=next(self._window_ids),
            flow=fs.flow,
            speaker_ip=fs.flow.client.ip,
            opened_at=now,
            last_packet_time=now,
        )
        window.event = self.log.add(CommandEvent(
            window_id=window.window_id,
            flow_id=fs.flow.flow_id,
            speaker_ip=str(fs.flow.client.ip),
            protocol=fs.flow.protocol.value,
            opened_at=now,
        ))
        window.span = self.tracer.begin(
            "command.window",
            window_id=window.window_id,
            flow_id=fs.flow.flow_id,
            speaker_ip=str(fs.flow.client.ip),
            protocol=fs.flow.protocol.value,
        )
        window.classify_span = self.tracer.begin(
            "recognition.classify", parent=window.span)
        # Records are parked from the very first packet of a pending
        # window, so the hold phase starts with the window itself.
        window.hold_span = self.tracer.begin("proxy.hold", parent=window.span)
        fs.window = window
        fs.last_data_time = now
        self.windows_opened += 1
        self._m_windows.inc()
        window.lengths.append(packet.payload_len)
        window.offsets.append(now)
        self._try_classify(speaker, window)
        if window.pending:
            self._schedule_pending_check(fs, window)

    def _window_action(self, window: Window) -> ForwarderDecision:
        if window.resolved:
            if window.discarded and window.flow.protocol is Protocol.UDP:
                # QUIC retransmits past a one-shot drop; keep dropping
                # the blocked flow's datagrams.
                return ForwarderDecision.DROP
            return ForwarderDecision.FORWARD
        if window.classification in (TrafficClass.RESPONSE, TrafficClass.UNKNOWN):
            # Classified benign: the handler released held records in the
            # classification callback; current packet flows through.
            return ForwarderDecision.FORWARD
        # Pending, or a command awaiting its verdict: park everything.
        return ForwarderDecision.HOLD

    def _try_classify(self, speaker: _SpeakerState, window: Window) -> None:
        recognizer = self.window_recognizers.get(speaker.profile)
        if recognizer is not None:
            decided = recognizer.observe(window.lengths, window.offsets)
        elif speaker.profile is SpeakerProfile.GOOGLE:
            decided = TrafficClass.COMMAND
        else:
            decided = classify_echo_lengths(window.lengths)
        if decided is not None and window.pending:
            self._classify(window, decided)

    def _finalize_window(self, window: Window) -> TrafficClass:
        """Decide a window whose spike ended before an early decision."""
        speaker = self._speakers.get(window.speaker_ip)
        if speaker is not None:
            recognizer = self.window_recognizers.get(speaker.profile)
            if recognizer is not None:
                return recognizer.finalize(window.lengths, window.offsets)
        return finalize_echo_lengths(window.lengths)

    def _classify(self, window: Window, classification: TrafficClass) -> None:
        window.classification = classification
        window.classified_at = self.sim.now
        window.classify_span.finish(
            classification=classification.value, packets=len(window.lengths))
        window.span.set(classification=classification.value)
        self._m_classified[classification].inc()
        self._m_classify_packets.record(len(window.lengths))
        self._m_classify_latency.record(self.sim.now - window.opened_at)
        if window.event is not None:
            window.event.classification = classification
            window.event.classified_at = self.sim.now
            window.event.classify_packet_count = len(window.lengths)
        if self.on_classified is not None:
            self.on_classified(window, classification)

    def _schedule_pending_check(self, fs: _FlowState, window: Window) -> None:
        """Resolve windows whose spike ends before seven packets."""

        def check() -> None:
            if fs.window is not window or not window.pending:
                return
            idle = self.sim.now - window.last_packet_time
            remaining = self.config.classification_timeout - idle
            if remaining <= 1e-6:
                self._classify(window, self._finalize_window(window))
            else:
                # Never reschedule closer than 1 ms: tiny float residues
                # would otherwise freeze simulated time in place.
                self.sim.schedule(max(remaining, 0.001), check)

        self.sim.schedule(self.config.classification_timeout, check)

    def _expire_stale_window(self, fs: _FlowState, now: float) -> None:
        window = fs.window
        if window is None:
            return
        if now - window.last_packet_time > self.config.idle_gap:
            if window.pending:
                # Spike ended without enough packets and the timer has
                # not fired yet; settle it before opening a new window.
                self._classify(window, self._finalize_window(window))
            fs.window = None

    # -- AVS signature tracking ------------------------------------------------------------
    def _track_signature(
        self, speaker: _SpeakerState, fs: _FlowState, packet: Packet, now: float
    ) -> None:
        if not self.use_signature_tracking:
            return
        if fs.signature_matched:
            return
        signature = self._active_signature()
        if len(fs.prefix) < len(signature):
            fs.prefix.append(packet.payload_len)
        # Feed the adaptive learner from flows whose server identity is
        # independently confirmed by DNS (never from signature matches —
        # that would let the learner confirm itself).
        if (
            self.signature_learner is not None
            and speaker.avs_ip_source == "dns"
            and speaker.avs_ip is not None
            and fs.flow.server.ip == speaker.avs_ip
        ):
            self.signature_learner.observe_confirmed_flow(fs.flow, packet, now)
        if fs.signature_failed:
            return
        index = len(fs.prefix) - 1
        if fs.prefix[index] != signature[index]:
            fs.signature_failed = True
            return
        if len(fs.prefix) == len(signature):
            fs.signature_matched = True
            speaker.avs_ip = fs.flow.server.ip
            speaker.avs_ip_source = "signature"

    def _active_signature(self):
        learner = self.signature_learner
        if learner is not None and learner.active is not None:
            return learner.active.lengths
        return sig.AVS_CONNECT_SIGNATURE
