"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``report``      — regenerate every table and figure into one text report
``table``       — one of table1 | table2 | table3 | table4
``fig``         — one of 3 | 4 | 6 | 7 | 8 | 9 | 10
``campaign``    — the multi-home media campaign experiment
``fleet``       — stream a synthesized fleet of 10k-1M homes (fleet tables)
``fleet-validate`` — cross-validate fast vs full fleet fidelity (KS + χ²)
``cache``       — experiment-cache stats; ``--prune`` reclaims disk
``endurance``   — the hold-endurance sweep
``resilience``  — fault rate x retry policy sweep (availability under faults)
``loadtest``    — bursty multi-speaker load: throughput vs hold-time tail
``recognition-robustness`` — matcher x traffic-morphing adversary accuracy grid
``trace``       — run one traced scenario; waterfall + phase timings from spans
``bench-rssi``  — microbenchmark the RSSI kernel, write BENCH_rssi.json
``bench-sim``   — legacy-vs-current sim-kernel bench, write BENCH_sim.json
``profile``     — cProfile a scenario workload (the bench's companion tool)
``demo``        — the quickstart scenario, narrated
"""

from __future__ import annotations

import argparse
import sys


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    report = generate_report(scale=args.scale, seed=args.seed,
                             workers=args.workers,
                             use_cache=not args.no_cache)
    print(report.render())
    if args.workers != 1:
        from repro.analysis.reporting import render_task_timings

        print(render_task_timings(report.timings), file=sys.stderr)
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(report.render(), encoding="utf-8")
        print(f"(written to {args.output})")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.which == "table1":
        from repro.experiments.table1 import run_table1

        print(run_table1(seed=args.seed).render())
        return 0
    from repro.experiments.rssi_tables import run_rssi_table

    testbed = {"table2": "house", "table3": "apartment", "table4": "office"}[args.which]
    result = run_rssi_table(testbed, seed=args.seed, scale=args.scale,
                            workers=args.workers, use_cache=not args.no_cache)
    print(result.render_with_paper())
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    which = args.which
    seed = args.seed
    if which == "3":
        from repro.experiments.fig3 import run_fig3

        print(run_fig3(seed=seed).render())
    elif which == "4":
        from repro.experiments.fig4 import run_fig4

        print(run_fig4(seed=seed).render())
    elif which == "6":
        from repro.experiments.fig6 import corpus_report, run_fig6

        print(corpus_report())
        print(run_fig6("echo", seed=seed).render())
        print(run_fig6("google", seed=seed).render())
    elif which == "7":
        from repro.experiments.fig7 import run_fig7

        for kind in ("echo", "google"):
            print(run_fig7(kind, seed=seed).render())
    elif which in ("8", "9"):
        from repro.experiments.rssi_maps import run_rssi_map

        deployment = 0 if which == "8" else 1
        for testbed in ("house", "apartment", "office"):
            print(run_rssi_map(testbed, deployment, seed=seed).render())
            print()
    elif which == "10":
        from repro.experiments.fig10 import run_fig10

        print(run_fig10(seed=seed).render())
    else:  # pragma: no cover - argparse restricts choices
        return 2
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import run_campaign

    print(run_campaign(homes=args.homes, seed=args.seed,
                       workers=args.workers,
                       use_cache=not args.no_cache).render())
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.experiments.fleet import FleetConfig, run_fleet
    from repro.experiments.synthesis import PopulationModel

    population = PopulationModel(attack_prevalence=args.attack_prevalence)
    config = FleetConfig(
        homes=args.homes,
        shards=args.shards,
        seed=args.seed,
        chunk_size=args.chunk_size,
        fidelity=args.fidelity,
        full_build=args.full_build,
        population=population,
    )
    result = run_fleet(config, workers=args.workers, dispatch=args.dispatch,
                       window=args.window,
                       progress=True if args.progress else None)
    print(result.render())
    print(result.render_throughput(), file=sys.stderr)
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(result.render() + "\n",
                                             encoding="utf-8")
        print(f"(written to {args.output})")
    return 0


def _cmd_fleet_validate(args: argparse.Namespace) -> int:
    from repro.experiments.fleet_validate import run_fleet_validate

    result = run_fleet_validate(
        homes=args.homes,
        shards=args.shards,
        seed=args.seed,
        workers=args.workers,
        full_build=args.full_build,
        progress=True if args.progress else None,
    )
    print(result.render())
    print(result.render_throughput(), file=sys.stderr)
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(result.render() + "\n",
                                             encoding="utf-8")
        print(f"(written to {args.output})")
    if args.strict and not result.all_passed:
        print("FAIL: a testbed's fast-vs-full statistics exceeded the "
              "1% critical values", file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import cache_stats, prune_cache

    if args.prune:
        report = prune_cache(cache_dir=args.cache_dir,
                             keep_days=args.keep_days)
        print(f"cache {report['path']}: removed {report['removed']} entries, "
              f"reclaimed {report['bytes_reclaimed']:,} bytes "
              f"({report['kept']} kept)")
        return 0
    stats = cache_stats(cache_dir=args.cache_dir)
    print(f"cache {stats['path']}: {stats['entries']} entries, "
          f"{stats['bytes']:,} bytes")
    return 0


def _cmd_endurance(args: argparse.Namespace) -> int:
    from repro.experiments.hold_endurance import run_hold_endurance

    print(run_hold_endurance(seed=args.seed, workers=args.workers,
                             use_cache=not args.no_cache).render())
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    from repro.experiments.resilience import TESTBEDS, run_resilience

    testbeds = TESTBEDS if args.testbed == "all" else (args.testbed,)
    result = run_resilience(seed=args.seed, scale=args.scale, testbeds=testbeds,
                            workers=args.workers, use_cache=not args.no_cache)
    print(result.render())
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(result.render() + "\n", encoding="utf-8")
        print(f"(written to {args.output})")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.experiments.loadtest import run_loadtest

    result = run_loadtest(
        seed=args.seed,
        smoke=args.smoke,
        utterances=args.utterances,
        workers=args.workers,
        use_cache=not args.no_cache,
    )
    print(result.render())
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(result.render() + "\n",
                                             encoding="utf-8")
        print(f"(written to {args.output})")
    return 0


def _cmd_recognition_robustness(args: argparse.Namespace) -> int:
    from repro.experiments.recognition_robustness import run_recognition_robustness

    result = run_recognition_robustness(
        seed=args.seed,
        smoke=args.smoke,
        workers=args.workers,
        use_cache=not args.no_cache,
    )
    print(result.render())
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(result.render() + "\n",
                                             encoding="utf-8")
        print(f"(written to {args.output})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.trace import run_trace

    report = run_trace(
        testbed_name=args.scenario,
        speaker_kind=args.speaker,
        seed=args.seed,
        legit=args.commands,
        attacks=args.attacks,
    )
    print(report.render())
    if args.jsonl:
        path = report.write_jsonl(args.jsonl)
        print(f"(spans written to {path})")
    return 0


def _cmd_bench_rssi(args: argparse.Namespace) -> int:
    from repro.experiments.bench_rssi import render_bench, run_bench_rssi, write_bench

    payload = run_bench_rssi(
        testbed_name=args.testbed, seed=args.seed, min_seconds=args.seconds
    )
    print(render_bench(payload))
    if args.output:
        write_bench(args.output, payload)
        print(f"(written to {args.output})")
    return 0


def _cmd_bench_sim(args: argparse.Namespace) -> int:
    from repro.experiments.bench_sim import render_bench, run_bench_sim, write_bench

    payload = run_bench_sim(seed=args.seed, repeats=args.repeats,
                            smoke=args.smoke)
    print(render_bench(payload))
    if args.output:
        write_bench(args.output, payload)
        print(f"(written to {args.output})")
    if not args.smoke and payload["speedups"]["seven_day"] < payload["seven_day_floor"]:
        print(f"FAIL: seven_day speedup {payload['speedups']['seven_day']}x "
              f"below the {payload['seven_day_floor']}x floor", file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.experiments.profile_scenario import render_profile, run_profile

    result = run_profile(
        testbed_name=args.scenario,
        speaker_kind=args.speaker,
        seed=args.seed,
        counts=(args.commands, args.attacks),
        seven_day=args.seven_day,
        legacy=args.legacy,
        top=args.top,
        sort=args.sort,
    )
    print(render_profile(result))
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(render_profile(result) + "\n",
                                             encoding="utf-8")
        print(f"(written to {args.output})")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import runpy
    import pathlib

    quickstart = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if quickstart.exists():
        runpy.run_path(str(quickstart), run_name="__main__")
        return 0
    print("examples/quickstart.py not found; run from a source checkout", file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="VoiceGuard (DSN 2023) reproduction toolkit",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=3)
    # Parallel-engine knobs, shared by the fan-out commands.
    parallel = argparse.ArgumentParser(add_help=False)
    parallel.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for independent runs (0 = one per CPU; "
             "1 = serial, identical to the historical behaviour)")
    parallel.add_argument(
        "--no-cache", action="store_true",
        help="recompute instead of reusing cached results "
             "($REPRO_CACHE_DIR or ~/.cache/repro/experiments)")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", parents=[common, parallel],
                            help="regenerate everything")
    report.add_argument("--scale", type=float, default=0.3)
    report.add_argument("--output", default=None)
    report.set_defaults(func=_cmd_report)

    table = sub.add_parser("table", parents=[common, parallel],
                           help="regenerate one paper table")
    table.add_argument("which", choices=["table1", "table2", "table3", "table4"])
    table.add_argument("--scale", type=float, default=1.0)
    table.set_defaults(func=_cmd_table)

    fig = sub.add_parser("fig", parents=[common], help="regenerate one paper figure")
    fig.add_argument("which", choices=["3", "4", "6", "7", "8", "9", "10"])
    fig.set_defaults(func=_cmd_fig)

    campaign = sub.add_parser("campaign", parents=[common, parallel],
                              help="multi-home media campaign")
    campaign.add_argument("--homes", type=int, default=6)
    campaign.set_defaults(func=_cmd_campaign)

    fleet = sub.add_parser(
        "fleet", parents=[common, parallel],
        help="stream a synthesized fleet of homes through the engine; "
             "constant memory at any size, table identical at any "
             "worker count / chunking / shard order")
    fleet.add_argument("--homes", type=int, default=10000,
                       help="fleet size (10k runs in seconds; 1M is fine)")
    fleet.add_argument("--shards", type=int, default=8,
                       help="seed-derivation shards; a home's draws depend "
                            "only on (seed, shard, offset)")
    fleet.add_argument("--chunk-size", type=int, default=256,
                       help="homes per pool task (amortizes dispatch cost)")
    fleet.add_argument("--dispatch", choices=["chunked", "per-task"],
                       default="chunked",
                       help="per-task = one home per pool submit "
                            "(the benchmark baseline)")
    fleet.add_argument("--fidelity", choices=["fast", "full"], default="fast",
                       help="fast = reduced-order home model; full = "
                            "packet-level scenario per home (validation only)")
    fleet.add_argument("--attack-prevalence", type=float, default=0.25,
                       help="fraction of homes the campaign reaches")
    fleet.add_argument("--full-build", choices=["pooled", "cold"],
                       default="pooled",
                       help="full fidelity only: pooled = warm-start "
                            "scenario templates (fast); cold = rebuild "
                            "every world (benchmark baseline). Identical "
                            "tables either way")
    fleet.add_argument("--progress", action="store_true",
                       help="counted progress on stderr: homes done, "
                            "homes/sec, ETA (fed by chunk metrics)")
    fleet.add_argument("--window", type=int, default=None,
                       help="max in-flight pool tasks (default 4x workers)")
    fleet.add_argument("--output", default=None,
                       help="also write the fleet tables here")
    fleet.set_defaults(func=_cmd_fleet)

    fleet_validate = sub.add_parser(
        "fleet-validate", parents=[common, parallel],
        help="cross-validate the reduced-order (fast) home model against "
             "packet-level (full) simulation on one matched population: "
             "KS on latency sketches, χ² on outcome counts, per testbed")
    fleet_validate.add_argument("--homes", type=int, default=120,
                                help="population size (full fidelity runs "
                                     "every home at packet level)")
    fleet_validate.add_argument("--shards", type=int, default=4)
    fleet_validate.add_argument("--full-build", choices=["pooled", "cold"],
                                default="pooled",
                                help="full-fidelity world strategy "
                                     "(identical results either way)")
    fleet_validate.add_argument("--progress", action="store_true",
                                help="counted progress on stderr")
    fleet_validate.add_argument("--strict", action="store_true",
                                help="exit 1 if any testbed fails the 1% "
                                     "criteria (CI gating)")
    fleet_validate.add_argument("--output", default=None,
                                help="also write the validation report here")
    fleet_validate.set_defaults(func=_cmd_fleet_validate)

    cache = sub.add_parser(
        "cache",
        help="experiment result-cache stats; --prune reclaims disk")
    cache.add_argument("--prune", action="store_true",
                       help="delete cache entries (all, or older than "
                            "--keep-days) and report bytes reclaimed")
    cache.add_argument("--keep-days", type=float, default=None,
                       help="with --prune: keep entries younger than this")
    cache.add_argument("--cache-dir", default=None,
                       help="cache location (default $REPRO_CACHE_DIR or "
                            "~/.cache/repro/experiments)")
    cache.set_defaults(func=_cmd_cache)

    endurance = sub.add_parser("endurance", parents=[common, parallel],
                               help="hold-endurance sweep")
    endurance.set_defaults(func=_cmd_endurance)

    resilience = sub.add_parser("resilience", parents=[common, parallel],
                                help="fault-injection sweep: availability & "
                                     "accuracy under push/scan/report faults")
    resilience.add_argument("--scale", type=float, default=0.25)
    resilience.add_argument("--testbed",
                            choices=["all", "house", "apartment", "office"],
                            default="all")
    resilience.add_argument("--output", default=None)
    resilience.set_defaults(func=_cmd_resilience)

    loadtest = sub.add_parser(
        "loadtest", parents=[common, parallel],
        help="bursty multi-speaker load test: resolved commands/sec vs "
             "hold-time p99 across 1-4 concurrent speakers, plus the "
             "strict (slot-starved) and degraded (fault-driven overload) "
             "stress cells")
    loadtest.add_argument("--smoke", action="store_true",
                          help="corner cells only (the CI load-smoke job)")
    loadtest.add_argument("--utterances", type=int, default=None,
                          help="commands spoken per cell (default 16; 6 "
                               "under --smoke)")
    loadtest.add_argument("--output", default=None,
                          help="also write the rendered table here")
    loadtest.set_defaults(func=_cmd_loadtest)

    recognition = sub.add_parser(
        "recognition-robustness", parents=[common, parallel],
        help="matcher x traffic-morphing adversary accuracy grid: the "
             "signature matcher and the trainable knn/mlp recognizers "
             "against padding/jitter/dummy-burst adversaries, plus "
             "retrained-on-morph adaptive rows")
    recognition.add_argument("--smoke", action="store_true",
                             help="echo corner cells only (the CI "
                                  "recognition-smoke job)")
    recognition.add_argument("--output", default=None,
                             help="also write the rendered table here")
    recognition.set_defaults(func=_cmd_recognition_robustness)

    trace = sub.add_parser("trace", parents=[common],
                           help="trace one scenario: per-command waterfall and "
                                "Fig. 4 phase timings reconstructed from spans")
    trace.add_argument("scenario", choices=["house", "apartment", "office"],
                       help="testbed to trace")
    trace.add_argument("--speaker", choices=["echo", "google"], default="echo")
    trace.add_argument("--commands", type=int, default=2,
                       help="legitimate owner commands to issue")
    trace.add_argument("--attacks", type=int, default=1,
                       help="replayed attacks to issue afterwards")
    trace.add_argument("--jsonl", default=None,
                       help="also dump the span forest as JSONL here")
    trace.set_defaults(func=_cmd_trace)

    bench = sub.add_parser("bench-rssi", parents=[common],
                           help="microbenchmark the RSSI kernel + event queue")
    bench.add_argument("--testbed", choices=["house", "apartment", "office"],
                       default="house")
    bench.add_argument("--seconds", type=float, default=0.2,
                       help="minimum wall time per microbenchmark")
    bench.add_argument("--output", default=None,
                       help="also write the machine-readable JSON payload here "
                            "(e.g. benchmarks/results/BENCH_rssi.json)")
    bench.set_defaults(func=_cmd_bench_rssi)

    bench_sim = sub.add_parser(
        "bench-sim", parents=[common],
        help="time the legacy vs current sim kernel on the house/echo "
             "workload (asserts byte-identical guard event streams first)")
    bench_sim.add_argument("--repeats", type=int, default=2,
                           help="interleaved runs per kernel (min is reported)")
    bench_sim.add_argument("--smoke", action="store_true",
                           help="short run: exercises the whole path and the "
                                "equality assertions, numbers not citable")
    bench_sim.add_argument("--output", default=None,
                           help="also write the machine-readable JSON payload "
                                "here (e.g. benchmarks/results/BENCH_sim.json)")
    bench_sim.set_defaults(func=_cmd_bench_sim)

    profile = sub.add_parser(
        "profile", parents=[common],
        help="cProfile one scenario workload; --legacy profiles the "
             "pre-optimization kernel for before/after comparison")
    profile.add_argument("scenario", nargs="?", default="house",
                         choices=["house", "apartment", "office"],
                         help="testbed to profile (default: house)")
    profile.add_argument("--speaker", choices=["echo", "google"], default="echo")
    profile.add_argument("--commands", type=int, default=10,
                         help="legitimate owner commands to issue")
    profile.add_argument("--attacks", type=int, default=7,
                         help="replayed attacks to issue afterwards")
    profile.add_argument("--seven-day", action="store_true",
                         help="spread episodes over the paper's real seven-day "
                              "timeline (idle-time costs dominate)")
    profile.add_argument("--legacy", action="store_true",
                         help="profile the pre-optimization kernel")
    profile.add_argument("--top", type=int, default=30,
                         help="rows of the pstats table to print")
    profile.add_argument("--sort", choices=["cumulative", "tottime", "calls"],
                         default="cumulative")
    profile.add_argument("--output", default=None,
                         help="also write the rendered profile here")
    profile.set_defaults(func=_cmd_profile)

    demo = sub.add_parser("demo", parents=[common], help="run the quickstart demo")
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
