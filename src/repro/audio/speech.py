"""Speaking-duration model.

The paper assumes a normal human speech pace of 2 words per second
(citing wordcounter.net) and uses it to argue that RSSI verification
usually completes *while the user is still speaking* the command
(Figure 6).  The same constant drives every interaction timeline in the
reproduction: the spoken wake word, the command body, and the speaker's
spoken responses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.audio.commands import VoiceCommand

SPEECH_WORDS_PER_SECOND = 2.0
WAKE_WORD_DURATION = 0.55  # "Alexa" / "Hey Google" (amortized), seconds
POST_WAKE_PAUSE = 0.25  # brief gap between wake word and command body


def speaking_duration(
    command: VoiceCommand,
    rng: Optional[np.random.Generator] = None,
    pace_jitter: float = 0.12,
) -> float:
    """Seconds needed to speak ``command`` after the wake word.

    ``pace_jitter`` is the relative standard deviation of the per-
    utterance pace; humans do not speak at a metronomic 2 words/s.
    """
    base = command.word_count / SPEECH_WORDS_PER_SECOND
    if rng is None:
        return base
    factor = float(np.clip(rng.normal(1.0, pace_jitter), 0.6, 1.6))
    return base * factor


def full_utterance_duration(
    command: VoiceCommand,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Wake word + pause + command body, in seconds."""
    return WAKE_WORD_DURATION + POST_WAKE_PAUSE + speaking_duration(command, rng)


def response_segment_duration(words: int) -> float:
    """Seconds the speaker takes to speak a ``words``-word response
    segment (e.g. one NBA game schedule in the paper's Figure 3)."""
    if words <= 0:
        raise ValueError(f"response segment needs a positive word count, got {words!r}")
    return words / SPEECH_WORDS_PER_SECOND
