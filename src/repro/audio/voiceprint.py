"""Synthetic voiceprints and utterances.

Audio is modelled at the embedding level: each human speaker has a
fixed latent *voiceprint* vector, and every utterance carries a noisy
observation of the vector that produced it.  The transformations the
threat model cares about are explicit:

* a **live** utterance adds fresh articulation noise to the speaker's
  own voiceprint;
* a **replayed** utterance is a previously captured live observation
  passed through a playback channel (small additional channel noise) —
  the *embedding still matches the victim*, which is why voice-match
  protection fails against it (Section II-B1);
* a **synthesized** utterance is generated from collected samples of
  the victim, landing near the victim's voiceprint with a modest
  artifact term (Section III-B).

The guard never reads any of this; only the voice-match baseline does.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

VOICEPRINT_DIM = 32
_LIVE_NOISE = 0.080  # articulation variation between a speaker's utterances
_REPLAY_CHANNEL_NOISE = 0.045  # loudspeaker + re-recording channel
_SYNTHESIS_ARTIFACT = 0.110  # TTS cloning residual
_utterance_ids = itertools.count(1)


def peek_utterance_id() -> int:
    """The id the next utterance will get (snapshot bookkeeping)."""
    global _utterance_ids
    value = next(_utterance_ids)
    _utterance_ids = itertools.count(value)
    return value


def reset_utterance_ids(start: int = 1) -> None:
    """Restart utterance numbering (snapshot restore / test isolation)."""
    global _utterance_ids
    _utterance_ids = itertools.count(start)


class UtteranceSource(enum.Enum):
    """Provenance of an utterance — ground truth for scoring."""

    LIVE_OWNER = "live_owner"
    LIVE_GUEST = "live_guest"
    REPLAY = "replay"
    SYNTHESIS = "synthesis"
    INAUDIBLE = "inaudible"  # ultrasound-modulated injection
    LASER = "laser"  # light-commands injection
    REMOTE_PLAYBACK = "remote_playback"  # compromised smart TV etc.

    @property
    def is_attack(self) -> bool:
        """Whether this provenance is part of the threat model."""
        return self not in (UtteranceSource.LIVE_OWNER, UtteranceSource.LIVE_GUEST)


@dataclass(frozen=True)
class VoicePrint:
    """A human speaker's latent voice identity."""

    speaker_name: str
    vector: np.ndarray

    @staticmethod
    def create(speaker_name: str, rng: np.random.Generator) -> "VoicePrint":
        """Draw a fresh unit-norm voiceprint for a speaker."""
        vector = rng.normal(0.0, 1.0, size=VOICEPRINT_DIM)
        vector = vector / np.linalg.norm(vector)
        return VoicePrint(speaker_name, vector)

    def observe(self, rng: np.random.Generator, noise: float = _LIVE_NOISE) -> np.ndarray:
        """A noisy live observation of this voiceprint."""
        sample = self.vector + rng.normal(0.0, noise, size=self.vector.shape)
        return sample / np.linalg.norm(sample)


@dataclass
class VoiceUtterance:
    """One spoken (or injected) audio event reaching a microphone."""

    text: str
    word_count: int
    duration: float
    embedding: Optional[np.ndarray]
    source: UtteranceSource
    speaker_label: str
    utterance_id: int = field(default_factory=lambda: next(_utterance_ids))

    @property
    def is_attack(self) -> bool:
        """Whether the utterance came from an attacker."""
        return self.source.is_attack


def live_utterance(
    text: str,
    duration: float,
    voiceprint: VoicePrint,
    rng: np.random.Generator,
    source: UtteranceSource = UtteranceSource.LIVE_OWNER,
) -> VoiceUtterance:
    """A live human utterance by ``voiceprint``'s speaker."""
    return VoiceUtterance(
        text=text,
        word_count=len(text.split()),
        duration=duration,
        embedding=voiceprint.observe(rng),
        source=source,
        speaker_label=voiceprint.speaker_name,
    )


def replay_of(original: VoiceUtterance, rng: np.random.Generator) -> VoiceUtterance:
    """A recording of ``original`` replayed through a loudspeaker."""
    if original.embedding is None:
        raise ValueError("cannot replay an utterance without an embedding")
    channel = original.embedding + rng.normal(
        0.0, _REPLAY_CHANNEL_NOISE, size=original.embedding.shape
    )
    channel = channel / np.linalg.norm(channel)
    return VoiceUtterance(
        text=original.text,
        word_count=original.word_count,
        duration=original.duration,
        embedding=channel,
        source=UtteranceSource.REPLAY,
        speaker_label=original.speaker_label,
    )


def synthesized_as(
    victim: VoicePrint,
    text: str,
    duration: float,
    rng: np.random.Generator,
) -> VoiceUtterance:
    """A TTS-cloned utterance impersonating ``victim`` saying ``text``."""
    artifact = victim.vector + rng.normal(0.0, _SYNTHESIS_ARTIFACT, size=victim.vector.shape)
    artifact = artifact / np.linalg.norm(artifact)
    return VoiceUtterance(
        text=text,
        word_count=len(text.split()),
        duration=duration,
        embedding=artifact,
        source=UtteranceSource.SYNTHESIS,
        speaker_label=victim.speaker_name,
    )
