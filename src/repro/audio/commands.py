"""Voice-command corpora.

The paper's authors crawled public command lists and collected 320
commonly used Alexa commands and 443 Google Assistant commands, then
used the word-count statistics to argue that the RSSI query usually
completes while the user is still speaking (Section V-A2).  We rebuild
corpora of the same sizes whose word-count distributions match the
reported statistics:

====================  =======  ===========  ====================
corpus                size     mean words   coverage
====================  =======  ===========  ====================
Alexa                 320      5.95         86.8 % have >= 4
Google Assistant      443      7.39         93.9 % have >= 5
====================  =======  ===========  ====================

Commands are generated from realistic intent templates; the exact
word-count histogram is fixed (not sampled) so the corpus statistics
are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError

ALEXA_CORPUS_SIZE = 320
GOOGLE_CORPUS_SIZE = 443

# Word-count probability mass functions chosen to reproduce the paper's
# statistics exactly (see module docstring).  Keys are words-per-command.
_ALEXA_WORDCOUNT_PMF: Dict[int, float] = {
    2: 0.036, 3: 0.096, 4: 0.130, 5: 0.190, 6: 0.170,
    7: 0.140, 8: 0.100, 9: 0.070, 10: 0.050, 11: 0.018,
}
_GOOGLE_WORDCOUNT_PMF: Dict[int, float] = {
    3: 0.020, 4: 0.041, 5: 0.110, 6: 0.170, 7: 0.200,
    8: 0.170, 9: 0.120, 10: 0.110, 11: 0.040, 12: 0.019,
}

# Phrase-building material.  Commands are assembled as
# [verb phrase] [object phrase] [tail modifiers...] and trimmed/padded
# to an exact word count, yielding plausible smart-home requests.
_VERBS = [
    "turn on", "turn off", "play", "stop", "pause", "resume", "set",
    "dim", "brighten", "lock", "unlock", "open", "close", "start",
    "cancel", "add", "remove", "check", "tell me", "what is",
]
_OBJECTS = [
    "the living room lights", "the kitchen lights", "the bedroom lamp",
    "the thermostat", "the front door", "the garage door",
    "the security system", "the coffee maker", "my morning playlist",
    "some relaxing jazz music", "the weather forecast", "a timer",
    "an alarm", "my shopping list", "the news briefing",
    "tonight's basketball schedule", "my calendar for tomorrow",
    "the air conditioner", "the ceiling fan", "the tv volume",
]
_TAILS = [
    "please", "right now", "for ten minutes", "in the morning",
    "at seven pm", "to seventy two degrees", "before i leave",
    "when i get home", "on the patio", "for the party tonight",
    "every weekday", "as soon as possible", "at full volume",
    "in the kids room", "downstairs", "upstairs",
]
_FILLERS = ["please", "now", "today", "tonight", "again", "quickly"]


@dataclass(frozen=True)
class VoiceCommand:
    """One spoken command."""

    text: str
    assistant: str  # "alexa" | "google"

    @property
    def word_count(self) -> int:
        """Number of words in the command text."""
        return len(self.text.split())


class CommandCorpus:
    """A fixed list of commands with deterministic statistics."""

    def __init__(self, assistant: str, commands: Sequence[VoiceCommand]) -> None:
        self.assistant = assistant
        self.commands: List[VoiceCommand] = list(commands)
        if not self.commands:
            raise WorkloadError("a command corpus cannot be empty")

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self):
        return iter(self.commands)

    def __getitem__(self, index: int) -> VoiceCommand:
        return self.commands[index]

    def sample(self, rng: np.random.Generator) -> VoiceCommand:
        """Draw a uniformly random command."""
        return self.commands[int(rng.integers(0, len(self.commands)))]

    def mean_word_count(self) -> float:
        """Average words per command."""
        return float(np.mean([c.word_count for c in self.commands]))

    def fraction_with_at_least(self, words: int) -> float:
        """Fraction of commands with >= ``words`` words."""
        hits = sum(1 for c in self.commands if c.word_count >= words)
        return hits / len(self.commands)


def _exact_counts(pmf: Dict[int, float], total: int) -> List[Tuple[int, int]]:
    """Convert a PMF into exact integer counts summing to ``total``.

    Largest-remainder apportionment keeps the realized histogram as
    close to the PMF as integer counts allow.
    """
    raw = [(words, pmf[words] * total) for words in sorted(pmf)]
    counts = {words: int(np.floor(quota)) for words, quota in raw}
    shortfall = total - sum(counts.values())
    remainders = sorted(raw, key=lambda item: item[1] - np.floor(item[1]), reverse=True)
    for words, _ in remainders[:shortfall]:
        counts[words] += 1
    return [(words, counts[words]) for words in sorted(counts)]


def _phrase_with_exact_words(words: int, rng: np.random.Generator) -> str:
    """Compose a plausible command with exactly ``words`` words."""
    parts: List[str] = []
    parts.extend(str(_VERBS[int(rng.integers(0, len(_VERBS)))]).split())
    parts.extend(str(_OBJECTS[int(rng.integers(0, len(_OBJECTS)))]).split())
    while len(parts) < words:
        pool = _TAILS if words - len(parts) > 1 else _FILLERS
        parts.extend(str(pool[int(rng.integers(0, len(pool)))]).split())
    return " ".join(parts[:words])


def _build_corpus(assistant: str, pmf: Dict[int, float], size: int, seed: int) -> CommandCorpus:
    rng = np.random.default_rng(seed)
    commands: List[VoiceCommand] = []
    for words, count in _exact_counts(pmf, size):
        for _ in range(count):
            commands.append(VoiceCommand(_phrase_with_exact_words(words, rng), assistant))
    # Shuffle so sequential sampling doesn't correlate with length.
    order = rng.permutation(len(commands))
    return CommandCorpus(assistant, [commands[i] for i in order])


_CACHE: Dict[str, CommandCorpus] = {}


def alexa_corpus() -> CommandCorpus:
    """The 320-command Alexa corpus (cached; deterministic)."""
    if "alexa" not in _CACHE:
        _CACHE["alexa"] = _build_corpus("alexa", _ALEXA_WORDCOUNT_PMF, ALEXA_CORPUS_SIZE, seed=20230627)
    return _CACHE["alexa"]


def google_corpus() -> CommandCorpus:
    """The 443-command Google Assistant corpus (cached; deterministic)."""
    if "google" not in _CACHE:
        _CACHE["google"] = _build_corpus("google", _GOOGLE_WORDCOUNT_PMF, GOOGLE_CORPUS_SIZE, seed=20230628)
    return _CACHE["google"]


def corpus_statistics(corpus: CommandCorpus) -> Dict[str, float]:
    """The statistics the paper reports for a corpus."""
    return {
        "size": float(len(corpus)),
        "mean_words": corpus.mean_word_count(),
        "frac_at_least_4": corpus.fraction_with_at_least(4),
        "frac_at_least_5": corpus.fraction_with_at_least(5),
    }
