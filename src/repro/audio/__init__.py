"""Voice-command and audio-domain substrate.

VoiceGuard itself never analyzes audio — that is its point — but the
evaluation needs audio-domain machinery anyway:

* :mod:`repro.audio.commands` — realistic Alexa/Google command corpora
  with the word-count statistics the paper measured via its web crawler
  (Alexa: 320 commands, mean 5.95 words, 86.8 % with >= 4 words;
  Google: 443 commands, mean 7.39 words, 93.9 % with >= 5 words);
* :mod:`repro.audio.speech` — speaking-duration model at the paper's
  2 words/second pace, used to decide whether an RSSI query finishes
  while the user is still talking (Figure 6);
* :mod:`repro.audio.voiceprint` — synthetic speaker embeddings for
  utterances, with replay/synthesis transformations;
* :mod:`repro.audio.verification` — the voice-match baseline (the
  protection built into commercial speakers) that replay and synthesis
  attacks bypass, motivating VoiceGuard.
"""

from repro.audio.commands import (
    ALEXA_CORPUS_SIZE,
    GOOGLE_CORPUS_SIZE,
    CommandCorpus,
    VoiceCommand,
    alexa_corpus,
    corpus_statistics,
    google_corpus,
)
from repro.audio.speech import SPEECH_WORDS_PER_SECOND, speaking_duration
from repro.audio.verification import VerificationResult, VoiceMatchVerifier
from repro.audio.voiceprint import UtteranceSource, VoicePrint, VoiceUtterance

__all__ = [
    "ALEXA_CORPUS_SIZE",
    "GOOGLE_CORPUS_SIZE",
    "CommandCorpus",
    "SPEECH_WORDS_PER_SECOND",
    "UtteranceSource",
    "VerificationResult",
    "VoiceCommand",
    "VoiceMatchVerifier",
    "VoicePrint",
    "VoiceUtterance",
    "alexa_corpus",
    "corpus_statistics",
    "google_corpus",
    "speaking_duration",
]
