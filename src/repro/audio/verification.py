"""Voice-match speaker verification (the commercial baseline).

Commercial smart speakers can be trained to recognize their owners'
voices during setup; the paper's threat model (Section III-B) assumes —
following the literature it cites — that replayed or synthesized owner
audio *passes* this check.  The verifier here reproduces that security
property: it enrolls a speaker from a handful of live samples and
scores new utterances by cosine similarity against the enrolled
centroid, which separates *different humans* well but cannot separate
the owner's live voice from a replay or a good clone of it (the
embeddings are, by construction of the threat model, nearly identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.audio.voiceprint import VoicePrint, VoiceUtterance

# Calibrated so that a different human is rejected but anything
# carrying the owner's voiceprint — live, replayed, or synthesized —
# is accepted, reproducing the vulnerability the paper exploits.
DEFAULT_ACCEPT_THRESHOLD = 0.78


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of scoring one utterance."""

    score: float
    accepted: bool
    enrolled_speaker: str


class VoiceMatchVerifier:
    """Centroid + cosine-similarity speaker verification.

    This stands in for the GMM/i-vector verifiers cited by the paper;
    at the embedding level they share the decision geometry that
    matters here: acceptance is a similarity threshold around the
    enrolled identity, so any audio that *carries the owner's identity*
    — live, replayed, or cloned — is accepted.
    """

    def __init__(self, accept_threshold: float = DEFAULT_ACCEPT_THRESHOLD) -> None:
        if not 0.0 < accept_threshold < 1.0:
            raise ValueError(f"accept threshold must be in (0, 1), got {accept_threshold!r}")
        self.accept_threshold = accept_threshold
        self._centroid: Optional[np.ndarray] = None
        self._speaker_name: Optional[str] = None

    @property
    def enrolled(self) -> bool:
        """Whether a speaker has been enrolled."""
        return self._centroid is not None

    def enroll(
        self,
        voiceprint: VoicePrint,
        rng: np.random.Generator,
        sample_count: int = 5,
    ) -> None:
        """Enroll a speaker from ``sample_count`` live samples."""
        if sample_count < 1:
            raise ValueError(f"enrollment needs at least one sample, got {sample_count!r}")
        samples = [voiceprint.observe(rng) for _ in range(sample_count)]
        centroid = np.mean(samples, axis=0)
        self._centroid = centroid / np.linalg.norm(centroid)
        self._speaker_name = voiceprint.speaker_name

    def enroll_from_samples(self, speaker_name: str, samples: Sequence[np.ndarray]) -> None:
        """Enroll directly from embedding samples (used by attackers who
        collected the victim's audio)."""
        if not samples:
            raise ValueError("enrollment needs at least one sample")
        centroid = np.mean(np.asarray(samples), axis=0)
        self._centroid = centroid / np.linalg.norm(centroid)
        self._speaker_name = speaker_name

    def score(self, utterance: VoiceUtterance) -> float:
        """Cosine similarity between the utterance and the enrollment."""
        if self._centroid is None:
            raise RuntimeError("verifier has no enrolled speaker")
        if utterance.embedding is None:
            # Inaudible/laser injections carry no voice at all; they can
            # only pass if voice match is disabled.
            return -1.0
        return float(np.dot(self._centroid, utterance.embedding))

    def verify(self, utterance: VoiceUtterance) -> VerificationResult:
        """Score an utterance and apply the accept threshold."""
        score = self.score(utterance)
        assert self._speaker_name is not None
        return VerificationResult(
            score=score,
            accepted=score >= self.accept_threshold,
            enrolled_speaker=self._speaker_name,
        )

    def equal_error_threshold(
        self,
        genuine_scores: List[float],
        impostor_scores: List[float],
    ) -> float:
        """Threshold where false-accept and false-reject rates cross.

        Utility for calibration experiments; operates on score lists
        the caller produced.
        """
        if not genuine_scores or not impostor_scores:
            raise ValueError("need both genuine and impostor scores")
        candidates = sorted(set(genuine_scores) | set(impostor_scores))
        best_threshold = candidates[0]
        best_gap = float("inf")
        genuine = np.asarray(genuine_scores)
        impostor = np.asarray(impostor_scores)
        for threshold in candidates:
            frr = float(np.mean(genuine < threshold))
            far = float(np.mean(impostor >= threshold))
            gap = abs(frr - far)
            if gap < best_gap:
                best_gap = gap
                best_threshold = threshold
        return float(best_threshold)
