"""Exporters: JSONL span dumps, waterfalls, and Fig. 4 phase timings.

Everything here consumes *only* the span forest — no guard internals —
so the per-command phase breakdown (recognition -> hold -> decision,
the paper's Figure 4 timeline) is reconstructed from spans alone, and
any future pipeline refactor that keeps the span contract keeps the
report.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.reporting import render_table
from repro.obs.tracer import Span, SpanTracer

PathLike = Union[str, pathlib.Path]

# Span names the instrumented pipeline emits (the export contract).
WINDOW_SPAN = "command.window"
CLASSIFY_SPAN = "recognition.classify"
HOLD_SPAN = "proxy.hold"
DECISION_SPAN = "decision.query"
PUSH_SPAN = "push.roundtrip"


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def span_to_dict(span: Span) -> dict:
    """A plain-JSON form of one span (stable key order)."""
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "attrs": {key: _jsonable(value) for key, value in sorted(span.attrs.items())},
        "events": [
            {"name": e.name, "time": e.time,
             "attrs": {k: _jsonable(v) for k, v in sorted(e.attrs.items())}}
            for e in span.events
        ],
    }


def _jsonable(value: object) -> object:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def spans_to_jsonl(spans: Sequence[Span]) -> str:
    """One JSON object per line, in span-begin order."""
    return "\n".join(json.dumps(span_to_dict(s), sort_keys=True) for s in spans)


def write_spans_jsonl(tracer: SpanTracer, path: PathLike) -> pathlib.Path:
    """Dump a tracer's span forest as JSONL; returns the path."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    text = spans_to_jsonl(list(tracer.spans))
    target.write_text(text + ("\n" if text else ""), encoding="utf-8")
    return target


# ---------------------------------------------------------------------------
# Phase breakdown (the paper's Figure 4 timeline, from spans alone)
# ---------------------------------------------------------------------------

@dataclass
class PhaseBreakdown:
    """Per-command phase timings reconstructed from one span tree."""

    window_id: int
    classification: str
    recognition: Optional[float]  # window open -> classified
    hold: Optional[float]  # records parked -> released/discarded
    decision: Optional[float]  # decision query -> verdict
    push_rtt: Optional[float]  # fastest push round-trip that resolved
    verdict: str
    outcome: str  # released | discarded | open


def phase_breakdown(tracer: SpanTracer) -> List[PhaseBreakdown]:
    """Fold each ``command.window`` span tree into its phase timings."""
    rows: List[PhaseBreakdown] = []
    children: Dict[int, List[Span]] = {}
    for span in tracer.spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    for root in tracer.spans:
        if root.name != WINDOW_SPAN:
            continue
        kids = children.get(root.span_id, [])
        classify = _first(kids, CLASSIFY_SPAN)
        hold = _first(kids, HOLD_SPAN)
        decision = _first(kids, DECISION_SPAN)
        push_rtt = None
        if decision is not None:
            rtts = [
                s.duration for s in children.get(decision.span_id, [])
                if s.name == PUSH_SPAN and s.duration is not None
                and s.attrs.get("status") == "report"
            ]
            if rtts:
                push_rtt = min(rtts)
        rows.append(PhaseBreakdown(
            window_id=int(root.attrs.get("window_id", 0)),
            classification=str(root.attrs.get("classification", "?")),
            recognition=classify.duration if classify is not None else None,
            hold=hold.duration if hold is not None else None,
            decision=decision.duration if decision is not None else None,
            push_rtt=push_rtt,
            verdict=str(decision.attrs.get("verdict", "-")) if decision is not None else "-",
            outcome=str(root.attrs.get("outcome", "open")),
        ))
    return rows


def _first(spans: Sequence[Span], name: str) -> Optional[Span]:
    for span in spans:
        if span.name == name:
            return span
    return None


def render_phase_table(rows: Sequence[PhaseBreakdown],
                       title: str = "Per-command phase breakdown (from spans)") -> str:
    """The Figure 4 phase table: one row per recognized window."""
    table_rows = []
    for row in rows:
        table_rows.append([
            row.window_id,
            row.classification,
            _fmt_s(row.recognition),
            _fmt_s(row.hold),
            _fmt_s(row.decision),
            _fmt_s(row.push_rtt),
            row.verdict,
            row.outcome,
        ])
    return render_table(
        title,
        ["window", "class", "recognition", "hold", "decision", "push rtt",
         "verdict", "outcome"],
        table_rows,
    )


def _fmt_s(value: Optional[float]) -> str:
    return f"{value:.3f}s" if value is not None else "—"


# ---------------------------------------------------------------------------
# Waterfall
# ---------------------------------------------------------------------------

def render_waterfall(tracer: SpanTracer, width: int = 48,
                     roots: Optional[Sequence[str]] = None) -> str:
    """ASCII waterfall: each root span tree on its own time axis.

    ``roots`` restricts rendering to root spans with those names (e.g.
    ``["command.window"]``); by default every root tree is drawn.
    """
    lines: List[str] = []
    children: Dict[int, List[Span]] = {}
    for span in tracer.spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)

    def draw(span: Span, depth: int, t0: float, scale: float) -> None:
        end = span.end if span.end is not None else span.start
        left = int(round((span.start - t0) * scale))
        length = max(1, int(round((end - span.start) * scale)))
        bar = " " * min(left, width) + "#" * min(length, max(1, width - left))
        duration = f"{span.duration:.3f}s" if span.duration is not None else "open"
        label = ("  " * depth + span.name).ljust(26)
        lines.append(f"{label} |{bar.ljust(width)}| {duration}")
        for event in span.events:
            at = f"+{event.time - span.start:.3f}s"
            lines.append("  " * (depth + 1) + f"· {event.name} {at}")
        for child in children.get(span.span_id, []):
            draw(child, depth + 1, t0, scale)

    for root in tracer.spans:
        if root.parent_id is not None:
            continue
        if roots is not None and root.name not in roots:
            continue
        tree_end = root.start
        stack = [root]
        while stack:
            span = stack.pop()
            tree_end = max(tree_end, span.end if span.end is not None else span.start)
            stack.extend(children.get(span.span_id, []))
        extent = max(tree_end - root.start, 1e-9)
        scale = width / extent
        header = ", ".join(f"{k}={v}" for k, v in sorted(root.attrs.items())
                           if k in ("window_id", "flow_id", "outcome", "device"))
        lines.append(f"-- {root.name} @ {root.start:.3f}s"
                     + (f"  ({header})" if header else ""))
        draw(root, 0, root.start, scale)
        lines.append("")
    return "\n".join(lines).rstrip("\n")
