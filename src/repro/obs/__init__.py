"""Observability: sim-clock tracing, metrics, and exporters.

The guard pipeline is instrumented with two substrates:

* :mod:`repro.obs.tracer` — hierarchical spans keyed to the simulated
  clock.  One voice command produces one ``command.window`` span tree
  (recognition -> hold -> decision -> push round-trips) from which the
  paper's Figure 4 phase timings can be reconstructed without any
  ad-hoc instrumentation.
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  fixed-bucket histograms with per-subsystem namespaces (``proxy.*``,
  ``decision.*``, ``push.*``, ``floor.*``, ``recognition.*``) and O(1)
  hot-path recording.

Tracing is **off by default** and the disabled tracer is a true no-op:
it never draws randomness, never schedules simulator events, and never
touches the guard's event stream, so fault-free fixed-seed runs are
byte-identical whether the package is wired in or not (asserted by
``tests/test_golden_traces.py`` and the property suite).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
    QuantileSketch,
    merge_snapshots,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Observability,
    Span,
    SpanEvent,
    SpanTracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "QuantileSketch",
    "merge_snapshots",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "Span",
    "SpanEvent",
    "SpanTracer",
]
