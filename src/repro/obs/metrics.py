"""Metrics registry: counters, gauges, fixed-bucket histograms.

Instruments are created once (usually at component construction) and
then recorded into on the hot path: ``counter.inc()`` is one attribute
add, ``histogram.record(v)`` one binary search over a fixed edge tuple.
Names are dot-namespaced by subsystem (``proxy.records_held``,
``decision.latency`` ...); :meth:`MetricsRegistry.scope` binds a prefix
so a component never repeats its namespace.

Snapshots are plain picklable dicts, so per-task snapshots survive the
process-pool boundary of :mod:`repro.experiments.parallel` and can be
merged across tasks with :func:`merge_snapshots`.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

# Default latency buckets (seconds): spans the guard's decision window.
DEFAULT_LATENCY_EDGES: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 7.5, 10.0, 15.0, 25.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that goes up and down (e.g. open flows, held records)."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, n: float = 1.0) -> None:
        self.set(self.value + n)

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram: cumulative-free, O(log buckets) recording.

    ``edges`` are the upper bounds of the finite buckets; one overflow
    bucket catches everything above the last edge.  ``counts[i]`` holds
    observations ``v`` with ``edges[i-1] < v <= edges[i]`` (first bucket:
    ``v <= edges[0]``).
    """

    __slots__ = ("name", "edges", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_LATENCY_EDGES) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ConfigError(f"histogram {name!r} needs at least one bucket edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ConfigError(f"histogram {name!r} edges must be strictly increasing")
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def record(self, value: float) -> None:
        """Record one observation (hot path)."""
        value = float(value)
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average observation; NaN when empty."""
        if self.count == 0:
            return float("nan")
        return self.total / self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsScope:
    """A registry view that prefixes every name with a subsystem."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip(".") + "."

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._prefix + name)

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._prefix + name)

    def histogram(self, name: str, edges: Sequence[float] = DEFAULT_LATENCY_EDGES) -> Histogram:
        return self._registry.histogram(self._prefix + name, edges)


class MetricsRegistry:
    """Owns every instrument of one run, keyed by dotted name."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument creation (get-or-create, setup path) -----------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, edges: Sequence[float] = DEFAULT_LATENCY_EDGES) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, edges)
        elif tuple(float(e) for e in edges) != instrument.edges:
            raise ConfigError(
                f"histogram {name!r} already registered with different edges"
            )
        return instrument

    def scope(self, prefix: str) -> MetricsScope:
        """A view that records under ``prefix.``."""
        return MetricsScope(self, prefix)

    # -- export ----------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """A plain-dict, picklable copy of every instrument's state."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: {"value": g.value, "high_water": g.high_water}
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                n: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                }
                for n, h in sorted(self._histograms.items())
            },
        }


def merge_snapshots(snapshots: Iterable[Optional[dict]]) -> Dict[str, dict]:
    """Merge per-task snapshots: counters and histogram buckets add,
    gauges keep the maximum (their per-run meaning is a level, so the
    cross-task fold reports the worst case).  ``None`` entries (tasks
    without metrics) are skipped."""
    merged: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, gauge in snapshot.get("gauges", {}).items():
            seen = merged["gauges"].get(name)
            if seen is None:
                merged["gauges"][name] = dict(gauge)
            else:
                seen["value"] = max(seen["value"], gauge["value"])
                seen["high_water"] = max(seen["high_water"], gauge["high_water"])
        for name, hist in snapshot.get("histograms", {}).items():
            seen = merged["histograms"].get(name)
            if seen is None:
                merged["histograms"][name] = {
                    "edges": list(hist["edges"]),
                    "counts": list(hist["counts"]),
                    "count": hist["count"],
                    "total": hist["total"],
                    "min": hist["min"],
                    "max": hist["max"],
                }
                continue
            if seen["edges"] != list(hist["edges"]):
                raise ConfigError(
                    f"cannot merge histogram {name!r}: bucket edges differ"
                )
            seen["counts"] = [a + b for a, b in zip(seen["counts"], hist["counts"])]
            seen["count"] += hist["count"]
            seen["total"] += hist["total"]
            mins = [m for m in (seen["min"], hist["min"]) if m is not None]
            maxs = [m for m in (seen["max"], hist["max"]) if m is not None]
            seen["min"] = min(mins) if mins else None
            seen["max"] = max(maxs) if maxs else None
    return merged


class QuantileSketch:
    """Streaming percentile sketch over non-negative values.

    DDSketch-style logarithmic buckets: a value ``v`` lands in bucket
    ``ceil(log_gamma(v))`` with ``gamma = (1 + alpha) / (1 - alpha)``,
    which bounds the *relative* error of any reported quantile by
    ``alpha`` while using a handful of integer counters — constant
    memory no matter how many observations stream through.

    Sketches are exactly mergeable (bucket counts add), and a reported
    quantile is a pure function of the integer counts, so folding
    per-chunk sketches in *any* order — the completion order of a
    process pool, a reshuffled shard list — reproduces the same
    population percentiles bit for bit.  That property is what lets the
    fleet engine report p99 decision latency over a million homes
    without ever holding per-home samples.
    """

    __slots__ = ("alpha", "_gamma", "_log_gamma", "count", "zero_count",
                 "buckets", "min", "max")

    # Values at or below this are counted as "zero" (the sketch is
    # logarithmic, so a true zero has no bucket).
    MIN_TRACKED = 1e-9

    def __init__(self, alpha: float = 0.01) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigError(f"sketch alpha must be in (0, 1), got {alpha!r}")
        self.alpha = float(alpha)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        self.zero_count = 0
        self.buckets: Dict[int, int] = {}
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float, n: int = 1) -> None:
        """Record ``n`` observations of ``value`` (hot path)."""
        value = float(value)
        if value < 0.0:
            raise ConfigError(f"sketch tracks non-negative values, got {value!r}")
        self.count += n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.MIN_TRACKED:
            self.zero_count += n
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self.buckets[index] = self.buckets.get(index, 0) + n

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (exact: integer counts add)."""
        if abs(other.alpha - self.alpha) > 1e-12:
            raise ConfigError(
                f"cannot merge sketches with different alpha "
                f"({self.alpha} vs {other.alpha})"
            )
        self.count += other.count
        self.zero_count += other.zero_count
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1), within ``alpha`` relative error."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return float("nan")
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero_count:
            return self.min if self.min == 0.0 else 0.0
        seen = self.zero_count
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                # Midpoint of the bucket's (gamma^(i-1), gamma^i] range,
                # clamped into the observed value range.
                value = 2.0 * self._gamma ** index / (self._gamma + 1.0)
                return min(max(value, self.min), self.max)
        return self.max

    def to_dict(self) -> dict:
        """A plain picklable/JSON-able copy (bucket items sorted)."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "zero_count": self.zero_count,
            "buckets": sorted(self.buckets.items()),
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuantileSketch":
        sketch = cls(alpha=payload["alpha"])
        sketch.count = int(payload["count"])
        sketch.zero_count = int(payload["zero_count"])
        sketch.buckets = {int(i): int(n) for i, n in payload["buckets"]}
        sketch.min = float("inf") if payload["min"] is None else float(payload["min"])
        sketch.max = float("-inf") if payload["max"] is None else float(payload["max"])
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QuantileSketch(alpha={self.alpha}, n={self.count})"


def sketch_ks_distance(a: QuantileSketch, b: QuantileSketch) -> float:
    """Two-sample Kolmogorov-Smirnov statistic between two sketches.

    Both sketches quantize values into the same logarithmic buckets
    (identical ``alpha`` required), so their empirical CDFs are exactly
    comparable at bucket boundaries: the supremum of the CDF gap over
    those boundaries *is* the KS statistic of the bucketized samples,
    within the sketches' ``alpha`` relative value error.  Returns NaN
    when either side is empty.
    """
    if abs(a.alpha - b.alpha) > 1e-12:
        raise ConfigError(
            f"cannot compare sketches with different alpha "
            f"({a.alpha} vs {b.alpha})"
        )
    if a.count == 0 or b.count == 0:
        return float("nan")
    cum_a = a.zero_count
    cum_b = b.zero_count
    distance = abs(cum_a / a.count - cum_b / b.count)
    for index in sorted(set(a.buckets) | set(b.buckets)):
        cum_a += a.buckets.get(index, 0)
        cum_b += b.buckets.get(index, 0)
        distance = max(distance, abs(cum_a / a.count - cum_b / b.count))
    return distance


def ks_critical_value(n: int, m: int, alpha: float = 0.01) -> float:
    """Two-sample KS rejection threshold for sample sizes ``n``, ``m``.

    Large-sample approximation: ``c(alpha) * sqrt((n + m) / (n * m))``
    with ``c(alpha) = sqrt(-ln(alpha / 2) / 2)`` (c ≈ 1.63 at 1%).
    """
    if n <= 0 or m <= 0:
        return float("nan")
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must be in (0, 1), got {alpha!r}")
    c = math.sqrt(-0.5 * math.log(alpha / 2.0))
    return c * math.sqrt((n + m) / (n * m))


def histogram_quantile(hist: dict, q: float) -> float:
    """Approximate quantile from a snapshot histogram (bucket upper
    bounds; the overflow bucket reports the recorded maximum)."""
    if not 0.0 <= q <= 1.0:
        raise ConfigError(f"quantile must be in [0, 1], got {q!r}")
    count = hist["count"]
    if count == 0:
        return float("nan")
    rank = q * count
    seen = 0
    edges: List[float] = list(hist["edges"])
    for index, bucket in enumerate(hist["counts"]):
        seen += bucket
        if seen >= rank and bucket:
            if index < len(edges):
                return edges[index]
            break
    return hist["max"] if hist["max"] is not None else float("nan")
