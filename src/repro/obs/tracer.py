"""Span tracer keyed to the simulated clock.

A :class:`Span` is one timed phase of the pipeline (``proxy.hold``,
``decision.query``, ...), with a parent link, typed attributes and
point-in-time :class:`SpanEvent` annotations.  Spans are *not* required
to nest lexically — the guard is callback-driven, so a span is usually
begun in one event handler and ended in another — hence the primary API
is :meth:`SpanTracer.begin` / :meth:`Span.end`; the :meth:`SpanTracer.span`
context manager is a convenience for lexically scoped phases.

Timestamps come exclusively from the simulated clock (anything with a
``.now`` attribute: :class:`repro.sim.simulator.Simulator` or
:class:`repro.sim.clock.SimClock`), so traces are deterministic: the
same seed produces the same span tree, byte for byte.

The disabled tracer (:data:`NULL_TRACER`) is a true no-op: ``begin``
returns the shared :data:`NULL_SPAN` whose every method does nothing,
no list is appended to, no clock is read, and nothing observable about
the simulation changes.  Components therefore instrument unconditionally
and let the null object absorb the calls.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry


class SpanEvent:
    """A point-in-time annotation inside a span (e.g. a push retry)."""

    __slots__ = ("name", "time", "attrs")

    def __init__(self, name: str, time: float, attrs: Dict[str, object]) -> None:
        self.name = name
        self.time = time
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanEvent({self.name!r}, t={self.time:.6f}, {self.attrs!r})"


class Span:
    """One timed phase with parent link, attributes and events."""

    __slots__ = ("span_id", "name", "start", "end", "parent_id", "attrs",
                 "events", "_tracer")

    def __init__(self, tracer: "SpanTracer", span_id: int, name: str,
                 start: float, parent_id: Optional[int]) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.parent_id = parent_id
        self.attrs: Dict[str, object] = {}
        self.events: List[SpanEvent] = []

    # -- mutation -------------------------------------------------------
    def set(self, **attrs: object) -> "Span":
        """Attach (or overwrite) typed attributes."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: object) -> "Span":
        """Record a point event at the current simulated time."""
        self.events.append(SpanEvent(name, self._tracer.now, attrs))
        return self

    def finish(self, **attrs: object) -> "Span":
        """End the span at the current simulated time (idempotent)."""
        if attrs:
            self.attrs.update(attrs)
        if self.end is None:
            self.end = self._tracer.now
        return self

    # -- queries --------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        """Seconds from start to end (None while open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return f"Span#{self.span_id} {self.name!r} [{self.start:.6f}, {end}]"


class _NullSpan:
    """The shared do-nothing span handed out by the disabled tracer."""

    __slots__ = ()

    span_id = 0
    name = ""
    start = 0.0
    end = None
    parent_id = None
    attrs: Dict[str, object] = {}
    events: Tuple[()] = ()
    finished = False
    duration = None

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: object) -> "_NullSpan":
        return self

    def finish(self, **attrs: object) -> "_NullSpan":
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()


class SpanTracer:
    """Collects a deterministic span forest for one simulation run."""

    enabled = True

    def __init__(self, clock) -> None:
        if not hasattr(clock, "now"):
            raise ConfigError("tracer clock must expose a .now attribute")
        self._clock = clock
        self.spans: List[Span] = []
        self._ids = itertools.count(1)

    @property
    def now(self) -> float:
        return self._clock.now

    # -- creation -------------------------------------------------------
    def begin(self, name: str, parent: Optional[Span] = None, **attrs: object) -> Span:
        """Open a span at the current simulated time."""
        parent_id = None
        if parent is not None and parent is not NULL_SPAN:
            parent_id = parent.span_id
        span = Span(self, next(self._ids), name, self.now, parent_id)
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None,
             **attrs: object) -> Iterator[Span]:
        """Lexically scoped span: ended on exit of the ``with`` block."""
        span = self.begin(name, parent=parent, **attrs)
        try:
            yield span
        finally:
            span.finish()

    # -- queries --------------------------------------------------------
    def roots(self) -> List[Span]:
        """Spans with no parent, in begin order."""
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of ``span``, in begin order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def named(self, name: str) -> List[Span]:
        """All spans called ``name``, in begin order."""
        return [s for s in self.spans if s.name == name]

    def __len__(self) -> int:
        return len(self.spans)


class NullTracer:
    """The disabled tracer: every operation is a constant-time no-op."""

    enabled = False
    spans: Tuple[()] = ()

    def begin(self, name: str, parent: Optional[Span] = None,
              **attrs: object) -> _NullSpan:
        return NULL_SPAN

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None,
             **attrs: object) -> Iterator[_NullSpan]:
        yield NULL_SPAN

    def roots(self) -> List[Span]:
        return []

    def children_of(self, span) -> List[Span]:
        return []

    def named(self, name: str) -> List[Span]:
        return []

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()


class Observability:
    """One run's observability bundle: a tracer plus a metrics registry.

    The metrics registry is always live (recording is O(1), consumes no
    randomness and never touches the simulator, so it cannot perturb a
    run); the tracer is :data:`NULL_TRACER` unless ``tracing=True``.
    """

    def __init__(self, clock=None, tracing: bool = False) -> None:
        self.metrics = MetricsRegistry()
        if tracing:
            if clock is None:
                raise ConfigError("tracing requires a clock (Simulator or SimClock)")
            self.tracer: object = SpanTracer(clock)
        else:
            self.tracer = NULL_TRACER

    @property
    def tracing(self) -> bool:
        """Whether span collection is live."""
        return self.tracer.enabled
