"""Firewall baseline: block by dropping instead of holding.

The paper contrasts its transparent proxy with "methods such as
firewalls and network filters that break the connection and require
users to repeat a voice command" (Section I).  This tap implements
that blunt approach: while a decision is pending it silently *drops*
the speaker's data packets.  Nothing ACKs them, so the speaker's TCP
retransmits, stalls, and — for blocked commands — eventually aborts
the connection.  Legitimate commands survive only through seconds of
retransmission delay.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.net.addresses import IPv4Address
from repro.net.link import TapHost
from repro.net.packet import Packet, Protocol

# decide(callback): invoke callback(True) for legitimate traffic.
DecideFunction = Callable[[Callable[[bool], None]], None]


class FirewallTap(TapHost):
    """Inline packet filter with drop-while-deciding semantics."""

    IDLE_GAP = 2.5
    BLOCK_DURATION = 30.0

    def __init__(
        self,
        name: str,
        ip: IPv4Address,
        covered: Set[IPv4Address],
        decide: Optional[DecideFunction] = None,
    ) -> None:
        super().__init__(name, ip)
        self.covered = set(covered)
        self.decide = decide
        self._state = "idle"  # idle | deciding | blocking
        self._blocking_until = 0.0
        self._last_data_time: Optional[float] = None
        self.packets_dropped = 0
        self.packets_bridged = 0
        self.decisions_started = 0

    def intercept(self, packet: Packet) -> None:
        """Drop, pass, or gate one tapped packet per the filter state."""
        now = self.network.sim.now
        if not self._is_client_data(packet):
            self.packets_bridged += 1
            self.bridge(packet)
            return

        if self._state == "blocking":
            if now < self._blocking_until:
                self.packets_dropped += 1
                return
            self._state = "idle"

        if self._state == "idle" and self._spike_starts(now):
            self._state = "deciding"
            self.decisions_started += 1
            if self.decide is not None:
                self.decide(self._on_verdict)
        self._last_data_time = now

        if self._state == "deciding":
            # No transparent proxy: the packet is simply gone.  The
            # speaker's TCP will retransmit it and, if the stall lasts,
            # abort the session.
            self.packets_dropped += 1
            return
        self.packets_bridged += 1
        self.bridge(packet)

    def _on_verdict(self, legitimate: bool) -> None:
        if legitimate:
            self._state = "idle"
        else:
            self._state = "blocking"
            self._blocking_until = self.network.sim.now + self.BLOCK_DURATION

    def _is_client_data(self, packet: Packet) -> bool:
        if packet.src.ip not in self.covered:
            return False
        if packet.protocol is Protocol.UDP:
            return packet.dst.port == 443
        return packet.payload_len > 0

    def _spike_starts(self, now: float) -> bool:
        if self._last_data_time is None:
            return True
        return (now - self._last_data_time) > self.IDLE_GAP
