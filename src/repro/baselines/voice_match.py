"""Voice-match-only defense: the commercial speakers' protection.

The speaker is trained on the owner's voice during setup and refuses
commands whose voice does not match.  It stops a *guest speaking in his
own voice*, but replayed and synthesized owner audio carries the
owner's voiceprint and passes — the gap that motivates VoiceGuard
(Sections I and II-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.audio.verification import DEFAULT_ACCEPT_THRESHOLD, VoiceMatchVerifier
from repro.audio.voiceprint import UtteranceSource, VoicePrint, VoiceUtterance


@dataclass
class DefenseOutcome:
    """Aggregated accept/block counts per utterance source."""

    accepted: Dict[str, int] = field(default_factory=dict)
    blocked: Dict[str, int] = field(default_factory=dict)

    def record(self, source: UtteranceSource, accepted: bool) -> None:
        """Count one accept/block outcome for a source class."""
        bucket = self.accepted if accepted else self.blocked
        bucket[source.value] = bucket.get(source.value, 0) + 1

    def accept_rate(self, source: UtteranceSource) -> float:
        """Accepted fraction for a source class (NaN if unseen)."""
        a = self.accepted.get(source.value, 0)
        b = self.blocked.get(source.value, 0)
        if a + b == 0:
            return float("nan")
        return a / (a + b)


class VoiceMatchDefense:
    """A standalone voice-match gate for baseline experiments."""

    name = "voice-match"

    def __init__(self, accept_threshold: float = DEFAULT_ACCEPT_THRESHOLD) -> None:
        self.verifier = VoiceMatchVerifier(accept_threshold)
        self.outcome = DefenseOutcome()

    def enroll_owner(self, owner: VoicePrint, rng: np.random.Generator) -> None:
        """Enroll the owner's voiceprint from live samples."""
        self.verifier.enroll(owner, rng)

    def admits(self, utterance: VoiceUtterance) -> bool:
        """Would the speaker execute this utterance?"""
        accepted = self.verifier.verify(utterance).accepted
        self.outcome.record(utterance.source, accepted)
        return accepted

    def evaluate(self, utterances: List[VoiceUtterance]) -> DefenseOutcome:
        """Run a batch of utterances through the gate."""
        for utterance in utterances:
            self.admits(utterance)
        return self.outcome
