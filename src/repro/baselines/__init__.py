"""Baseline defenses the paper compares against (implicitly or explicitly).

* :mod:`repro.baselines.naive_spike` — the strawman traffic detector of
  Figure 3: every spike after a no-traffic period is treated as a voice
  command, so the Echo's response spikes get held too, adding delays.
* :mod:`repro.baselines.voice_match` — the commercial speakers' built-in
  voice recognition: accepts anything carrying the owner's voice, so
  replay/synthesis attacks pass.
* :mod:`repro.baselines.firewall` — a blocking firewall that drops
  packets instead of holding them: decisions cost retransmissions,
  broken sessions, and repeated commands.
"""

from repro.baselines.firewall import FirewallTap
from repro.baselines.naive_spike import NaiveSpikeDetector
from repro.baselines.voice_match import VoiceMatchDefense

__all__ = ["FirewallTap", "NaiveSpikeDetector", "VoiceMatchDefense"]
