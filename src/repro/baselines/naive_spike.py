"""The naive spike detector (paper Figure 3's strawman).

"Whenever there is a traffic spike after a no-traffic period, the Echo
Dot receives a voice command."  Correct for the command spike ① but
also fires on the response spikes ③④⑤, making the Traffic Handler
hold response traffic and delay the speaker's spoken answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.events import TrafficClass


@dataclass
class SpikeVerdict:
    """The naive detector's call on one spike."""

    spike_index: int
    classification: TrafficClass
    would_hold: bool


class NaiveSpikeDetector:
    """Classifies every post-idle spike as a command."""

    name = "naive-spike"

    def classify_spike(self, lengths: Sequence[int]) -> TrafficClass:
        """Any spike is a command — lengths are ignored by design."""
        return TrafficClass.COMMAND

    def evaluate_interaction(self, spikes: Sequence[Sequence[int]]) -> List[SpikeVerdict]:
        """Judge each spike of one interaction (spike 0 is the real
        command; the rest are response spikes)."""
        verdicts = []
        for index, lengths in enumerate(spikes):
            classification = self.classify_spike(lengths)
            verdicts.append(SpikeVerdict(
                spike_index=index,
                classification=classification,
                would_hold=classification is TrafficClass.COMMAND,
            ))
        return verdicts

    def unnecessary_holds(self, spikes: Sequence[Sequence[int]]) -> int:
        """Response spikes this detector would needlessly hold."""
        return sum(
            1 for verdict in self.evaluate_interaction(spikes)[1:] if verdict.would_hold
        )
