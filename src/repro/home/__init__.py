"""Smart-home environment: people, mobile devices, push notifications.

This package animates the testbeds: :class:`Person` objects move along
routes and stand at measurement points, carrying :class:`Smartphone` /
:class:`Smartwatch` devices that measure the speaker's Bluetooth RSSI
when the guard pushes a request through the (FCM-like)
:class:`PushService`.  A :class:`MotionSensor` near the stairs feeds
the floor-level tracker, and :class:`HomeEnvironment` wires everything
to one simulator.
"""

from repro.home.devices import MobileDevice, MotionSensor, Smartphone, Smartwatch
from repro.home.environment import HomeEnvironment
from repro.home.person import Person
from repro.home.push import PushService

__all__ = [
    "HomeEnvironment",
    "MobileDevice",
    "MotionSensor",
    "Person",
    "PushService",
    "Smartphone",
    "Smartwatch",
]
