"""People and their movement.

A :class:`Person` has a position in the floor plan, a voiceprint, and
optionally a walk in progress.  Positions are computed lazily from the
active walk and the simulated clock — the simulation does not tick
every person every frame.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.audio.voiceprint import UtteranceSource, VoicePrint, VoiceUtterance, live_utterance
from repro.radio.floorplan import DEVICE_CARRY_HEIGHT
from repro.radio.geometry import Point, distance
from repro.radio.testbeds import WalkRoute
from repro.sim.simulator import Simulator

WALKING_SPEED = 1.2  # m/s, used when walking directly to a point


class Person:
    """A human in the home: owner, family member, or guest."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        rng: np.random.Generator,
        start: Point,
        is_owner: bool = True,
    ) -> None:
        self.name = name
        self.sim = sim
        self.is_owner = is_owner
        self._rng = rng
        self.voiceprint = VoicePrint.create(name, rng)
        self._anchor = start
        self._walk: Optional[WalkRoute] = None
        self._walk_started = 0.0
        self._movement_listeners: list = []

    # -- position ---------------------------------------------------------
    @property
    def position(self) -> Point:
        """Current feet position (z = the floor level being walked)."""
        if self._walk is not None:
            elapsed = self.sim.now - self._walk_started
            if elapsed >= self._walk.duration:
                self._anchor = self._walk.waypoints[-1]
                self._walk = None
            else:
                return self._walk.position_at(elapsed)
        return self._anchor

    def device_position(self) -> Point:
        """Where a carried device sits (about a metre above the feet)."""
        return self.position.offset(dz=DEVICE_CARRY_HEIGHT)

    def body_blocks_radio(self) -> bool:
        """Whether the carrier's body currently shadows the radio path.

        Orientation is not tracked; the body blocks the path roughly a
        quarter of the time, matching the measurement procedure of the
        paper (4 orientations per location).
        """
        return bool(self._rng.random() < 0.25)

    # -- movement ---------------------------------------------------------
    def add_movement_listener(self, listener) -> None:
        """Call ``listener()`` whenever this person starts a move.

        Lazily evaluated positions mean nothing in the simulation ticks
        while a person stands still; sleepy observers (the gated motion
        sensor) use this hook to wake up only when positions can change
        again.
        """
        self._movement_listeners.append(listener)

    def teleport(self, point: Point) -> None:
        """Place the person at ``point`` immediately (workload setup)."""
        self._walk = None
        self._anchor = point
        for listener in self._movement_listeners:
            listener()

    def follow(self, route: WalkRoute) -> None:
        """Begin walking ``route`` now; position interpolates over time."""
        self._walk = route
        self._walk_started = self.sim.now
        for listener in self._movement_listeners:
            listener()

    def walk_to(self, target: Point, speed: float = WALKING_SPEED) -> float:
        """Walk in a straight line to ``target``; returns the duration."""
        here = self.position
        duration = distance(here, target) / speed
        self.follow(WalkRoute(f"{self.name}-walk", [here, target], duration=max(duration, 1e-6)))
        return duration

    @property
    def walking(self) -> bool:
        """Whether a walk is currently in progress."""
        return self._walk is not None and (self.sim.now - self._walk_started) < self._walk.duration

    # -- speech -----------------------------------------------------------
    def speak(
        self,
        text: str,
        duration: float,
        source: Optional[UtteranceSource] = None,
    ) -> VoiceUtterance:
        """Produce a live utterance in this person's voice."""
        if source is None:
            source = UtteranceSource.LIVE_OWNER if self.is_owner else UtteranceSource.LIVE_GUEST
        return live_utterance(text, duration, self.voiceprint, self._rng, source=source)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        p = self.position
        return f"Person({self.name!r} at ({p.x:.1f}, {p.y:.1f}, {p.z:.1f}))"
