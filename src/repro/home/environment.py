"""The physical home environment.

:class:`HomeEnvironment` owns the *physical* world of one experiment:
the floor plan/testbed, the propagation model, the speaker's Bluetooth
beacon, the people, their mobile devices, the push service, and the
optional stair motion sensor.  Network hosts (speakers, clouds, guard)
are layered on top by the scenario builders in
:mod:`repro.experiments.scenarios`.

It also models the acoustic channel at the coarse level the threat
model needs: an utterance played at a position is heard by the speaker
if the source is in the same room (or an adjacent line-of-sight spot)
and close enough.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.audio.voiceprint import VoiceUtterance
from repro.errors import RadioError
from repro.faults.plan import FaultInjector, FaultPlan
from repro.home.devices import MobileDevice, MotionSensor, Smartphone, Smartwatch
from repro.home.person import Person
from repro.home.push import PushService
from repro.net.packet import reset_packet_numbers
from repro.obs.tracer import Observability
from repro.radio.bluetooth import BluetoothBeacon
from repro.radio.geometry import Point, distance
from repro.radio.propagation import PropagationModel, PropagationParams
from repro.radio.testbeds import Testbed
from repro.sim.random import RngHub
from repro.sim.simulator import Simulator

HEARING_RANGE = 8.0  # metres: in-room voice pickup limit
THROUGH_DOOR_RANGE = 6.0  # metres: pickup through an open doorway

MicrophoneListener = Callable[[VoiceUtterance, Point], None]


class HomeEnvironment:
    """Physical world shared by every component of one experiment."""

    def __init__(
        self,
        testbed: Testbed,
        deployment: int = 0,
        seed: int = 0,
        params: Optional[PropagationParams] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracing: bool = False,
        with_fault_injector: bool = False,
    ) -> None:
        if not 0 <= deployment < len(testbed.speaker_locations):
            raise RadioError(
                f"testbed {testbed.name!r} has no deployment index {deployment}"
            )
        self.testbed = testbed
        self.deployment = deployment
        # Each experiment's world starts with fresh packet numbering so
        # repeated runs in one process produce identical traces.
        reset_packet_numbers()
        self.rng = RngHub(seed)
        self.sim = Simulator()
        # Metrics are always live (they cannot perturb a run); span
        # tracing is opt-in and a true no-op when off.
        self.obs = Observability(self.sim, tracing=tracing)
        # None unless a plan is active: components treat a missing
        # injector as "never inject", keeping fault-free runs pristine.
        # ``with_fault_injector`` forces an (unarmed, if planless)
        # injector to exist anyway — an unarmed injector answers every
        # query False without touching an RNG, so it is byte-identical
        # to having none, but it gives snapshot/restore worlds a live
        # object to re-arm per home (see FaultInjector.rearm).
        self.faults: Optional[FaultInjector] = (
            FaultInjector(self.sim, fault_plan)
            if (fault_plan is not None or with_fault_injector) else None
        )
        self.model = PropagationModel(
            testbed.plan, params, seed=self.rng.stream("radio.seed").integers(0, 2**31)
        )
        self.speaker_beacon = BluetoothBeacon(
            f"{testbed.name}-speaker", testbed.speaker_point(deployment)
        )
        self.push = PushService(self.sim, self.rng.stream("push.latency"),
                                faults=self.faults, obs=self.obs)
        self.persons: Dict[str, Person] = {}
        self.devices: Dict[str, MobileDevice] = {}
        self.motion_sensor: Optional[MotionSensor] = None
        self._microphones: List[MicrophoneListener] = []
        # 2.4 GHz coexistence: components report when they occupy the
        # band (speakers streaming audio); BLE scans slow down then.
        self.wifi_busy_providers: List[Callable[[], bool]] = []

    def wifi_busy(self) -> bool:
        """True while any registered component streams on 2.4 GHz."""
        return any(provider() for provider in self.wifi_busy_providers)

    # -- population ---------------------------------------------------------
    def add_person(self, name: str, start: Point, is_owner: bool = True) -> Person:
        """Create a resident or guest at ``start``."""
        if name in self.persons:
            raise RadioError(f"duplicate person {name!r}")
        person = Person(
            name, self.sim, self.rng.stream(f"person.{name}"), start, is_owner=is_owner
        )
        self.persons[name] = person
        return person

    def add_smartphone(self, name: str, carrier: Person) -> Smartphone:
        """Create a phone carried by ``carrier``."""
        return self._add_device(Smartphone(
            name, carrier, self.sim, self.model, self.rng.stream(f"device.{name}"),
            interference_provider=self.wifi_busy, faults=self.faults,
        ))

    def add_smartwatch(self, name: str, carrier: Person) -> Smartwatch:
        """Create a watch worn by ``carrier``."""
        return self._add_device(Smartwatch(
            name, carrier, self.sim, self.model, self.rng.stream(f"device.{name}"),
            interference_provider=self.wifi_busy, faults=self.faults,
        ))

    def _add_device(self, device: MobileDevice) -> MobileDevice:
        if device.name in self.devices:
            raise RadioError(f"duplicate device {device.name!r}")
        self.devices[device.name] = device
        return device

    def install_motion_sensor(self) -> MotionSensor:
        """Install the stair motion sensor (multi-floor testbeds)."""
        if self.testbed.stair_region is None:
            raise RadioError(f"testbed {self.testbed.name!r} has no stair region")
        self.motion_sensor = MotionSensor(
            "stair-motion",
            self.sim,
            self.testbed.stair_region,
            list(self.persons.values()),
            faults=self.faults,
        )
        self.motion_sensor.start()
        return self.motion_sensor

    # -- acoustics ------------------------------------------------------------
    def register_microphone(self, listener: MicrophoneListener) -> None:
        """Register a speaker's microphone; it receives audible utterances."""
        self._microphones.append(listener)

    def speaker_hears(self, source: Point) -> bool:
        """Whether audio played at ``source`` reaches the speaker's mics."""
        speaker = self.speaker_beacon.position
        d = distance(source, speaker)
        if self.testbed.plan.same_room(source, speaker):
            return d <= HEARING_RANGE
        # Through one open doorway: audible if close and no wall blocks.
        walls = self.testbed.plan.walls_crossed(source, speaker)
        floors = self.testbed.plan.floors_crossed(source, speaker)
        return walls == 0 and floors == 0 and d <= THROUGH_DOOR_RANGE

    def play_utterance(self, utterance: VoiceUtterance, source: Point) -> bool:
        """Emit audio at ``source``; returns True if a speaker heard it.

        Delivery to the microphone happens after the utterance has been
        fully spoken (the wake word triggers streaming earlier, but the
        interaction model consumes whole utterances).
        """
        if not self.speaker_hears(source):
            return False
        for microphone in self._microphones:
            microphone(utterance, source)
        return True

    # -- convenience ------------------------------------------------------------
    @property
    def speaker_floor(self) -> int:
        """The storey the speaker sits on."""
        return self.testbed.plan.floor_of(self.speaker_beacon.position)

    def owner_in_speaker_room(self) -> bool:
        """Any owner currently inside the speaker's room (ground truth)."""
        speaker_room = self.testbed.plan.room_of(self.speaker_beacon.position)
        if speaker_room is None:
            return False
        return any(
            person.is_owner and speaker_room.contains(person.position)
            for person in self.persons.values()
        )
