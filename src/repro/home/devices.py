"""Mobile devices and the stair motion sensor.

:class:`Smartphone` and :class:`Smartwatch` run the VoiceGuard
companion app: on a pushed request they scan for the speaker's
Bluetooth beacon and report the RSSI; they can also record the 8-second
40-sample traces the floor-level tracker consumes, and run the
threshold-calibration walk (Section IV-C).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.faults.plan import FaultInjector
from repro.home.person import Person
from repro.radio.bluetooth import BluetoothBeacon, BluetoothScanner, RssiSample
from repro.radio.propagation import PropagationModel
from repro.sim.process import PeriodicTask
from repro.sim.simulator import Simulator

TRACE_SAMPLE_PERIOD = 0.2  # the app records RSSI every 0.2 s (Section V-B2)
TRACE_SAMPLE_COUNT = 40  # ... for 8 s, giving 40 values per trace


class MobileDevice:
    """A phone or watch carried by (or near) a person."""

    kind = "device"

    def __init__(
        self,
        name: str,
        carrier: Person,
        sim: Simulator,
        model: PropagationModel,
        rng: np.random.Generator,
        interference_provider: Optional[Callable[[], bool]] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.name = name
        self.carrier = carrier
        self.sim = sim
        self.scanner = BluetoothScanner(
            name=f"{name}-scanner",
            model=model,
            position_provider=carrier.device_position,
            rng=rng,
            body_blocked_provider=carrier.body_blocks_radio,
            interference_provider=interference_provider,
            faults=faults,
        )
        self._app_wake_rng = rng
        self.rssi_requests_served = 0

    # -- guard interactions -------------------------------------------------
    def app_wake_delay(self) -> float:
        """Background app activation latency after a push arrives."""
        return float(self._app_wake_rng.uniform(0.08, 0.30))

    def measure_rssi(
        self,
        beacon: BluetoothBeacon,
        callback: Callable[[RssiSample], None],
    ) -> None:
        """Scan for ``beacon`` and deliver one sample asynchronously."""
        self.rssi_requests_served += 1

        def after_wake() -> None:
            self.scanner.scan(self.sim, beacon, callback)

        self.sim.schedule(self.app_wake_delay(), after_wake)

    def record_trace(
        self,
        beacon: BluetoothBeacon,
        callback: Callable[[List[RssiSample]], None],
        sample_count: int = TRACE_SAMPLE_COUNT,
        period: float = TRACE_SAMPLE_PERIOD,
    ) -> None:
        """Record ``sample_count`` RSSI samples, ``period`` apart.

        Used for floor-level traces: the Decision Module starts a trace
        whenever the stair motion sensor fires.
        """
        samples: List[RssiSample] = []

        def take_sample(now: float) -> None:
            samples.append(self.scanner.instant_rssi(beacon, now))
            if len(samples) >= sample_count:
                task.stop()
                callback(samples)

        task = PeriodicTask(self.sim, period, take_sample, first_delay=0.0)
        task.start()

    def instant_rssi(self, beacon: BluetoothBeacon) -> float:
        """Synchronous single measurement (calibration helper)."""
        return self.scanner.instant_rssi(beacon, self.sim.now).rssi


class Smartphone(MobileDevice):
    """A phone (Pixel 5 / Pixel 4a in the paper's experiments)."""

    kind = "smartphone"


class Smartwatch(MobileDevice):
    """A wearable (Samsung Galaxy Watch4 in the office testbed)."""

    kind = "smartwatch"


class MotionSensor:
    """A Hue-like PIR sensor covering a region of the floor plan.

    It polls person positions (PIR refresh) and fires its callback when
    anyone is inside the covered region; a refractory period models the
    sensor's cooldown, so one stair traversal yields one event.
    """

    POLL_PERIOD = 0.25
    REFRACTORY = 6.0

    def __init__(
        self,
        name: str,
        sim: Simulator,
        region: tuple,
        persons: List[Person],
        floor: Optional[int] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.region = region  # (x0, y0, x1, y1)
        self.persons = persons
        self.floor = floor
        self.faults = faults
        self.on_motion: Optional[Callable[[float], None]] = None
        self._last_fired = -1e9
        self.event_count = 0
        self.events_missed = 0
        self._task = PeriodicTask(sim, self.POLL_PERIOD, self._poll, first_delay=self.POLL_PERIOD)

    def start(self) -> None:
        """Begin polling for motion."""
        self._task.start()

    def stop(self) -> None:
        """Stop polling."""
        self._task.stop()

    def _covers(self, person: Person) -> bool:
        p = person.position
        x0, y0, x1, y1 = self.region
        return x0 <= p.x <= x1 and y0 <= p.y <= y1

    def _poll(self, now: float) -> None:
        if now - self._last_fired < self.REFRACTORY:
            return
        if any(self._covers(person) for person in self.persons):
            self._last_fired = now  # the traversal is consumed either way
            if self.faults is not None and self.faults.sensor_missed(self.name):
                # PIR dropout: the sensor sleeps through this traversal,
                # so the floor tracker never hears about it.
                self.events_missed += 1
                return
            self.event_count += 1
            if self.on_motion is not None:
                self.on_motion(now)
