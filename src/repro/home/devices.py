"""Mobile devices and the stair motion sensor.

:class:`Smartphone` and :class:`Smartwatch` run the VoiceGuard
companion app: on a pushed request they scan for the speaker's
Bluetooth beacon and report the RSSI; they can also record the 8-second
40-sample traces the floor-level tracker consumes, and run the
threshold-calibration walk (Section IV-C).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.faults.plan import FaultInjector
from repro.home.person import Person
from repro.radio.bluetooth import BluetoothBeacon, BluetoothScanner, RssiSample
from repro.radio.propagation import PropagationModel
from repro.sim import compat
from repro.sim.process import PeriodicTask
from repro.sim.simulator import Simulator

TRACE_SAMPLE_PERIOD = 0.2  # the app records RSSI every 0.2 s (Section V-B2)
TRACE_SAMPLE_COUNT = 40  # ... for 8 s, giving 40 values per trace


class MobileDevice:
    """A phone or watch carried by (or near) a person."""

    kind = "device"

    def __init__(
        self,
        name: str,
        carrier: Person,
        sim: Simulator,
        model: PropagationModel,
        rng: np.random.Generator,
        interference_provider: Optional[Callable[[], bool]] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.name = name
        self.carrier = carrier
        self.sim = sim
        self.scanner = BluetoothScanner(
            name=f"{name}-scanner",
            model=model,
            position_provider=carrier.device_position,
            rng=rng,
            body_blocked_provider=carrier.body_blocks_radio,
            interference_provider=interference_provider,
            faults=faults,
        )
        self._app_wake_rng = rng
        self.rssi_requests_served = 0

    # -- guard interactions -------------------------------------------------
    def app_wake_delay(self) -> float:
        """Background app activation latency after a push arrives."""
        return float(self._app_wake_rng.uniform(0.08, 0.30))

    def measure_rssi(
        self,
        beacon: BluetoothBeacon,
        callback: Callable[[RssiSample], None],
    ) -> None:
        """Scan for ``beacon`` and deliver one sample asynchronously."""
        self.rssi_requests_served += 1

        def after_wake() -> None:
            self.scanner.scan(self.sim, beacon, callback)

        self.sim.schedule(self.app_wake_delay(), after_wake)

    def record_trace(
        self,
        beacon: BluetoothBeacon,
        callback: Callable[[List[RssiSample]], None],
        sample_count: int = TRACE_SAMPLE_COUNT,
        period: float = TRACE_SAMPLE_PERIOD,
    ) -> None:
        """Record ``sample_count`` RSSI samples, ``period`` apart.

        Used for floor-level traces: the Decision Module starts a trace
        whenever the stair motion sensor fires.
        """
        samples: List[RssiSample] = []

        def take_sample(now: float) -> None:
            samples.append(self.scanner.instant_rssi(beacon, now))
            if len(samples) >= sample_count:
                task.stop()
                callback(samples)

        task = PeriodicTask(self.sim, period, take_sample, first_delay=0.0)
        task.start()

    def instant_rssi(self, beacon: BluetoothBeacon) -> float:
        """Synchronous single measurement (calibration helper)."""
        return self.scanner.instant_rssi(beacon, self.sim.now).rssi


class Smartphone(MobileDevice):
    """A phone (Pixel 5 / Pixel 4a in the paper's experiments)."""

    kind = "smartphone"


class Smartwatch(MobileDevice):
    """A wearable (Samsung Galaxy Watch4 in the office testbed)."""

    kind = "smartwatch"


class MotionSensor:
    """A Hue-like PIR sensor covering a region of the floor plan.

    It polls person positions (PIR refresh) and fires its callback when
    anyone is inside the covered region; a refractory period models the
    sensor's cooldown, so one stair traversal yields one event.

    Positions are lazy functions of the active walk and the clock, so a
    poll can only observe something new when somebody is walking (or
    just moved).  The sensor exploits that to *gate* its polling: polls
    inside the refractory window are skipped straight to the first
    grid instant past it (they return unconditionally anyway), and when
    every tracked person stands still outside the region the sensor
    sleeps entirely, re-joining its 0.25 s poll grid when a
    movement listener (:meth:`Person.add_movement_listener`) wakes it.
    The instants at which a poll *observes* anything are exactly the
    legacy schedule's, so fire times are bit-identical; only the no-op
    wakeups disappear.  ``repro.sim.compat`` legacy mode keeps the
    original poll-every-tick behaviour for the kernel benchmark.
    """

    POLL_PERIOD = 0.25
    REFRACTORY = 6.0

    def __init__(
        self,
        name: str,
        sim: Simulator,
        region: tuple,
        persons: List[Person],
        floor: Optional[int] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.region = region  # (x0, y0, x1, y1)
        self.persons = persons
        self.floor = floor
        self.faults = faults
        self.on_motion: Optional[Callable[[float], None]] = None
        self._last_fired = -1e9
        self.event_count = 0
        self.events_missed = 0
        self._stopped = True
        self._next_poll = 0.0
        self._poll_handle = None
        if compat.legacy_kernel_enabled():
            self._task = PeriodicTask(sim, self.POLL_PERIOD, self._poll, first_delay=self.POLL_PERIOD)
        else:
            self._task = None
            for person in persons:
                person.add_movement_listener(self._on_person_moved)

    def start(self) -> None:
        """Begin polling for motion."""
        if self._task is not None:
            self._task.start()
            return
        if not self._stopped:
            return
        self._stopped = False
        self._next_poll = self.sim.now + self.POLL_PERIOD
        self._schedule_next()

    def stop(self) -> None:
        """Stop polling."""
        if self._task is not None:
            self._task.stop()
            return
        self._stopped = True
        if self._poll_handle is not None:
            self._poll_handle.cancel()
            self._poll_handle = None

    def _covers(self, person: Person) -> bool:
        p = person.position
        x0, y0, x1, y1 = self.region
        return x0 <= p.x <= x1 and y0 <= p.y <= y1

    def _poll(self, now: float) -> None:
        if now - self._last_fired < self.REFRACTORY:
            return
        if any(self._covers(person) for person in self.persons):
            self._last_fired = now  # the traversal is consumed either way
            if self.faults is not None and self.faults.sensor_missed(self.name):
                # PIR dropout: the sensor sleeps through this traversal,
                # so the floor tracker never hears about it.
                self.events_missed += 1
                return
            self.event_count += 1
            if self.on_motion is not None:
                self.on_motion(now)

    # -- gated polling (optimized kernel) -------------------------------
    def _poll_event(self) -> None:
        self._poll_handle = None
        if self._stopped:
            return
        now = self._next_poll
        self._poll(now)
        # Advancing by repeated addition reproduces PeriodicTask's grid
        # exactly (each fire schedules the next at fire time + period).
        self._next_poll = now + self.POLL_PERIOD
        self._schedule_next()

    def _schedule_next(self) -> None:
        # Fast-forward through the refractory window: legacy polls in it
        # return before reading any position, so nothing observable can
        # happen until the first grid instant past it.  The loop repeats
        # the legacy per-tick comparison so the landing tick is
        # float-exact.
        t = self._next_poll
        last_fired = self._last_fired
        period = self.POLL_PERIOD
        refractory = self.REFRACTORY
        while t - last_fired < refractory:
            t += period
        self._next_poll = t
        if not any(p.walking for p in self.persons) and not any(
            self._covers(p) for p in self.persons
        ):
            # Everyone is standing still outside the region: coverage
            # cannot change until someone moves.  Sleep; the movement
            # listeners re-enter the poll grid.
            return
        self._poll_handle = self.sim.schedule_at(t, self._poll_event)

    def _on_person_moved(self) -> None:
        if self._stopped or self._poll_handle is not None:
            return
        # Re-join the poll grid at the next instant strictly after now.
        # (A poll at exactly `now` would have read the pre-move position
        # — known uncovered, or we would not have been asleep — so
        # skipping it changes nothing observable.)
        t = self._next_poll
        now = self.sim.now
        period = self.POLL_PERIOD
        if now - t > 64.0 * period:
            # After a long sleep, stepping tick by tick is O(gap).  The
            # grid lives on multiples of the (dyadic) poll period, where
            # one fused jump is float-exact, so land a few ticks short
            # and let the exact per-tick addition finish the walk.
            t += int((now - t) / period - 2.0) * period
        while t <= now:
            t += period
        self._next_poll = t
        self._schedule_next()
