"""FCM-like push notification service.

The Decision Module reaches the owner's devices by pushing an RSSI
measurement request through a cloud messaging service (paper Figure 5,
steps 4-7).  The dominant latency components are the push delivery
itself and the device-side BLE scan; both are right-skewed.  The model
here, combined with the scan model in :mod:`repro.radio.bluetooth`,
reproduces the paper's Figure 7 distribution (Echo Dot average 1.622 s,
78 % of queries under 2 s, rare stragglers just above 3 s).

Fault injection: an active :class:`repro.faults.FaultInjector` can lose
a push before delivery (silently — real FCM gives the sender no signal),
stretch the cloud path, find the target device offline (the cloud *does*
learn this, surfaced through ``on_undeliverable``), or drop the device's
report on its way back to the guard.  Without a plan every hook is a
no-op and the service behaves exactly as it always has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.faults.plan import FaultInjector
from repro.home.devices import MobileDevice
from repro.obs.tracer import Observability
from repro.radio.bluetooth import BluetoothBeacon, RssiSample
from repro.sim.random import bounded_lognormal
from repro.sim.simulator import Simulator

UndeliverableCallback = Callable[[MobileDevice], None]


@dataclass(frozen=True)
class RssiReport:
    """A device's answer to an RSSI query."""

    device_name: str
    sample: RssiSample
    requested_at: float
    reported_at: float

    @property
    def round_trip(self) -> float:
        """Seconds from query to report."""
        return self.reported_at - self.requested_at


class PushService:
    """Delivers measurement requests to devices with cloud-path latency."""

    DELIVERY_MEAN = 0.75
    DELIVERY_SIGMA = 0.62
    DELIVERY_MIN = 0.12
    DELIVERY_MAX = 3.5
    REPORT_LATENCY = 0.06  # device -> guard reply over LAN/WAN

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        faults: Optional[FaultInjector] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.sim = sim
        self._rng = rng
        self.faults = faults
        self.pushes_sent = 0
        self.pushes_lost = 0
        self.pushes_undeliverable = 0
        self.reports_dropped = 0
        # Pre-bound instruments: hot-path recording is one attribute add.
        metrics = (obs or Observability()).metrics.scope("push")
        self._m_sent = metrics.counter("sent")
        self._m_lost = metrics.counter("lost")
        self._m_undeliverable = metrics.counter("undeliverable")
        self._m_reports_dropped = metrics.counter("reports_dropped")
        self._m_reports = metrics.counter("reports_delivered")
        self._m_delivery = metrics.histogram("delivery_delay")
        self._m_rtt = metrics.histogram("round_trip")

    def delivery_delay(self) -> float:
        """Draw one push-delivery latency."""
        return bounded_lognormal(
            self._rng, self.DELIVERY_MEAN, self.DELIVERY_SIGMA,
            self.DELIVERY_MIN, self.DELIVERY_MAX,
        )

    def request_rssi(
        self,
        device: MobileDevice,
        beacon: BluetoothBeacon,
        callback: Callable[[RssiReport], None],
        on_undeliverable: Optional[UndeliverableCallback] = None,
    ) -> bool:
        """Push an RSSI request to ``device``; asynchronous reply.

        Timeline: push delivery -> app wake -> BLE scan -> report.
        Returns whether the push actually entered the delivery pipeline;
        ``pushes_sent`` counts only pushes whose delivery event was
        scheduled, so injected pre-delivery losses never inflate it.
        An offline device surfaces as ``on_undeliverable(device)`` at
        delivery time — the messaging cloud's NACK back to the sender.
        """
        requested_at = self.sim.now
        faults = self.faults
        if faults is not None and faults.push_dropped(device.name):
            # Lost inside the messaging cloud: the sender learns nothing.
            self.pushes_lost += 1
            self._m_lost.inc()
            return False
        delay = self.delivery_delay()
        if faults is not None:
            delay += faults.push_extra_delay(device.name)

        def on_sample(sample: RssiSample) -> None:
            if faults is not None and faults.report_dropped(device.name):
                self.reports_dropped += 1
                self._m_reports_dropped.inc()
                return

            def deliver_report() -> None:
                self._m_reports.inc()
                self._m_rtt.record(self.sim.now - requested_at)
                callback(
                    RssiReport(
                        device_name=device.name,
                        sample=sample,
                        requested_at=requested_at,
                        reported_at=self.sim.now,
                    )
                )

            self.sim.schedule(self.REPORT_LATENCY, deliver_report)

        def on_delivered() -> None:
            if faults is not None and faults.device_offline(device.name):
                self.pushes_undeliverable += 1
                self._m_undeliverable.inc()
                if on_undeliverable is not None:
                    on_undeliverable(device)
                return
            device.measure_rssi(beacon, on_sample)

        self.sim.schedule(delay, on_delivered)
        self.pushes_sent += 1
        self._m_sent.inc()
        self._m_delivery.record(delay)
        return True

    def request_group(
        self,
        devices: list,
        beacon: BluetoothBeacon,
        callback: Callable[[RssiReport], None],
        on_undeliverable: Optional[UndeliverableCallback] = None,
    ) -> None:
        """Push to a whole device group simultaneously (multi-user mode,
        Section IV-C): each device replies independently."""
        for device in devices:
            self.request_rssi(device, beacon, callback,
                              on_undeliverable=on_undeliverable)
