"""FCM-like push notification service.

The Decision Module reaches the owner's devices by pushing an RSSI
measurement request through a cloud messaging service (paper Figure 5,
steps 4-7).  The dominant latency components are the push delivery
itself and the device-side BLE scan; both are right-skewed.  The model
here, combined with the scan model in :mod:`repro.radio.bluetooth`,
reproduces the paper's Figure 7 distribution (Echo Dot average 1.622 s,
78 % of queries under 2 s, rare stragglers just above 3 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.home.devices import MobileDevice
from repro.radio.bluetooth import BluetoothBeacon, RssiSample
from repro.sim.random import bounded_lognormal
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class RssiReport:
    """A device's answer to an RSSI query."""

    device_name: str
    sample: RssiSample
    requested_at: float
    reported_at: float

    @property
    def round_trip(self) -> float:
        """Seconds from query to report."""
        return self.reported_at - self.requested_at


class PushService:
    """Delivers measurement requests to devices with cloud-path latency."""

    DELIVERY_MEAN = 0.75
    DELIVERY_SIGMA = 0.62
    DELIVERY_MIN = 0.12
    DELIVERY_MAX = 3.5
    REPORT_LATENCY = 0.06  # device -> guard reply over LAN/WAN

    def __init__(self, sim: Simulator, rng: np.random.Generator) -> None:
        self.sim = sim
        self._rng = rng
        self.pushes_sent = 0

    def delivery_delay(self) -> float:
        """Draw one push-delivery latency."""
        return bounded_lognormal(
            self._rng, self.DELIVERY_MEAN, self.DELIVERY_SIGMA,
            self.DELIVERY_MIN, self.DELIVERY_MAX,
        )

    def request_rssi(
        self,
        device: MobileDevice,
        beacon: BluetoothBeacon,
        callback: Callable[[RssiReport], None],
    ) -> None:
        """Push an RSSI request to ``device``; asynchronous reply.

        Timeline: push delivery -> app wake -> BLE scan -> report.
        """
        requested_at = self.sim.now
        self.pushes_sent += 1

        def on_sample(sample: RssiSample) -> None:
            def deliver_report() -> None:
                callback(
                    RssiReport(
                        device_name=device.name,
                        sample=sample,
                        requested_at=requested_at,
                        reported_at=self.sim.now,
                    )
                )

            self.sim.schedule(self.REPORT_LATENCY, deliver_report)

        def on_delivered() -> None:
            device.measure_rssi(beacon, on_sample)

        self.sim.schedule(self.delivery_delay(), on_delivered)

    def request_group(
        self,
        devices: list,
        beacon: BluetoothBeacon,
        callback: Callable[[RssiReport], None],
    ) -> None:
        """Push to a whole device group simultaneously (multi-user mode,
        Section IV-C): each device replies independently."""
        for device in devices:
            self.request_rssi(device, beacon, callback)
