"""Exception hierarchy for the VoiceGuard reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly (e.g. time reversal)."""


class NetworkError(ReproError):
    """A network-stack invariant was violated (bad address, dead connection)."""


class ConnectionClosedError(NetworkError):
    """Data was sent on a TCP connection that is no longer established."""


class RadioError(ReproError):
    """Radio/propagation misuse (unknown floor, device without a position)."""


class FloorPlanError(RadioError):
    """A floor plan is geometrically inconsistent."""


class ConfigError(ReproError):
    """Invalid VoiceGuard configuration."""


class RegistrationError(ReproError):
    """Device registration on the guard was rejected (paper section IV-C:
    registration requires manual owner approval)."""


class DecisionTimeoutError(ReproError):
    """No registered device answered an RSSI query before the deadline."""


class WorkloadError(ReproError):
    """An experiment workload was specified inconsistently."""


class ExperimentError(ReproError):
    """The parallel experiment engine failed (bad worker count, or a
    worker process died mid-task)."""
