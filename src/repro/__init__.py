"""VoiceGuard reproduction (DSN 2023).

VoiceGuard detects and blocks unauthorized voice commands to smart
speakers without touching the speakers' hardware, software, or cloud:
a transparent network proxy recognizes voice-command traffic from
encrypted packet metadata and holds it while the owner's phone or
watch proves proximity through the speaker's Bluetooth RSSI.

Quick start (see ``examples/quickstart.py`` for the full version):

>>> from repro import build_scenario
>>> scenario = build_scenario("house", "echo", seed=7)
>>> owner = scenario.owners[0]
>>> # ... move people around, speak commands, launch attacks ...

Package map
-----------
``repro.core``
    The guard itself: traffic recognition, the traffic handler, the
    RSSI decision module, the multi-user registry, threshold
    calibration, and floor-level tracking.
``repro.net``
    Simulated home network: TCP/TLS/UDP/DNS, packet capture, and the
    transparent proxy substrate.
``repro.speakers``
    Echo Dot and Google Home Mini traffic models plus their clouds.
``repro.radio`` / ``repro.home``
    Bluetooth propagation, the three paper testbeds, people, devices,
    and the push-notification service.
``repro.audio``
    Command corpora, speech pacing, voiceprints, speaker verification.
``repro.attacks`` / ``repro.baselines``
    The threat model's attackers and the defenses compared against.
``repro.experiments``
    Runners regenerating every table and figure in the paper.
"""

from repro.core import (
    DeviceRegistry,
    SpeakerProfile,
    TraceClassifier,
    Verdict,
    VoiceGuard,
    VoiceGuardConfig,
)
from repro.errors import ReproError
from repro.experiments import Scenario, SevenDayWorkload, build_scenario
from repro.home import HomeEnvironment
from repro.radio import Testbed, testbed_by_name

__version__ = "1.0.0"

__all__ = [
    "DeviceRegistry",
    "HomeEnvironment",
    "ReproError",
    "Scenario",
    "SevenDayWorkload",
    "SpeakerProfile",
    "Testbed",
    "TraceClassifier",
    "Verdict",
    "VoiceGuard",
    "VoiceGuardConfig",
    "__version__",
    "build_scenario",
    "testbed_by_name",
]
