"""Home synthesis for fleet-scale simulation.

The paper evaluates VoiceGuard on three physical testbeds.  A city
does not contain three homes; it contains hundreds of thousands of
*variations* of them.  This module samples that population: every home
is a :class:`HomeSpec` — a small, picklable, purely-parametric
description drawn deterministically from a base seed via
:func:`repro.experiments.parallel.derive_seed` — covering:

* **floor-plan jitter** — the base testbed geometry scaled in x/y by a
  factor drawn from a small *quantized* set.  Quantization is a
  deliberate design point: workers memoize the expensive world build
  (floor plan, wall array, propagation fields, calibration surface)
  per ``(testbed, deployment, scale)`` bucket, so a million homes
  reuse a few dozen worlds while still spanning small-apartment to
  large-house geometry;
* **device mixes** — owner counts and smartphone/smartwatch carry;
* **occupancy schedules** — how many commands a home issues and how
  often its owners are away from the speaker's room;
* **attack prevalence** — which homes a campaign actually reaches,
  and with how many payloads;
* **per-home RF/operational diversity** — calibration-margin jitter
  and home-network push-loss quality.

Seed derivation is *sharded*: home ``offset`` of shard ``s`` draws its
seed from ``(base, "fleet.home", s, offset)``, so a shard's homes are
identical no matter which worker runs them, in what order, or in which
chunking — the property the fleet determinism tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.experiments.parallel import derive_seed
from repro.radio.floorplan import FLOOR_HEIGHT, Door, FloorPlan, Room, SlabZone
from repro.radio.geometry import Point
from repro.radio.propagation import PropagationModel
from repro.radio.testbeds import Testbed, WalkRoute, testbed_by_name

# Share of each base testbed in the synthesized population.
DEFAULT_TESTBED_MIX: Tuple[Tuple[str, float], ...] = (
    ("house", 0.40),
    ("apartment", 0.35),
    ("office", 0.25),
)

# Quantized floor-plan jitter factors (see module docstring).
DEFAULT_PLAN_SCALES: Tuple[float, ...] = (0.85, 0.925, 1.0, 1.075, 1.15)

# Home-network push quality tiers: most homes are healthy, a fifth are
# mediocre, a tenth are poor (matching the resilience sweep's axis).
PUSH_LOSS_TIERS: Tuple[float, ...] = (0.0, 0.02, 0.08)
PUSH_LOSS_WEIGHTS: Tuple[float, ...] = (0.7, 0.2, 0.1)


def _cumulative(pairs) -> Tuple[Tuple[object, float], ...]:
    """Normalized cumulative weights for a cheap inverse-CDF pick."""
    pairs = list(pairs)
    total = float(sum(weight for _, weight in pairs))
    running = 0.0
    out = []
    for value, weight in pairs:
        running += weight / total
        out.append((value, running))
    return tuple(out)


_LOSS_CUMULATIVE = _cumulative(zip(PUSH_LOSS_TIERS, PUSH_LOSS_WEIGHTS))


@dataclass(frozen=True)
class HomeSpec:
    """One synthesized home, fully determined by its parameters.

    Everything a worker needs to simulate the home is here (plus the
    shared world cache); the spec is tiny and picklable, and two specs
    with the same fields produce byte-identical outcomes.
    """

    index: int            # global home index in the fleet
    shard: int
    seed: int             # derived per-home seed (all in-home draws)
    testbed: str
    deployment: int
    plan_scale: float
    owner_count: int
    device_kind: str      # "smartphone" | "smartwatch"
    legit_commands: int
    attacks: int          # 0 = the campaign never reached this home
    away_fraction: float  # share of time owners spend out of the room
    body_block_fraction: float
    push_loss: float
    threshold_margin: float  # calibration jitter (units of RSSI)


@dataclass(frozen=True)
class PopulationModel:
    """Sampling knobs for the synthesized home population."""

    testbed_mix: Tuple[Tuple[str, float], ...] = DEFAULT_TESTBED_MIX
    plan_scales: Tuple[float, ...] = DEFAULT_PLAN_SCALES
    attack_prevalence: float = 0.25
    legit_commands_mean: float = 20.0
    attacks_mean: float = 5.0

    def __post_init__(self) -> None:
        if not self.testbed_mix:
            raise WorkloadError("testbed mix must name at least one testbed")
        total = sum(weight for _, weight in self.testbed_mix)
        if total <= 0:
            raise WorkloadError("testbed mix weights must sum to a positive value")
        if not 0.0 <= self.attack_prevalence <= 1.0:
            raise WorkloadError(
                f"attack prevalence must be in [0, 1], got {self.attack_prevalence!r}"
            )
        for name, _ in self.testbed_mix:
            testbed_by_name(name)  # raises on unknown names, at config time
        object.__setattr__(self, "_mix_cumulative", _cumulative(self.testbed_mix))

    def home(self, base_seed: int, shard: int, offset: int, index: int) -> HomeSpec:
        """Synthesize home ``offset`` of ``shard`` (global ``index``).

        The draw order below is part of the population's definition:
        reordering it would re-deal every home in every fleet.  Draws
        come in fixed-size blocks (one uniform vector, one integer
        vector, then the variable-size tail) so synthesis stays cheap
        at millions of homes; unused entries are drawn anyway to keep
        every home's stream aligned.
        """
        seed = derive_seed(base_seed, "fleet.home", shard, offset)
        rng = np.random.default_rng(seed)
        # u: [mix pick, watch pick, away, body-block, attacked, loss tier]
        u = rng.random(6)
        # iv: [deployment, plan-scale slot, extra owners]
        iv = rng.integers(0, (2, len(self.plan_scales), 3))

        # 1. Base testbed, by mix weight.
        pick = u[0]
        testbed = self._mix_cumulative[-1][0]
        for name, cumulative in self._mix_cumulative:
            if pick < cumulative:
                testbed = name
                break

        # 2. Deployment and floor-plan jitter.
        deployment = int(iv[0])
        plan_scale = float(self.plan_scales[int(iv[1])])

        # 3. Device mix: the office population wears watches (the
        #    paper's setup); homes carry phones, with a watch minority.
        if testbed == "office":
            owner_count = 1
            device_kind = "smartwatch"
        else:
            owner_count = 1 + int(iv[2])
            device_kind = "smartwatch" if u[1] < 0.15 else "smartphone"

        # 4. Occupancy schedule.
        away_fraction = 0.25 + 0.55 * float(u[2])
        body_block_fraction = 0.2 + 0.4 * float(u[3])
        legit_commands = max(1, int(rng.poisson(self.legit_commands_mean)))

        # 5. Attack prevalence.
        attacks = 0
        if u[4] < self.attack_prevalence:
            attacks = max(1, int(rng.poisson(self.attacks_mean)))

        # 6. Operational diversity.
        tier_pick = u[5]
        push_loss = _LOSS_CUMULATIVE[-1][0]
        for tier, cumulative in _LOSS_CUMULATIVE:
            if tier_pick < cumulative:
                push_loss = tier
                break
        threshold_margin = float(rng.normal(0.0, 0.5))

        return HomeSpec(
            index=index,
            shard=shard,
            seed=seed,
            testbed=testbed,
            deployment=deployment,
            plan_scale=plan_scale,
            owner_count=owner_count,
            device_kind=device_kind,
            legit_commands=legit_commands,
            attacks=attacks,
            away_fraction=away_fraction,
            body_block_fraction=body_block_fraction,
            push_loss=push_loss,
            threshold_margin=threshold_margin,
        )


# ---------------------------------------------------------------------------
# Floor-plan jitter
# ---------------------------------------------------------------------------

def _scale_point(point: Point, factor: float) -> Point:
    # z encodes which storey a point is on; jitter stretches rooms in
    # plan view only, so storey membership (and slab crossings) hold.
    return Point(point.x * factor, point.y * factor, point.z)


def scale_testbed(name: str, factor: float) -> Testbed:
    """Rebuild a base testbed with its plan-view geometry scaled.

    Every x/y coordinate — rooms, walls, measurement points, slab
    zones, walking routes, speaker locations, the stair region — is
    multiplied by ``factor``; z (storeys) is untouched and door
    openings are fractional, so the scaled plan validates with the
    same topology, room names, and point numbering as the original.
    """
    base = testbed_by_name(name)
    if factor == 1.0:
        return base
    if factor <= 0.0:
        raise WorkloadError(f"plan scale must be positive, got {factor!r}")

    plan = FloorPlan(f"{base.plan.name} x{factor:g}", base.plan.floor_count)
    for room in base.plan.rooms.values():
        plan.add_room(Room(
            name=room.name,
            x0=room.x0 * factor, y0=room.y0 * factor,
            x1=room.x1 * factor, y1=room.y1 * factor,
            floor=room.floor, height=room.height,
        ))
    for wall in base.plan.walls:
        plan.add_wall(
            (wall.start[0] * factor, wall.start[1] * factor),
            (wall.end[0] * factor, wall.end[1] * factor),
            floor=int(round(wall.z_low / FLOOR_HEIGHT)),
            doors=tuple(Door(d.u_start, d.u_end) for d in wall.doors),
        )
    for zone in base.plan.slab_zones:
        plan.add_slab_zone(SlabZone(
            x0=zone.x0 * factor, y0=zone.y0 * factor,
            x1=zone.x1 * factor, y1=zone.y1 * factor,
            slab_height=zone.slab_height, attenuation=zone.attenuation,
        ))
    # Re-add points in numbering order so numbers (and the paper's
    # leak-cluster references) line up with the base plan.
    for number in sorted(base.plan.points):
        mp = base.plan.points[number]
        plan.add_points(mp.room_name, [_scale_point(mp.point, factor)])
    plan.validate()

    routes = {
        route_name: WalkRoute(
            name=route.name,
            waypoints=[_scale_point(p, factor) for p in route.waypoints],
            duration=route.duration,
        )
        for route_name, route in base.routes.items()
    }
    stair_region = None
    if base.stair_region is not None:
        x0, y0, x1, y1 = base.stair_region
        stair_region = (x0 * factor, y0 * factor, x1 * factor, y1 * factor)

    return Testbed(
        name=base.name,
        plan=plan,
        speaker_locations=[_scale_point(p, factor) for p in base.speaker_locations],
        speaker_rooms=list(base.speaker_rooms),
        routes=routes,
        line_of_sight_points={k: list(v) for k, v in base.line_of_sight_points.items()},
        stair_region=stair_region,
    )


# ---------------------------------------------------------------------------
# Worker-side world cache
# ---------------------------------------------------------------------------

# Threshold sits this far under the weakest legitimate spot's mean
# RSSI before per-home calibration jitter — the same "legit points must
# pass" contract the calibrator establishes on the real testbeds.
CALIBRATION_HEADROOM = 0.75


@dataclass
class FleetWorld:
    """The shared, expensive part of one ``(testbed, deployment, scale)``
    bucket: scaled geometry, propagation model, and the mean-RSSI
    surfaces every home in the bucket samples around."""

    testbed: Testbed
    model: PropagationModel
    speaker: Point
    legit_numbers: List[int] = field(default_factory=list)
    away_numbers: List[int] = field(default_factory=list)
    legit_means: np.ndarray = field(default_factory=lambda: np.empty(0))
    away_means: np.ndarray = field(default_factory=lambda: np.empty(0))
    threshold_base: float = 0.0


_WORLD_CACHE: Dict[Tuple[str, int, float], FleetWorld] = {}


def fleet_world(testbed_name: str, deployment: int, plan_scale: float) -> FleetWorld:
    """Build (or fetch) the shared world for one jitter bucket.

    The model seed derives from the bucket alone, so a bucket's static
    shadowing field is identical across workers and runs; per-home
    variation rides on top as sample noise, occupancy, and calibration
    jitter from the home's own seed.
    """
    key = (testbed_name, int(deployment), float(plan_scale))
    world = _WORLD_CACHE.get(key)
    if world is not None:
        return world

    testbed = scale_testbed(testbed_name, plan_scale)
    model = PropagationModel(
        testbed.plan,
        seed=derive_seed(0, "fleet.world", testbed_name, deployment,
                         f"{plan_scale:.6f}"),
    )
    speaker = testbed.speaker_point(deployment)
    legit_numbers = testbed.legitimate_points(deployment)
    all_numbers = sorted(testbed.plan.points)
    legit_set = set(legit_numbers)
    away_numbers = [n for n in all_numbers if n not in legit_set]

    legit_points = [testbed.device_point(n) for n in legit_numbers]
    away_points = [testbed.device_point(n) for n in away_numbers]
    legit_means = model.mean_rssi_many(speaker, legit_points)
    away_means = model.mean_rssi_many(speaker, away_points)

    world = FleetWorld(
        testbed=testbed,
        model=model,
        speaker=speaker,
        legit_numbers=list(legit_numbers),
        away_numbers=away_numbers,
        legit_means=np.asarray(legit_means, dtype=np.float64),
        away_means=np.asarray(away_means, dtype=np.float64),
        threshold_base=float(np.min(legit_means)) - CALIBRATION_HEADROOM,
    )
    _WORLD_CACHE[key] = world
    return world


def clear_world_cache() -> None:
    """Drop memoized worlds (tests; long-lived interactive sessions)."""
    _WORLD_CACHE.clear()


def warm_worlds(population: "PopulationModel") -> int:
    """Pre-build every world bucket the population can reach.

    Called in the parent before the pool spins up: on fork platforms
    the children inherit the warmed cache for free, instead of each
    worker rebuilding a few dozen propagation surfaces on first use.
    Idempotent; returns the bucket count.
    """
    for name, _ in population.testbed_mix:
        for deployment in (0, 1):
            for scale in population.plan_scales:
                fleet_world(name, deployment, scale)
    return len(population.testbed_mix) * 2 * len(population.plan_scales)


def scaled_spec(spec: HomeSpec, **overrides) -> HomeSpec:
    """A copy of ``spec`` with fields replaced (test/CLI convenience)."""
    return replace(spec, **overrides)
