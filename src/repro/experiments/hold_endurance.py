"""Hold endurance: how long can traffic be parked without breaking?

The paper's second contribution leans on the IoT event-delay findings
it cites (Section I): the transparent proxy "can hold smart speaker's
traffic for dozens of seconds without triggering any alarm or causing
the connection to be terminated", because it keeps ACKing segments and
keepalive probes locally.  A firewall that silently drops instead
starves the speaker's TCP, which retransmits, stalls, and aborts.

This experiment sweeps the hold duration and records, for each
actuator, whether the session survived and whether the command still
executed after release.  The strawman arm ("ack-and-discard") accepts
records and throws them away instead of queueing them: whatever the
delay, the data is gone and the TLS sequence gap kills the session —
holding, not dropping, is what makes deferred decisions free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.reporting import render_table
from repro.audio.speech import full_utterance_duration
from repro.experiments.parallel import ExperimentEngine, ExperimentTask
from repro.experiments.scenarios import build_scenario
from repro.net.proxy import ForwarderDecision


@dataclass
class HoldTrial:
    actuator: str
    hold_seconds: float
    session_survived: bool
    executed_after_release: bool


@dataclass
class HoldEnduranceResult:
    trials: List[HoldTrial] = field(default_factory=list)

    def max_survivable_hold(self, actuator: str) -> float:
        survived = [t.hold_seconds for t in self.trials
                    if t.actuator == actuator and t.session_survived
                    and t.executed_after_release]
        return max(survived) if survived else 0.0

    def render(self) -> str:
        """Render as paper-style text."""
        rows = []
        for trial in self.trials:
            rows.append([
                trial.actuator,
                f"{trial.hold_seconds:.0f}s",
                "yes" if trial.session_survived else "NO",
                "yes" if trial.executed_after_release else "NO",
            ])
        table = render_table(
            "Hold endurance: park a command's records for N seconds, then release",
            ["actuator", "hold", "session survived", "command executed after release"],
            rows,
        )
        return table + (
            f"\nmax survivable hold — proxy: "
            f"{self.max_survivable_hold('transparent proxy'):.0f}s, "
            f"ack-and-discard: {self.max_survivable_hold('ack-and-discard'):.0f}s"
        )


def _run_trial(hold_seconds: float, use_proxy_hold: bool, seed: int) -> HoldTrial:
    scenario = build_scenario(
        "house", "echo", deployment=0, seed=seed,
        owner_count=1, with_floor_tracking=False, calibrate=False, with_guard=True,
    )
    env = scenario.env
    guard = scenario.guard
    owner = scenario.owners[0]
    owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))

    # Replace the guard's policy with a manual one: hold (or drop)
    # everything on the AVS flow for ``hold_seconds``, then release.
    state = guard.recognition.speaker_state(scenario.speaker.ip)
    holding = {"active": True}
    touched_flows = []

    def policy(flow, packet):
        if state.avs_ip is None or flow.server.ip != state.avs_ip:
            return ForwarderDecision.FORWARD
        if holding["active"]:
            if flow not in touched_flows:
                touched_flows.append(flow)
            if use_proxy_hold:
                return ForwarderDecision.HOLD
            return ForwarderDecision.DROP
        return ForwarderDecision.FORWARD

    guard.proxy.record_policy = policy

    rng = env.rng.stream("hold-endurance")
    command = scenario.corpus.sample(rng)
    duration = full_utterance_duration(command, rng)
    env.play_utterance(owner.speak(command.text, duration), owner.device_position())
    env.sim.run_for(hold_seconds)
    holding["active"] = False
    for flow in touched_flows:
        guard.proxy.release_held(flow)
    env.sim.run_for(duration + 25.0)

    record = list(scenario.speaker.interactions.values())[-1]
    record.settle()
    survived = (
        scenario.speaker.connected
        and not scenario.avs_cloud.stats.tls_violations
        and scenario.speaker.reconnect_count == 0
    )
    return HoldTrial(
        actuator="transparent proxy" if use_proxy_hold else "ack-and-discard",
        hold_seconds=hold_seconds,
        session_survived=survived,
        executed_after_release=record.executed_at is not None,
    )


def run_hold_endurance(
    holds: tuple = (2.0, 10.0, 30.0, 60.0),
    seed: int = 29,
    workers: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    progress=None,
) -> HoldEnduranceResult:
    """Sweep hold durations for the proxy and a silent-drop actuator.

    Each (actuator, hold) trial is an independent scenario; ``workers``
    fans the sweep out over a process pool.
    """
    tasks = []
    for use_proxy_hold, arm_seed in ((True, seed), (False, seed + 1)):
        for hold_seconds in holds:
            actuator = "proxy" if use_proxy_hold else "discard"
            tasks.append(ExperimentTask(
                fn=_run_trial,
                args=(hold_seconds,),
                kwargs=dict(use_proxy_hold=use_proxy_hold, seed=arm_seed),
                label=f"hold/{actuator}/{hold_seconds:g}s",
            ))
    engine = ExperimentEngine(workers=workers, use_cache=use_cache,
                              cache_dir=cache_dir, progress=progress)
    return HoldEnduranceResult(trials=engine.run(tasks))
