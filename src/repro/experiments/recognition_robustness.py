"""Recognizer robustness under traffic morphing (``repro recognition-robustness``).

The paper's traffic recognizer is a *signature* matcher: it keys on
exact record lengths at exact positions.  A network-level adversary who
pads or reshuffles the flow shape (see :mod:`repro.attacks.morphing`)
never touches a payload byte yet erases exactly those keys.  This
experiment measures that arms race as a matcher × adversary × speaker
accuracy grid:

* every registered recognizer (``signature`` plus the trainable ``knn``
  and ``mlp`` from :mod:`repro.core.recognizers`) against every morphing
  adversary, both speakers;
* *adaptive* rows: the trainable recognizers retrained on traces morphed
  by the same adversary they are evaluated under — the defender's
  answer, and the experiment's headline (the signature matcher loses
  tens of points under padding, the retrained learner recovers to
  within a few points of its clean baseline).

Scoring is binary per evaluation window: did the recognizer call the
window a command or not?  ``UNKNOWN`` therefore counts as correct on
non-command windows (the guard holds nothing) and as a miss on command
windows (an attack sails through unheld).  Google Home cells evaluate
*command windows only* (recall): the paper's Google matcher flags every
burst as a command, so on a mixed set its "accuracy" would only measure
the synthetic noise ratio — and trivially, that matcher is morph-proof
at 100% recall, which the table shows.

Cells are pure functions of their arguments fanned out over the
parallel :class:`~repro.experiments.parallel.ExperimentEngine`; the
rendered table is byte-identical at any ``--workers`` count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import fmt_percent, render_table
from repro.core.recognition import TrafficClass
from repro.core.recognizers import (
    morph_sample,
    synth_windows,
    train_window_recognizer,
)
from repro.errors import WorkloadError
from repro.experiments.parallel import ExperimentEngine, ExperimentTask, derive_seed
from repro.sim.random import RngHub

SPEAKERS = ("echo", "google")
RECOGNIZER_KINDS = ("signature", "knn", "mlp")
#: "none" is the clean baseline column; the rest are morphing adversaries.
ADVERSARIES = ("none", "pad-fixed", "pad-random", "jitter", "dummy-burst")
#: Recognizers that can retrain on morphed traces (adaptive rows).
ADAPTIVE_KINDS = ("knn", "mlp")

TRAIN_WINDOWS = 30  # training windows per class (full grid)
EVAL_WINDOWS = 40  # evaluation windows per class (full grid)


@dataclass
class RecognitionCell:
    """One (speaker, recognizer, adversary) accuracy measurement."""

    speaker: str
    recognizer: str  # registry kind; adaptive rows get a "+retrain" label
    adversary: str
    adaptive: bool
    windows: int
    correct: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.windows if self.windows else 0.0

    @property
    def label(self) -> str:
        return f"{self.recognizer}+retrain" if self.adaptive else self.recognizer

    def row(self) -> List[object]:
        return [
            self.speaker,
            self.label,
            self.adversary,
            self.windows,
            self.correct,
            fmt_percent(self.accuracy),
        ]


def run_recognition_cell(
    speaker_kind: str,
    recognizer_kind: str,
    adversary: str = "none",
    adaptive: bool = False,
    seed: int = 0,
    train_windows: int = TRAIN_WINDOWS,
    eval_windows: int = EVAL_WINDOWS,
) -> RecognitionCell:
    """Train one recognizer and score it on morphed evaluation windows.

    Seeds are derived so that *within one grid seed* every cell of a
    speaker shares the same training corpus and the same pre-morph
    evaluation windows — columns differ only by the adversary's
    reshaping, rows only by the recognizer.
    """
    if adaptive and adversary == "none":
        raise WorkloadError("adaptive cells need a morphing adversary")
    from repro.attacks.morphing import create_morpher

    # Training: its own hub, keyed by speaker only, so every recognizer
    # kind (and every adversary column) trains from identical draws.
    hub = RngHub(derive_seed(seed, "recognition.train", speaker_kind))
    train_morpher = create_morpher(adversary) if adaptive else None
    recognizer = train_window_recognizer(
        recognizer_kind, speaker_kind, hub,
        train_per_class=train_windows, morpher=train_morpher,
    )

    # Evaluation: one pre-morph window set per speaker, morphed by the
    # column's adversary with an adversary-owned generator.
    eval_rng = np.random.default_rng(
        derive_seed(seed, "recognition.eval", speaker_kind))
    samples = synth_windows(speaker_kind, eval_rng, eval_windows)
    if speaker_kind == "google":
        # Recall-only (see module docstring).
        samples = [s for s in samples if s.is_command]
    if adversary != "none":
        morph_rng = np.random.default_rng(
            derive_seed(seed, "recognition.morph", speaker_kind, adversary))
        morpher = create_morpher(adversary)
        samples = [morph_sample(s, morpher, morph_rng) for s in samples]

    correct = 0
    for sample in samples:
        decided = recognizer.predict_window(sample.lengths, sample.offsets)
        if (decided is TrafficClass.COMMAND) == sample.is_command:
            correct += 1
    return RecognitionCell(
        speaker=speaker_kind,
        recognizer=recognizer_kind,
        adversary=adversary,
        adaptive=adaptive,
        windows=len(samples),
        correct=correct,
    )


@dataclass
class RecognitionRobustnessResult:
    """The full grid, in submission order."""

    cells: List[RecognitionCell]
    seed: int

    def cell(self, speaker: str, recognizer: str, adversary: str,
             adaptive: bool = False) -> RecognitionCell:
        """Look one cell up (tests and the headline use this)."""
        for cell in self.cells:
            if (cell.speaker == speaker and cell.recognizer == recognizer
                    and cell.adversary == adversary
                    and cell.adaptive == adaptive):
                return cell
        raise WorkloadError(
            f"no cell ({speaker}, {recognizer}, {adversary}, "
            f"adaptive={adaptive}) in this grid")

    def worst_morph(self, speaker: str,
                    recognizer: str) -> Tuple[str, float]:
        """The adversary that hurts ``recognizer`` most, and its accuracy."""
        morphs = [c for c in self.cells
                  if c.speaker == speaker and c.recognizer == recognizer
                  and not c.adaptive and c.adversary != "none"]
        if not morphs:
            raise WorkloadError(f"no morphed cells for {recognizer!r}")
        worst = min(morphs, key=lambda c: (c.accuracy, c.adversary))
        return worst.adversary, worst.accuracy

    def render(self) -> str:
        table = render_table(
            "Recognition robustness: matcher x traffic-morphing adversary",
            ["speaker", "recognizer", "adversary", "windows", "correct",
             "accuracy"],
            [cell.row() for cell in self.cells],
        )
        lines = [table, f"seed {self.seed}; {len(self.cells)} cells"]
        try:
            clean = self.cell("echo", "signature", "none")
            adversary, morphed = self.worst_morph("echo", "signature")
            lines.append(
                f"signature matcher on echo: {fmt_percent(clean.accuracy)} "
                f"clean -> {fmt_percent(morphed)} under {adversary} "
                f"({(clean.accuracy - morphed) * 100:.0f} points lost)"
            )
            for kind in ADAPTIVE_KINDS:
                try:
                    base = self.cell("echo", kind, "none")
                    retrained = self.cell("echo", kind, adversary,
                                          adaptive=True)
                except WorkloadError:
                    continue
                lines.append(
                    f"{kind}+retrain on echo under {adversary}: "
                    f"{fmt_percent(retrained.accuracy)} vs "
                    f"{fmt_percent(base.accuracy)} clean baseline "
                    f"({abs(base.accuracy - retrained.accuracy) * 100:.0f} "
                    "points apart)"
                )
        except WorkloadError:
            pass  # smoke grids may omit the headline cells
        lines.append(
            "scoring: binary command-vs-not per window (UNKNOWN holds "
            "nothing, so it is correct on non-commands); google cells "
            "score command recall only — the paper's google matcher "
            "flags every burst, making it trivially morph-proof."
        )
        return "\n".join(lines)


def run_recognition_robustness(
    seed: int = 0,
    smoke: bool = False,
    speakers: Sequence[str] = SPEAKERS,
    recognizers: Sequence[str] = RECOGNIZER_KINDS,
    adversaries: Sequence[str] = ADVERSARIES,
    adaptive_kinds: Sequence[str] = ADAPTIVE_KINDS,
    train_windows: Optional[int] = None,
    eval_windows: Optional[int] = None,
    workers: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    progress=None,
) -> RecognitionRobustnessResult:
    """Run the grid through the parallel engine.

    The full grid is every recognizer × every adversary × both speakers
    plus the adaptive (retrain-on-morph) rows — 46 cells.  ``smoke``
    shrinks it to the echo corners CI exercises (5 cells).
    """
    if smoke:
        speakers = ("echo",)
        recognizers = ("signature", "knn")
        adversaries = ("none", "pad-fixed")
        adaptive_kinds = ("knn",)
        train_windows = 12 if train_windows is None else train_windows
        eval_windows = 16 if eval_windows is None else eval_windows
    per_class_train = TRAIN_WINDOWS if train_windows is None else train_windows
    per_class_eval = EVAL_WINDOWS if eval_windows is None else eval_windows

    tasks = []

    def add(speaker: str, kind: str, adversary: str, adaptive: bool) -> None:
        suffix = "+retrain" if adaptive else ""
        tasks.append(ExperimentTask(
            fn=run_recognition_cell,
            args=(speaker, kind, adversary, adaptive),
            kwargs=dict(
                seed=seed,
                train_windows=per_class_train,
                eval_windows=per_class_eval,
            ),
            label=f"recognition/{speaker}/{kind}{suffix}/{adversary}",
        ))

    for speaker in speakers:
        for adversary in adversaries:
            for kind in recognizers:
                add(speaker, kind, adversary, adaptive=False)
    morphs = [a for a in adversaries if a != "none"]
    for speaker in speakers:
        for adversary in morphs:
            for kind in adaptive_kinds:
                add(speaker, kind, adversary, adaptive=True)

    engine = ExperimentEngine(workers=workers, use_cache=use_cache,
                              cache_dir=cache_dir, progress=progress)
    cells = engine.run(tasks)
    return RecognitionRobustnessResult(cells=list(cells), seed=seed)
