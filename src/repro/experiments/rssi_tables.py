"""Tables II-IV: the RSSI-based method in the three testbeds.

Each table is one testbed; each of its four cells is a (speaker,
deployment location) pair driven through a 7-day workload of owner
commands and replayed attacks (see :mod:`repro.experiments.workload`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import fmt_percent, render_table
from repro.core.config import VoiceGuardConfig
from repro.experiments.parallel import (
    ExperimentEngine,
    ExperimentTask,
    collect_metric_snapshots,
)
from repro.experiments.runner import RssiExperimentResult, run_rssi_experiment
from repro.obs.metrics import merge_snapshots

# Paper-reported cell values for reference printing: per testbed, per
# (speaker, location): (legit correct/total, malicious correct/total).
PAPER_TABLES: Dict[str, Dict[Tuple[str, int], Tuple[str, str]]] = {
    "house": {
        ("echo", 0): ("89 / 91", "69 / 69"),
        ("echo", 1): ("100 / 103", "78 / 78"),
        ("google", 0): ("90 / 94", "65 / 65"),
        ("google", 1): ("82 / 86", "63 / 63"),
    },
    "apartment": {
        ("echo", 0): ("75 / 78", "59 / 59"),
        ("echo", 1): ("86 / 88", "64 / 65"),
        ("google", 0): ("76 / 80", "57 / 57"),
        ("google", 1): ("93 / 95", "50 / 50"),
    },
    "office": {
        ("echo", 0): ("82 / 85", "47 / 47"),
        ("echo", 1): ("91 / 94", "52 / 52"),
        ("google", 0): ("89 / 90", "50 / 50"),
        ("google", 1): ("89 / 91", "51 / 51"),
    },
}

# Command counts per cell, matching the paper's totals.
PAPER_COUNTS: Dict[str, Dict[Tuple[str, int], Tuple[int, int]]] = {
    "house": {
        ("echo", 0): (91, 69), ("echo", 1): (103, 78),
        ("google", 0): (94, 65), ("google", 1): (86, 63),
    },
    "apartment": {
        ("echo", 0): (78, 59), ("echo", 1): (88, 65),
        ("google", 0): (80, 57), ("google", 1): (95, 50),
    },
    "office": {
        ("echo", 0): (85, 47), ("echo", 1): (94, 52),
        ("google", 0): (90, 50), ("google", 1): (91, 51),
    },
}

TABLE_TITLES = {
    "house": "Table II: RSSI method in the first testbed (two-floor house)",
    "apartment": "Table III: RSSI method in the second testbed (two-bedroom apartment)",
    "office": "Table IV: RSSI method in the third testbed (office)",
}


@dataclass
class RssiTableResult:
    """All four cells of one paper table."""

    testbed: str
    cells: List[RssiExperimentResult]

    def metrics_snapshot(self) -> Optional[dict]:
        """Table-level metrics: every cell's snapshot folded into one."""
        snapshots = collect_metric_snapshots(self.cells)
        if not snapshots:
            return None
        return merge_snapshots(snapshots)

    def render(self) -> str:
        """Render as paper-style text."""
        rows = []
        for cell in self.cells:
            row = cell.row()
            rows.append([
                row["case"],
                row["legitimate (N)"],
                row["malicious (P)"],
                row["accuracy"],
                row["precision"],
                row["recall"],
            ])
        return render_table(
            TABLE_TITLES[self.testbed],
            ["case", "legitimate (N)", "malicious (P)", "accuracy", "precision", "recall"],
            rows,
        )

    def render_with_paper(self) -> str:
        """Side-by-side with the paper's reported cells."""
        rows = []
        for cell in self.cells:
            key = self._cell_key(cell)
            paper_legit, paper_mal = PAPER_TABLES[self.testbed].get(key, ("?", "?"))
            rows.append([
                cell.scenario_name,
                f"{cell.legit_correct} / {cell.legit_total}",
                paper_legit,
                f"{cell.malicious_correct} / {cell.malicious_total}",
                paper_mal,
                fmt_percent(cell.matrix.accuracy),
            ])
        return render_table(
            TABLE_TITLES[self.testbed] + "  (measured vs paper)",
            ["case", "legit (measured)", "legit (paper)",
             "malicious (measured)", "malicious (paper)", "accuracy"],
            rows,
        )

    @staticmethod
    def _cell_key(cell: RssiExperimentResult) -> Tuple[str, int]:
        _, speaker, loc = cell.scenario_name.split("/")
        return (speaker, int(loc[-1]) - 1)


def run_rssi_table(
    testbed: str,
    seed: int = 0,
    config: Optional[VoiceGuardConfig] = None,
    scale: float = 1.0,
    workers: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    progress=None,
) -> RssiTableResult:
    """Run all four cells of one table.

    ``scale`` shrinks the command counts proportionally for quick runs
    (tests use ~0.3; benchmarks use 1.0 = the paper's counts).  The
    cells are independent runs; ``workers`` fans them out over a
    process pool with identical results (each cell's seed is fixed by
    its arguments, not by execution order).
    """
    tasks = []
    for speaker in ("echo", "google"):
        for deployment in (0, 1):
            legit, malicious = PAPER_COUNTS[testbed][(speaker, deployment)]
            tasks.append(ExperimentTask(
                fn=run_rssi_experiment,
                args=(testbed, speaker, deployment),
                kwargs=dict(
                    seed=seed + deployment + (10 if speaker == "google" else 0),
                    legit_count=max(5, int(round(legit * scale))),
                    malicious_count=max(5, int(round(malicious * scale))),
                    config=config,
                ),
                label=f"rssi/{testbed}/{speaker}/loc{deployment + 1}",
            ))
    engine = ExperimentEngine(workers=workers, use_cache=use_cache,
                              cache_dir=cache_dir, progress=progress)
    cells = engine.run(tasks)
    return RssiTableResult(testbed=testbed, cells=cells)
