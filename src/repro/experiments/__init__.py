"""Experiment scenarios, workloads, and per-table/figure runners.

Each paper table and figure has a dedicated module here; the matching
``benchmarks/bench_*.py`` file calls into it and prints the regenerated
rows.  See DESIGN.md's per-experiment index.
"""

from repro.experiments.runner import (
    RssiExperimentResult,
    run_rssi_experiment,
    score_interactions,
)
from repro.experiments.scenarios import (
    Scenario,
    build_scenario,
    collect_route_features,
    train_trace_classifier,
)
from repro.experiments.workload import SevenDayWorkload

__all__ = [
    "RssiExperimentResult",
    "Scenario",
    "SevenDayWorkload",
    "build_scenario",
    "collect_route_features",
    "run_rssi_experiment",
    "score_interactions",
    "train_trace_classifier",
]
