"""Microbenchmarks for the RSSI kernel, wall geometry, and event queue.

``run_bench_rssi`` times the radio hot path at every layer — the pre-PR
scalar reference (re-implemented here, verbatim, so the "before" cost
stays measurable after the optimization), the memoized scalar path, the
vectorized batch APIs, the wall-crossing kernels, and event-queue
dispatch — and emits a machine-readable ``BENCH_rssi.json`` so later
PRs have a perf trajectory to regress against.

Run it with ``python -m repro bench-rssi`` (or
``benchmarks/run_benches.sh``); the committed artifact lives at
``benchmarks/results/BENCH_rssi.json``.

Every before/after pair is also *checked for equality* while being
timed: a speedup that changed the numbers would be a bug, not a win.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.radio.geometry import Point, distance
from repro.radio.propagation import PropagationModel
from repro.radio.testbeds import testbed_by_name
from repro.sim.events import EventQueue

GRID_SAMPLES = 16  # the paper's 4 orientations x 4 measurements


# -- the pre-optimization reference, kept runnable ------------------------
def reference_mean_rssi(model: PropagationModel, tx: Point, rx: Point) -> float:
    """The seed repo's ``mean_rssi``: no memo, per-call SHA-256, per-wall
    python loop.  This is the "before" every speedup is measured against."""
    p = model.params
    d = max(distance(tx, rx), p.reference_distance)
    path_loss = p.path_loss_per_decade * np.log10(d / p.reference_distance)
    walls = model.plan.walls_crossed_scalar(tx, rx)
    slab_loss = model.plan.slab_penalties(tx, rx, p.floor_penalty)
    key = (
        f"{model._seed}|{round(tx.x * 4)},{round(tx.y * 4)},{round(tx.z * 4)}"
        f"|{round(rx.x * 4)},{round(rx.y * 4)},{round(rx.z * 4)}"
    )
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "little") / float(2**64)
    unit2 = int.from_bytes(digest[8:16], "little") / float(2**64)
    shadow = (unit + unit2 - 1.0) * p.shadowing_sigma * 2.0
    rssi = p.reference_rssi - path_loss - p.wall_penalty * walls - slab_loss + shadow
    return float(max(rssi, p.rssi_floor))


def reference_average_rssi(
    model: PropagationModel,
    tx: Point,
    rx: Point,
    rng: np.random.Generator,
    samples: int = GRID_SAMPLES,
    body_blocked_fraction: float = 0.25,
) -> float:
    """The seed repo's ``average_rssi``: full mean recompute per sample."""
    p = model.params
    readings = []
    for index in range(samples):
        blocked = (index / samples) < body_blocked_fraction
        rssi = reference_mean_rssi(model, tx, rx)
        rssi += float(rng.normal(0.0, p.sample_noise_sigma))
        if blocked:
            rssi -= float(abs(rng.normal(p.body_occlusion, p.body_occlusion / 2)))
        readings.append(float(max(rssi, p.rssi_floor)))
    return float(np.mean(readings))


# -- timing ----------------------------------------------------------------
def _time_ops(fn: Callable[[], int], min_seconds: float = 0.2) -> Dict[str, float]:
    """Run ``fn`` (returns ops performed) until ``min_seconds`` elapse."""
    fn()  # warm-up: caches, numpy import paths, allocator
    ops = 0
    start = time.perf_counter()
    while True:
        ops += fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            break
    ops_per_sec = ops / elapsed
    return {
        "ops_per_sec": round(ops_per_sec, 1),
        "usec_per_op": round(1e6 / ops_per_sec, 3),
    }


def run_bench_rssi(
    testbed_name: str = "house",
    seed: int = 7,
    min_seconds: float = 0.2,
) -> Dict:
    """Time every layer of the RSSI substrate; returns the JSON payload."""
    testbed = testbed_by_name(testbed_name)
    plan = testbed.plan
    model = PropagationModel(plan, seed=seed)
    tx = testbed.speaker_point(0)
    grid: List[Point] = [mp.point for _, mp in sorted(plan.points.items())]
    far = grid[len(grid) // 2]

    benches: Dict[str, Dict[str, float]] = {}

    # mean_rssi: reference vs memoized vs vectorized-many.
    benches["mean_rssi_reference"] = _time_ops(
        lambda: sum(1 for rx in grid if reference_mean_rssi(model, tx, rx) > -999),
        min_seconds,
    )
    model.mean_rssi(tx, far)  # ensure a warm entry
    benches["mean_rssi_cached"] = _time_ops(
        lambda: sum(1 for _ in range(1000) if model.mean_rssi(tx, far) > -999),
        min_seconds,
    )

    def _many_pass() -> int:
        model._mean_cache.clear()  # time the compute, not the memo hit
        model.mean_rssi_many(tx, grid)
        return len(grid)

    benches["mean_rssi_many"] = _time_ops(_many_pass, min_seconds)

    # Noisy sampling: scalar loop vs one batched draw (warm mean).
    rng = np.random.default_rng(seed)
    blocked = [(i / GRID_SAMPLES) < 0.25 for i in range(GRID_SAMPLES)]

    def _scalar_samples() -> int:
        for flag in blocked:
            model.sample_rssi(tx, far, rng, body_blocked=flag)
        return GRID_SAMPLES

    benches["sample_rssi_scalar"] = _time_ops(_scalar_samples, min_seconds)
    benches["sample_rssi_batch"] = _time_ops(
        lambda: len(model.sample_rssi_batch(tx, far, rng, blocked)),
        min_seconds,
    )

    # The grid-map kernel (Figures 8/9): whole numbered grid, 16-sample
    # averages.  Before = the seed implementation; after = the batched
    # pipeline exactly as run_rssi_map drives it.  Same seeds, and the
    # outputs are asserted equal before either is timed.
    check_rng = np.random.default_rng(seed + 1)
    check_ref = [reference_average_rssi(model, tx, rx, check_rng) for rx in grid]
    model._mean_cache.clear()
    check_new = model.average_rssi_grid(
        tx, grid, np.random.default_rng(seed + 1), samples=GRID_SAMPLES
    )
    if check_ref != [float(v) for v in check_new]:
        raise AssertionError("batched grid kernel diverged from the scalar reference")

    def _grid_reference() -> int:
        grid_rng = np.random.default_rng(seed + 1)
        for rx in grid:
            reference_average_rssi(model, tx, rx, grid_rng)
        return len(grid)

    def _grid_batched() -> int:
        model._mean_cache.clear()
        grid_rng = np.random.default_rng(seed + 1)
        model.average_rssi_grid(tx, grid, grid_rng, samples=GRID_SAMPLES)
        return len(grid)

    benches["grid_map_reference"] = _time_ops(_grid_reference, min_seconds)
    benches["grid_map_batched"] = _time_ops(_grid_batched, min_seconds)

    # Wall-crossing kernels (one distant pair; per-pair ops).
    benches["walls_crossed_scalar"] = _time_ops(
        lambda: sum(1 for rx in grid if plan.walls_crossed_scalar(tx, rx) >= 0),
        min_seconds,
    )
    benches["walls_crossed_many"] = _time_ops(
        lambda: len(plan.walls_crossed_many(tx, grid)),
        min_seconds,
    )

    # Event queue: dispatch throughput and the O(1) pending count.
    def _dispatch() -> int:
        queue = EventQueue()

        def sink() -> None:
            return None

        for i in range(2000):
            queue.push(float(i % 97), sink)
        while queue.pop() is not None:
            pass
        return 4000  # 2000 pushes + 2000 pops

    benches["event_push_pop"] = _time_ops(_dispatch, min_seconds)

    big = EventQueue()
    for i in range(10_000):
        big.push(float(i), lambda: None)
    benches["pending_events_read_10k"] = _time_ops(
        lambda: sum(1 for _ in range(10_000) if len(big) >= 0),
        min_seconds,
    )

    speedups = {
        "grid_map": round(
            benches["grid_map_batched"]["ops_per_sec"]
            / benches["grid_map_reference"]["ops_per_sec"],
            2,
        ),
        "mean_rssi_cached_vs_reference": round(
            benches["mean_rssi_cached"]["ops_per_sec"]
            / benches["mean_rssi_reference"]["ops_per_sec"],
            2,
        ),
        "mean_rssi_many_vs_reference": round(
            benches["mean_rssi_many"]["ops_per_sec"]
            / benches["mean_rssi_reference"]["ops_per_sec"],
            2,
        ),
        "sample_batch_vs_scalar": round(
            benches["sample_rssi_batch"]["ops_per_sec"]
            / benches["sample_rssi_scalar"]["ops_per_sec"],
            2,
        ),
        "walls_many_vs_scalar": round(
            benches["walls_crossed_many"]["ops_per_sec"]
            / benches["walls_crossed_scalar"]["ops_per_sec"],
            2,
        ),
    }
    return {
        "meta": {
            "testbed": testbed_name,
            "grid_points": len(grid),
            "samples_per_location": GRID_SAMPLES,
            "walls": len(plan.walls),
            "seed": seed,
            "min_seconds_per_bench": min_seconds,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "benches": benches,
        "speedups": speedups,
        "units": {
            "grid_map_*": "locations (16-sample averages) per second",
            "mean_rssi_* / sample_* / walls_*": "single evaluations per second",
            "event_push_pop": "queue operations per second",
            "pending_events_read_10k": "len() reads per second on a 10k heap",
        },
    }


def render_bench(payload: Dict) -> str:
    """Human-readable one-screen summary of a bench payload."""
    lines = [
        f"RSSI kernel bench — testbed {payload['meta']['testbed']}, "
        f"{payload['meta']['grid_points']} grid points, "
        f"{payload['meta']['walls']} walls",
        "",
        f"{'bench':32} {'ops/sec':>14} {'usec/op':>10}",
    ]
    for name, stats in payload["benches"].items():
        lines.append(
            f"{name:32} {stats['ops_per_sec']:>14,.0f} {stats['usec_per_op']:>10.2f}"
        )
    lines.append("")
    for name, ratio in payload["speedups"].items():
        lines.append(f"speedup {name:38} {ratio:>7.2f}x")
    return "\n".join(lines)


def write_bench(path: str, payload: Optional[Dict] = None, **kwargs) -> Dict:
    """Run (if needed) and persist the bench payload as JSON."""
    if payload is None:
        payload = run_bench_rssi(**kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return payload
