"""Figure 6 + the command-corpus analysis of Section V-A2.

Two user-visible delay cases: (a) the RSSI query finishes while the
user is still speaking -> no perceived delay; (b) the command is short
and ends first -> the user perceives only the residual.  The paper
combines its corpus statistics (Alexa mean 5.95 words, Google 7.39)
with the 2 words/second pace to argue >= 80 % of queries hide inside
the speech time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.analysis.reporting import render_table
from repro.audio.commands import alexa_corpus, corpus_statistics, google_corpus
from repro.audio.speech import full_utterance_duration
from repro.core.decision import Verdict
from repro.experiments.scenarios import build_scenario

PAPER_HIDDEN_FRACTION = 0.80


@dataclass
class Fig6Result:
    speaker_kind: str
    case_a: int = 0  # query finished while the user was speaking
    case_b: int = 0  # user finished first and perceived a residual
    residuals: List[float] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.case_a + self.case_b

    @property
    def hidden_fraction(self) -> float:
        return self.case_a / self.total if self.total else float("nan")

    @property
    def mean_residual(self) -> float:
        return float(np.mean(self.residuals)) if self.residuals else 0.0

    def render(self) -> str:
        """Render as paper-style text."""
        return (
            f"Figure 6 ({self.speaker_kind}): of {self.total} commands, "
            f"{self.case_a} finished verification during speech (case a, "
            f"{self.hidden_fraction:.0%}; paper claims >= {PAPER_HIDDEN_FRACTION:.0%}); "
            f"{self.case_b} perceived a residual delay averaging "
            f"{self.mean_residual:.2f}s (case b)"
        )


def run_fig6(speaker_kind: str = "echo", invocations: int = 120, seed: int = 6) -> Fig6Result:
    """Measure the two delay cases over a command workload."""
    scenario = build_scenario(
        "house", speaker_kind, deployment=0, seed=seed,
        owner_count=1, with_floor_tracking=False,
    )
    env = scenario.env
    owner = scenario.owners[0]
    owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))
    rng = env.rng.stream("fig6.workload")

    timeline = []  # (speech_end, window holder)
    for _ in range(invocations):
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        utterance = owner.speak(command.text, duration)
        start = env.sim.now
        env.play_utterance(utterance, owner.device_position())
        timeline.append((start, start + duration))
        env.sim.run_for(duration + 14.0 + float(rng.uniform(0.0, 3.0)))
    env.sim.run_for(15.0)

    result = Fig6Result(speaker_kind=speaker_kind)
    events = [
        e for e in scenario.guard.log.commands()
        if e.verdict in (Verdict.LEGITIMATE, Verdict.MALICIOUS) and e.verdict_at
    ]
    for event in events:
        speech_end = None
        for start, end in timeline:
            if start - 1.0 <= event.opened_at <= end + 1.5:
                speech_end = end
                break
        if speech_end is None:
            continue
        residual = event.verdict_at - speech_end
        if residual <= 0:
            result.case_a += 1
        else:
            result.case_b += 1
            result.residuals.append(residual)
    return result


def corpus_report() -> str:
    """Section V-A2's crawler statistics, regenerated."""
    rows = []
    for corpus, at_least in ((alexa_corpus(), 4), (google_corpus(), 5)):
        stats = corpus_statistics(corpus)
        rows.append([
            corpus.assistant,
            int(stats["size"]),
            f"{stats['mean_words']:.2f}",
            f">={at_least} words: "
            f"{corpus.fraction_with_at_least(at_least):.1%}",
        ])
    return render_table(
        "Command corpora (paper: Alexa 320/5.95 words/86.8%>=4; "
        "Google 443/7.39 words/93.9%>=5)",
        ["assistant", "commands", "mean words", "coverage"],
        rows,
    )
