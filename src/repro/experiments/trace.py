"""``repro trace``: one traced scenario, rendered from spans alone.

Runs a short, fixed workload — a couple of owner commands followed by a
replayed attack — with span tracing enabled, then renders the per-command
waterfall and the phase-timing table (the paper's Figure 4 timeline:
recognition -> hold -> decision -> release/discard) plus the guard's
metric snapshot.  Everything shown is reconstructed from the span
forest, not from guard internals, so the report doubles as a living
check of the instrumentation contract.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Optional

from repro.analysis.reporting import render_metrics_snapshot
from repro.audio.speech import full_utterance_duration
from repro.audio.voiceprint import replay_of
from repro.experiments.scenarios import Scenario, build_scenario
from repro.obs.export import (
    WINDOW_SPAN,
    phase_breakdown,
    render_phase_table,
    render_waterfall,
    write_spans_jsonl,
)
from repro.obs.tracer import SpanTracer
from repro.radio.geometry import distance

SETTLE_AFTER_COMMAND = 12.0  # sim-seconds for a verdict + cloud reply
SETTLE_AFTER_ATTACK = 20.0  # discard + TLS desync + reconnect


@dataclass
class TraceReport:
    """The traced run: its span forest and the rendered views."""

    scenario_name: str
    tracer: SpanTracer
    metrics: dict

    def render(self) -> str:
        """Waterfall + phase table + metrics, as one text report."""
        sections = [
            f"Traced scenario: {self.scenario_name}",
            render_waterfall(self.tracer, roots=[WINDOW_SPAN]),
            render_phase_table(phase_breakdown(self.tracer)),
            render_metrics_snapshot(self.metrics),
        ]
        return "\n\n".join(section for section in sections if section)

    def write_jsonl(self, path) -> pathlib.Path:
        """Dump the full span forest (every root, not just commands)."""
        return write_spans_jsonl(self.tracer, path)


def _speak(scenario: Scenario, rng, source=None) -> float:
    """Issue one owner command (or a replay of it from ``source``)."""
    env = scenario.env
    owner = scenario.owners[0]
    command = scenario.corpus.sample(rng)
    duration = full_utterance_duration(command, rng)
    utterance = owner.speak(command.text, duration)
    if source is None:
        env.play_utterance(utterance, owner.device_position())
    else:
        env.play_utterance(replay_of(utterance, rng), source)
    return duration


def run_trace(
    testbed_name: str = "house",
    speaker_kind: str = "echo",
    seed: int = 3,
    legit: int = 2,
    attacks: int = 1,
    deployment: int = 0,
) -> TraceReport:
    """Run the fixed trace workload with span collection enabled."""
    scenario = build_scenario(
        testbed_name,
        speaker_kind,
        deployment=deployment,
        seed=seed,
        owner_count=1,
        with_floor_tracking=False,
        tracing=True,
    )
    env = scenario.env
    owner = scenario.owners[0]
    rng = env.rng.stream("trace.workload")

    # Owner beside the speaker: these commands should release.
    speaker_room = env.testbed.speaker_room(deployment)
    owner.teleport(speaker_room.center(height=0.0))
    for _ in range(legit):
        duration = _speak(scenario, rng)
        env.sim.run_for(duration + SETTLE_AFTER_COMMAND)

    # Owner in the farthest room; the replay plays beside the speaker
    # and should be blocked (the paper's Figure 4 case III).
    if attacks:
        far_room = max(
            env.testbed.plan.rooms.values(),
            key=lambda room: distance(room.center(height=1.2),
                                      env.speaker_beacon.position),
        )
        owner.teleport(far_room.center(height=0.0))
        attack_source = speaker_room.center(height=1.0)
        for _ in range(attacks):
            duration = _speak(scenario, rng, source=attack_source)
            env.sim.run_for(duration + SETTLE_AFTER_ATTACK)

    return TraceReport(
        scenario_name=scenario.name,
        tracer=env.obs.tracer,
        metrics=env.obs.metrics.snapshot(),
    )
