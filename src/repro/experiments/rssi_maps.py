"""Figures 8 and 9: RSSI maps of the three testbeds.

The paper averages 16 Bluetooth RSSI measurements (4 per body
orientation) at every numbered location, for each speaker deployment,
and reads off the calibration threshold; the maps demonstrate that the
speaker's room (plus line-of-sight spots) sits above the threshold,
other rooms sit below it, and — in the house — the room directly above
the speaker leaks (locations #55, #56, #59-62), motivating floor
tracking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.reporting import render_table
from repro.core.threshold import ThresholdCalibrator
from repro.home.environment import HomeEnvironment
from repro.radio.testbeds import HOUSE_LEAK_POINT_NUMBERS, testbed_by_name

SAMPLES_PER_LOCATION = 16  # 4 orientations x 4 measurements


@dataclass
class LocationReading:
    number: int
    room: str
    rssi: float


@dataclass
class RssiMapResult:
    testbed: str
    deployment: int
    threshold: float
    readings: List[LocationReading] = field(default_factory=list)
    legitimate_points: List[int] = field(default_factory=list)
    leak_points: List[int] = field(default_factory=list)

    def reading(self, number: int) -> LocationReading:
        for item in self.readings:
            if item.number == number:
                return item
        raise KeyError(number)

    def rooms(self) -> Dict[str, List[LocationReading]]:
        grouped: Dict[str, List[LocationReading]] = {}
        for item in self.readings:
            grouped.setdefault(item.room, []).append(item)
        return grouped

    # -- the paper's qualitative claims, as checks -----------------------
    def in_room_fraction_above_threshold(self) -> float:
        legit = [r for r in self.readings if r.number in self.legitimate_points]
        if not legit:
            return float("nan")
        return sum(1 for r in legit if r.rssi >= self.threshold) / len(legit)

    def away_fraction_below_threshold(self) -> float:
        away = [
            r for r in self.readings
            if r.number not in self.legitimate_points
            and r.number not in self.leak_points
        ]
        if not away:
            return float("nan")
        return sum(1 for r in away if r.rssi < self.threshold) / len(away)

    def leak_points_above_threshold(self) -> List[int]:
        return [
            r.number for r in self.readings
            if r.number in self.leak_points and r.rssi >= self.threshold
        ]

    def render(self) -> str:
        """Render as paper-style text."""
        figure = "Figure 8" if self.deployment == 0 else "Figure 9"
        rows = []
        for room, readings in self.rooms().items():
            values = [r.rssi for r in readings]
            rows.append([
                room,
                len(readings),
                f"{min(values):.1f}",
                f"{max(values):.1f}",
                f"{sum(values) / len(values):.1f}",
            ])
        table = render_table(
            f"{figure} ({self.testbed}, deployment {self.deployment + 1}): "
            f"per-room RSSI, threshold {self.threshold:.1f}",
            ["room", "points", "min", "max", "mean"],
            rows,
        )
        leak = self.leak_points_above_threshold()
        notes = [
            f"\nlegitimate area above threshold: {self.in_room_fraction_above_threshold():.0%}",
            f"other rooms below threshold: {self.away_fraction_below_threshold():.0%}",
        ]
        if self.leak_points:
            notes.append(f"above-speaker leak points over threshold: {leak}")
        return table + "  |  ".join([""] + notes)


def run_rssi_map(testbed_name: str, deployment: int, seed: int = 8) -> RssiMapResult:
    """Measure the full numbered grid for one deployment."""
    testbed = testbed_by_name(testbed_name)
    env = HomeEnvironment(testbed, deployment=deployment, seed=seed)
    speaker_room = testbed.speaker_room(deployment)
    person = env.add_person("surveyor", speaker_room.center(height=0.0))
    device = (
        env.add_smartwatch("survey-watch", person)
        if testbed_name == "office"
        else env.add_smartphone("survey-phone", person)
    )
    calibration = ThresholdCalibrator(env).calibrate(device, speaker_room)

    rng = env.rng.stream("rssi-map")
    grid = sorted(testbed.plan.points.items())
    # One vectorized pass over the whole numbered grid: deterministic
    # means (distances, wall counts, shadowing) batch through
    # mean_rssi_many, and all locations' noise samples come from a
    # single draw that consumes the rng stream exactly as the scalar
    # per-location loop would.
    averaged = env.model.average_rssi_grid(
        env.speaker_beacon.position,
        [mp.point for _, mp in grid],
        rng,
        samples=SAMPLES_PER_LOCATION,
    )
    readings = [
        LocationReading(number=number, room=mp.room_name, rssi=float(rssi))
        for (number, mp), rssi in zip(grid, averaged)
    ]

    leak = list(HOUSE_LEAK_POINT_NUMBERS) if (
        testbed_name == "house" and deployment == 0
    ) else []
    return RssiMapResult(
        testbed=testbed_name,
        deployment=deployment,
        threshold=calibration.threshold,
        readings=readings,
        legitimate_points=testbed.legitimate_points(deployment),
        leak_points=leak,
    )
