"""Parameter sensitivity sweeps.

The guard's accuracy depends on a few tunables the paper fixes by
construction: the RSSI margin applied under the calibrated threshold,
the decision timeout, and the recognizer's idle gap.  These sweeps
chart the trade-offs so a deployer knows which way each knob bends
precision vs recall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.analysis.reporting import render_table
from repro.core.config import VoiceGuardConfig
from repro.experiments.parallel import ExperimentEngine, ExperimentTask
from repro.experiments.runner import RssiExperimentResult, run_rssi_experiment


@dataclass
class SweepPoint:
    parameter: str
    value: float
    accuracy: float
    precision: float
    recall: float


@dataclass
class SensitivityResult:
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, parameter: str) -> List[SweepPoint]:
        return [p for p in self.points if p.parameter == parameter]

    def render(self) -> str:
        """Render as paper-style text."""
        rows = [
            [p.parameter, f"{p.value:g}", f"{p.accuracy:.1%}",
             f"{p.precision:.1%}", f"{p.recall:.1%}"]
            for p in self.points
        ]
        return render_table(
            "Sensitivity: guard accuracy vs tunables (apartment / Echo; margin "
            "sweep at the marginal 2nd deployment)",
            ["parameter", "value", "accuracy", "precision", "recall"],
            rows,
        )


def _cell(config: VoiceGuardConfig, seed: int, scale: int,
          deployment: int = 0) -> RssiExperimentResult:
    return run_rssi_experiment(
        "apartment", "echo", deployment, seed=seed,
        legit_count=scale, malicious_count=max(5, int(scale * 0.7)),
        config=config,
    )


def run_sensitivity(
    rssi_margins: Sequence[float] = (0.0, 2.0, 6.0),
    decision_timeouts: Sequence[float] = (1.0, 5.0),
    seed: int = 37,
    scale: int = 30,
    workers: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    progress=None,
) -> SensitivityResult:
    """Sweep the RSSI margin and decision timeout.

    The margin sweep runs at the apartment's *second* deployment (the
    marginal cell): a generous margin loosens the threshold, first
    helping precision, then admitting near-room attacks (recall loss).
    A tiny decision timeout forces fail-closed verdicts before any
    phone can answer (precision collapse).  Every sweep point is an
    independent run and fans out over the experiment engine.
    """
    tasks = []
    labels = []
    for margin in rssi_margins:
        tasks.append(ExperimentTask(
            fn=_cell,
            args=(VoiceGuardConfig(rssi_margin=margin), seed, scale),
            kwargs=dict(deployment=1),
            label=f"sensitivity/rssi_margin={margin:g}",
        ))
        labels.append(("rssi_margin", margin))
    for timeout in decision_timeouts:
        config = VoiceGuardConfig(decision_timeout=timeout,
                                  max_hold=max(25.0, timeout))
        tasks.append(ExperimentTask(
            fn=_cell,
            args=(config, seed + 1, scale),
            label=f"sensitivity/decision_timeout={timeout:g}",
        ))
        labels.append(("decision_timeout", timeout))

    engine = ExperimentEngine(workers=workers, use_cache=use_cache,
                              cache_dir=cache_dir, progress=progress)
    result = SensitivityResult()
    for (parameter, value), cell in zip(labels, engine.run(tasks)):
        result.points.append(SweepPoint(
            parameter, value,
            cell.matrix.accuracy, cell.matrix.precision, cell.matrix.recall,
        ))
    return result
