"""Figure 10: Up/Down vs route traces — slopes and y-intercepts.

The paper collects, per case, 15 Up, 15 Down, 25 Route-1, 10 Route-2
and 10 Route-3 traces, fits a line to each 40-sample trace, and shows
that (left column) the slope alone separates Route 1 (|slope| < 1)
from stair-like traces (|slope| > 1), while (right column) slope +
y-intercept jointly separate Routes 2/3 from Up/Down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.reporting import render_table
from repro.core.floor import TraceClassifier, TraceFeatures
from repro.experiments.scenarios import (
    ROUTE_CLASS,
    TRAINING_REPS,
    build_scenario,
    collect_route_features,
)

ROUTE_ORDER = ("up", "down", "route1", "route2", "route3")


@dataclass
class Fig10Result:
    """Training features, held-out features, and test confusion."""

    training: Dict[str, List[TraceFeatures]]
    testing: Dict[str, List[TraceFeatures]]
    confusion: Dict[str, Dict[str, int]]
    classifier: TraceClassifier

    def route_stats(self, which: str = "training") -> Dict[str, Dict[str, float]]:
        source = self.training if which == "training" else self.testing
        stats = {}
        for route, features in source.items():
            slopes = [f.slope for f in features]
            intercepts = [f.intercept for f in features]
            stats[route] = {
                "slope_min": float(np.min(slopes)),
                "slope_max": float(np.max(slopes)),
                "slope_mean": float(np.mean(slopes)),
                "intercept_mean": float(np.mean(intercepts)),
            }
        return stats

    def accuracy(self) -> float:
        correct = sum(self.confusion.get(r, {}).get(r, 0) for r in self.confusion)
        total = sum(sum(row.values()) for row in self.confusion.values())
        return correct / total if total else float("nan")

    def render(self) -> str:
        """Render as paper-style text."""
        stats = self.route_stats("training")
        rows = []
        for route in ROUTE_ORDER:
            if route not in stats:
                continue
            s = stats[route]
            rows.append([
                route,
                f"[{s['slope_min']:.2f}, {s['slope_max']:.2f}]",
                f"{s['slope_mean']:.2f}",
                f"{s['intercept_mean']:.1f}",
                len(self.training[route]),
            ])
        table = render_table(
            "Figure 10: trace fitting-line features per route",
            ["route", "slope range", "slope mean", "y-intercept mean", "traces"],
            rows,
        )
        conf_rows = []
        for route in ROUTE_ORDER:
            if route not in self.confusion:
                continue
            row = self.confusion[route]
            conf_rows.append([route] + [row.get(r, 0) for r in ROUTE_ORDER])
        confusion = render_table(
            f"Held-out trace classification (accuracy {self.accuracy():.1%})",
            ["actual \\ predicted", *ROUTE_ORDER],
            conf_rows,
        )
        return table + "\n\n" + confusion


def run_fig10(
    speaker_kind: str = "echo",
    deployment: int = 0,
    seed: int = 10,
    test_reps: int = 15,
) -> Fig10Result:
    """Collect training + held-out traces and evaluate the classifier."""
    scenario = build_scenario(
        "house", speaker_kind, deployment=deployment, seed=seed,
        owner_count=1, with_floor_tracking=False,
    )
    device = scenario.devices[0]
    training: Dict[str, List[TraceFeatures]] = {}
    for route, reps in TRAINING_REPS.items():
        if route not in scenario.env.testbed.routes:
            continue
        label = ROUTE_CLASS.get(route, route)
        features = collect_route_features(scenario, device, route, reps)
        training.setdefault(label, []).extend(features)
    classifier = TraceClassifier()
    classifier.fit(training)

    testing: Dict[str, List[TraceFeatures]] = {}
    confusion: Dict[str, Dict[str, int]] = {}
    for route in training:
        testing[route] = collect_route_features(scenario, device, route, test_reps)
        row: Dict[str, int] = {}
        for features in testing[route]:
            label = classifier.classify(features)
            row[label] = row.get(label, 0) + 1
        confusion[route] = row
    return Fig10Result(
        training=training,
        testing=testing,
        confusion=confusion,
        classifier=classifier,
    )
