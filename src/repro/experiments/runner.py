"""Scoring for the RSSI-method experiments (Tables II-IV).

Positive class = malicious command (the paper's convention); the guard
"predicts positive" by blocking.  Ground truth comes from the
speakers' interaction registry: an attack that *executed* at the cloud
is a false negative, a legitimate command that never executed is a
false positive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.metrics import ConfusionMatrix
from repro.analysis.reporting import fmt_percent
from repro.experiments.scenarios import build_scenario
from repro.experiments.workload import SevenDayWorkload, WorkloadResult
from repro.speakers.base import InteractionOutcome, InteractionRecord


@dataclass
class RssiExperimentResult:
    """One table cell: a (testbed, speaker, location) run."""

    scenario_name: str
    matrix: ConfusionMatrix
    records: List[InteractionRecord] = field(default_factory=list)
    workload: Optional[WorkloadResult] = None
    # Plain-dict metrics snapshot (repro.obs); picklable, so it
    # survives the parallel engine's process-pool boundary.
    metrics: Optional[dict] = None

    @property
    def legit_correct(self) -> int:
        return self.matrix.true_negative

    @property
    def legit_total(self) -> int:
        return self.matrix.actual_negative

    @property
    def malicious_correct(self) -> int:
        return self.matrix.true_positive

    @property
    def malicious_total(self) -> int:
        return self.matrix.actual_positive

    def row(self) -> Dict[str, object]:
        """A row in the paper's table format.

        Metrics render as percentages; an undefined metric (NaN, e.g.
        precision of a cell with zero positive predictions) renders as
        an em dash rather than ``nan%``.
        """
        return {
            "case": self.scenario_name,
            "legitimate (N)": f"{self.legit_correct} / {self.legit_total}",
            "malicious (P)": f"{self.malicious_correct} / {self.malicious_total}",
            "accuracy": fmt_percent(self.matrix.accuracy),
            "precision": fmt_percent(self.matrix.precision),
            "recall": fmt_percent(self.matrix.recall),
        }

    def correct_flags(self) -> List[bool]:
        """Per-command correctness (the bootstrap's unit of resampling)."""
        flags = []
        for record in self.records:
            blocked = record.outcome is not InteractionOutcome.EXECUTED
            flags.append(blocked == record.is_attack)
        return flags

    def accuracy_interval(self, confidence: float = 0.95, seed: int = 0):
        """95 % bootstrap interval on this cell's accuracy.

        The resampling is explicitly seeded so repeated report runs
        print identical confidence intervals.
        """
        from repro.analysis.stats import accuracy_interval

        return accuracy_interval(self.correct_flags(), confidence=confidence,
                                 seed=seed)


def score_interactions(records: List[InteractionRecord]) -> ConfusionMatrix:
    """Fold settled interaction records into a confusion matrix."""
    matrix = ConfusionMatrix()
    for record in records:
        blocked = record.outcome is not InteractionOutcome.EXECUTED
        matrix.record(actual_positive=record.is_attack, predicted_positive=blocked)
    return matrix


def run_rssi_experiment(
    testbed_name: str,
    speaker_kind: str,
    deployment: int,
    seed: int = 0,
    legit_count: int = 90,
    malicious_count: int = 65,
    owner_count: Optional[int] = None,
    config=None,
    with_floor_tracking: Optional[bool] = None,
    tracing: bool = False,
) -> RssiExperimentResult:
    """Run one Tables II-IV cell end to end.

    ``owner_count`` defaults to the paper's setup: two phone-carrying
    owners in the smart-home testbeds, one watch wearer in the office.
    """
    if owner_count is None:
        owner_count = 1 if testbed_name == "office" else 2
    scenario = build_scenario(
        testbed_name,
        speaker_kind,
        deployment=deployment,
        seed=seed,
        owner_count=owner_count,
        config=config,
        with_floor_tracking=with_floor_tracking,
        tracing=tracing,
    )
    workload = SevenDayWorkload(scenario)
    workload_result = workload.run(legit_count, malicious_count)
    records = scenario.speaker.settle_all()
    # Score only workload-issued commands (boot-time noise has no
    # interaction records, but guard training commands would).
    matrix = score_interactions(records)
    return RssiExperimentResult(
        scenario_name=scenario.name,
        matrix=matrix,
        records=records,
        workload=workload_result,
        metrics=scenario.env.obs.metrics.snapshot(),
    )
