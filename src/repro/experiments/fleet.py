"""Fleet-scale campaign simulation (``repro fleet``).

The paper evaluates VoiceGuard on three testbeds; the production
question is what a *city* of protected homes looks like: availability,
false-block rate, and decision-latency tails across 10k-1M
heterogeneous households, under a remote campaign that only reaches a
fraction of them (the Alexa-ecosystem case study's threat model).

Architecture — built for constant memory and maximum homes/sec:

* Homes are synthesized, not stored: :mod:`repro.experiments.synthesis`
  turns ``(seed, shard, offset)`` into a :class:`HomeSpec`, so a task
  is three integers plus the shared :class:`FleetConfig` — the parent
  process never materializes a million specs, let alone results.
* Dispatch is **chunked**: one pool task simulates ``chunk_size``
  homes and returns a single folded :class:`FleetAccumulator` payload,
  amortizing submit/pickle/IPC overhead that would otherwise dominate
  (the ``BENCH_fleet.json`` sweep measures this against
  one-task-per-submit dispatch).
* Aggregation is **streaming**: chunk payloads fold into per-testbed
  integer counters, a mergeable :class:`~repro.obs.metrics.QuantileSketch`
  for latency percentiles, and a
  :func:`~repro.obs.metrics.merge_snapshots` metrics fold as futures
  complete (:meth:`ExperimentEngine.run_fold`, bounded in-flight
  window) — peak memory is independent of fleet size.
* Every quantity a fleet table renders is a pure function of integer
  counts, so the table is byte-identical across worker counts, chunk
  sizes, shard orderings, and dispatch modes.

Two fidelities share the same population and reducers:

``fast`` (default)
    A reduced-order home model: each command episode samples the
    *real* propagation surface (walls, slabs, shadowing — the paper's
    leak cluster included) at the occupant's measurement point and
    applies the guard's threshold decision plus a retry/push-loss
    latency model.  ~10-100 microseconds per home; this is what makes
    million-home sweeps possible.
``full``
    The packet-level scenario simulation (speaker boot, TCP, BLE
    scans, the works) per home — seconds per home, for validating the
    reduced model on small fleets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.analysis.reporting import fmt_percent, render_table
from repro.errors import WorkloadError
from repro.experiments.parallel import (
    ExperimentEngine,
    ExperimentTask,
    derive_seed,
)
from repro.experiments.synthesis import (
    HomeSpec,
    PopulationModel,
    fleet_world,
    warm_worlds,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_EDGES,
    MetricsRegistry,
    QuantileSketch,
    merge_snapshots,
)

FIDELITIES = ("fast", "full")

# Retry policy the fleet guard runs (the resilience sweep's winner):
# up to two re-pushes with exponential backoff.
PUSH_ATTEMPTS = 3
RETRY_BASE = 1.2
RETRY_CAP = 4.0

# Latency model (seconds): BLE scan window by device kind, then one
# push round-trip per attempt.
SCAN_WINDOW = {"smartphone": (1.1, 2.0), "smartwatch": (1.4, 2.6)}
PUSH_RTT_BASE = 0.18
PUSH_RTT_TAIL = 0.12
WATCH_EXTRA_NOISE = 0.15  # wrist-worn scanners read noisier

# Cumulative backoff by retry count: retries=k waited through the
# first k backoff stages (base doubling per stage, capped).
_BACKOFF_BY_RETRIES = np.cumsum(
    [0.0] + [min(RETRY_BASE * 2.0 ** k, RETRY_CAP)
             for k in range(PUSH_ATTEMPTS - 1)])

SKETCH_ALPHA = 0.01  # 1% relative error on reported percentiles


# ---------------------------------------------------------------------------
# Per-home outcomes
# ---------------------------------------------------------------------------

@dataclass
class HomeSummary:
    """One home's campaign outcome — the guard-summary unit the fleet
    reducers fold; integer counts only (plus transient latencies)."""

    testbed: str
    attacked: bool
    legit: int = 0
    false_blocks: int = 0
    attacks: int = 0
    attacks_blocked: int = 0
    decisions: int = 0
    timeouts: int = 0
    retries: int = 0
    # Resolved-decision latencies in integer microseconds; consumed by
    # the chunk accumulator, never shipped across the pool per home.
    latencies_us: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))


def _latency_model(
    rng: np.random.Generator,
    n: int,
    device_kind: str,
    push_loss: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized decision latency/timeout draws for ``n`` decisions.

    Returns ``(latency_seconds, timeout_mask, retry_counts)``.  Each
    decision scans, then pushes up to :data:`PUSH_ATTEMPTS` times; a
    failed attempt costs one round-trip plus exponential backoff.  A
    decision whose every attempt fails is a timeout (the guard falls
    through to its fail-open policy).
    """
    lo, hi = SCAN_WINDOW[device_kind]
    scan = rng.uniform(lo, hi, size=n)
    rtt = PUSH_RTT_BASE + rng.exponential(PUSH_RTT_TAIL, size=n)
    if push_loss <= 0.0:
        # Loss-free homes (most of the fleet): first push always lands.
        return (scan + rtt, np.zeros(n, dtype=bool),
                np.zeros(n, dtype=np.int64))
    fails = rng.random((n, PUSH_ATTEMPTS)) < push_loss
    # Retries = failed attempts before the first success (0..ATTEMPTS-1).
    first_ok = np.argmin(fails, axis=1)  # index of first False
    timeout = fails.all(axis=1)
    retries = np.where(timeout, PUSH_ATTEMPTS - 1, first_ok)
    latency = scan + (retries + 1) * rtt + _BACKOFF_BY_RETRIES[retries]
    return latency, timeout, retries.astype(np.int64)


def simulate_home(spec: HomeSpec) -> HomeSummary:
    """The reduced-order home model (``fast`` fidelity).

    Every RSSI figure comes from the real propagation substrate
    (:func:`~repro.experiments.synthesis.fleet_world` caches the
    per-bucket surfaces); this function adds the home's occupancy,
    noise, and decision policy on top.  The draw order is fixed and
    documented — it defines the population.
    """
    world = fleet_world(spec.testbed, spec.deployment, spec.plan_scale)
    rng = np.random.default_rng(derive_seed(spec.seed, "home.run"))
    threshold = world.threshold_base - spec.threshold_margin
    sigma = world.model.params.sample_noise_sigma
    if spec.device_kind == "smartwatch":
        sigma += WATCH_EXTRA_NOISE
    occlusion = world.model.params.body_occlusion

    n_legit = spec.legit_commands
    n_attack = spec.attacks
    extra = spec.owner_count - 1
    owners = max(spec.owner_count, 1)
    summary = HomeSummary(testbed=spec.testbed, attacked=n_attack > 0,
                          legit=n_legit, attacks=n_attack)

    # All randomness for the episode block is drawn in four fixed-order
    # vectors (legit-point picks, away-point picks, uniforms, standard
    # normals) and sliced — part of the population definition, and the
    # reason per-home cost stays in the tens of microseconds.
    legit_idx = rng.integers(0, world.legit_means.size,
                             size=(1 + extra) * n_legit)
    away_idx = rng.integers(0, world.away_means.size,
                            size=extra * n_legit + owners * n_attack)
    uniforms = rng.random((1 + extra) * n_legit)
    normals = rng.standard_normal((2 + extra) * n_legit + owners * n_attack)

    # -- legitimate episodes: the speaking owner is at a legit point --
    samples = world.legit_means[legit_idx[:n_legit]] + sigma * normals[:n_legit]
    blocked_mask = uniforms[:n_legit] < spec.body_block_fraction
    body_loss = np.abs(occlusion + (occlusion / 2)
                       * normals[n_legit:2 * n_legit])
    samples -= blocked_mask * body_loss
    allow = samples >= threshold
    cursor = 2 * n_legit
    # Extra owners wander; any device above threshold also grants.
    if extra > 0:
        away = uniforms[n_legit:].reshape(extra, n_legit) < spec.away_fraction
        opts = away_idx[:extra * n_legit].reshape(extra, n_legit)
        ipts = legit_idx[n_legit:].reshape(extra, n_legit)
        other = np.where(away, world.away_means[opts], world.legit_means[ipts])
        other += sigma * normals[cursor:cursor + extra * n_legit].reshape(
            extra, n_legit)
        allow |= (other >= threshold).any(axis=0)
        cursor += extra * n_legit

    # -- attack episodes: the campaign fires while every owner is away --
    apts = away_idx[extra * n_legit:].reshape(owners, n_attack)
    asamples = world.away_means[apts] + sigma * normals[cursor:].reshape(
        owners, n_attack)
    attack_exposed = (asamples >= threshold).any(axis=0)

    # -- decision pipeline: scans, pushes, retries, timeouts --
    n = n_legit + n_attack
    latency, timeout, retries = _latency_model(
        rng, n, spec.device_kind, spec.push_loss)
    legit_timeout = timeout[:n_legit]
    attack_timeout = timeout[n_legit:]

    # Legit: a resolved below-threshold reading is a false block; a
    # timeout falls open (executes), costing availability, not a block.
    summary.false_blocks = int((~legit_timeout & ~allow).sum())
    # Attack: blocked only when resolved with every device below the
    # threshold; a leak-zone reading or a timeout lets it execute.
    summary.attacks_blocked = int((~attack_timeout & ~attack_exposed).sum())

    summary.decisions = n
    summary.timeouts = int(timeout.sum())
    summary.retries = int(retries.sum())
    resolved = latency[~timeout]
    summary.latencies_us = np.rint(resolved * 1e6).astype(np.int64)
    return summary


_SCENARIO_POOL = None


def _scenario_pool():
    """The worker-process scenario pool (built lazily per process)."""
    global _SCENARIO_POOL
    if _SCENARIO_POOL is None:
        from repro.experiments.pool import ScenarioPool

        _SCENARIO_POOL = ScenarioPool()
    return _SCENARIO_POOL


def clear_scenario_pool() -> None:
    """Drop the worker pool's templates (tests / memory pressure)."""
    global _SCENARIO_POOL
    _SCENARIO_POOL = None


def _summarize_full(scenario, spec: HomeSpec) -> HomeSummary:
    """Run a built home through its workload and fold the summary."""
    from repro.analysis.metrics import summarize_resilience
    from repro.experiments.runner import score_interactions
    from repro.experiments.workload import SevenDayWorkload

    workload = SevenDayWorkload(scenario)
    workload.run(spec.legit_commands, spec.attacks)
    records = scenario.speaker.settle_all()
    matrix = score_interactions(records)
    resilience = summarize_resilience(
        scenario.guard.command_events(),
        scenario.guard.log.resilience_counts(),
    )
    latencies = [
        event.decision_latency
        for event in scenario.guard.command_events()
        if getattr(event, "decision_latency", None) is not None
    ]
    return HomeSummary(
        testbed=spec.testbed,
        attacked=spec.attacks > 0,
        legit=matrix.actual_negative,
        false_blocks=matrix.false_positive,
        attacks=matrix.actual_positive,
        attacks_blocked=matrix.true_positive,
        decisions=resilience.decisions,
        timeouts=resilience.timeouts,
        retries=resilience.retries,
        latencies_us=np.rint(np.asarray(latencies, dtype=np.float64) * 1e6
                             ).astype(np.int64),
    )


def simulate_home_full(spec: HomeSpec) -> HomeSummary:
    """Packet-level fidelity: one full scenario simulation per home.

    Worlds come from the warm-start scenario pool
    (:mod:`repro.experiments.pool`): one template build per world
    bucket, then a snapshot restore + rehome per home — byte-identical
    to :func:`simulate_home_full_cold` and an order of magnitude
    faster, which is what makes ``--fidelity full`` usable beyond a
    handful of homes.
    """
    return _summarize_full(_scenario_pool().acquire(spec), spec)


def simulate_home_full_cold(spec: HomeSpec) -> HomeSummary:
    """Packet-level fidelity with a from-scratch world build per home.

    The pool's equality oracle and the ``BENCH_fleet_full`` baseline;
    selected at fleet level with ``full_build="cold"``.
    """
    from repro.experiments.pool import build_home_cold

    return _summarize_full(build_home_cold(spec), spec)


# ---------------------------------------------------------------------------
# Streaming reducers
# ---------------------------------------------------------------------------

COUNT_KEYS = (
    "homes", "homes_attacked", "legit_commands", "false_blocks",
    "attacks", "attacks_blocked", "decisions", "timeouts", "retries",
    "latency_total_us",
)


def _sketch_add_array(sketch: QuantileSketch, values_us: np.ndarray) -> None:
    """Bulk-add integer-microsecond latencies to a sketch.

    Bucket indices are computed vectorized; because *every* fleet path
    (serial, pooled, per-task, chunked) lands values through this one
    helper, the resulting sketch is identical across all of them.
    """
    if values_us.size == 0:
        return
    v = np.asarray(values_us, dtype=np.float64)
    sketch.count += int(v.size)
    mn = float(v.min())
    mx = float(v.max())
    if mn < sketch.min:
        sketch.min = mn
    if mx > sketch.max:
        sketch.max = mx
    zero = v <= QuantileSketch.MIN_TRACKED
    zeros = int(zero.sum())
    if zeros:
        sketch.zero_count += zeros
        v = v[~zero]
    if v.size:
        indices = np.ceil(np.log(v) / sketch._log_gamma).astype(np.int64)
        base = int(indices.min())
        histogram = np.bincount(indices - base)
        buckets = sketch.buckets
        for offset in np.flatnonzero(histogram):
            index = base + int(offset)
            buckets[index] = buckets.get(index, 0) + int(histogram[offset])


class FleetAccumulator:
    """Constant-memory fold target for a streaming fleet run.

    Holds per-testbed integer counters, a per-testbed mergeable
    latency sketch, and a merged metrics snapshot — never a per-home
    result.  ``merge_payload`` is commutative and associative over the
    integer state, which is what makes fleet tables independent of
    completion order.
    """

    def __init__(self) -> None:
        self.per_testbed: Dict[str, Dict[str, int]] = {}
        self.sketches: Dict[str, QuantileSketch] = {}
        self.metrics: Optional[dict] = None

    # -- in-worker accumulation -----------------------------------------
    def _bucket(self, testbed: str) -> Dict[str, int]:
        counts = self.per_testbed.get(testbed)
        if counts is None:
            counts = self.per_testbed[testbed] = {key: 0 for key in COUNT_KEYS}
            self.sketches[testbed] = QuantileSketch(SKETCH_ALPHA)
        return counts

    def add_home(self, summary: HomeSummary) -> None:
        counts = self._bucket(summary.testbed)
        counts["homes"] += 1
        counts["homes_attacked"] += 1 if summary.attacked else 0
        counts["legit_commands"] += summary.legit
        counts["false_blocks"] += summary.false_blocks
        counts["attacks"] += summary.attacks
        counts["attacks_blocked"] += summary.attacks_blocked
        counts["decisions"] += summary.decisions
        counts["timeouts"] += summary.timeouts
        counts["retries"] += summary.retries
        counts["latency_total_us"] += int(summary.latencies_us.sum())
        _sketch_add_array(self.sketches[summary.testbed], summary.latencies_us)

    # -- cross-chunk folding --------------------------------------------
    def to_payload(self) -> dict:
        """Plain picklable form (the chunk's pool return value)."""
        return {
            "per_testbed": {name: dict(counts)
                            for name, counts in self.per_testbed.items()},
            "sketches": {name: sketch.to_dict()
                         for name, sketch in self.sketches.items()},
            "metrics": self.metrics,
        }

    def merge_payload(self, payload: dict) -> "FleetAccumulator":
        for name, counts in payload["per_testbed"].items():
            bucket = self._bucket(name)
            for key in COUNT_KEYS:
                bucket[key] += counts.get(key, 0)
        for name, sketch_payload in payload["sketches"].items():
            self._bucket(name)  # ensure the sketch exists
            self.sketches[name].merge(QuantileSketch.from_dict(sketch_payload))
        if payload.get("metrics"):
            self.metrics = merge_snapshots([self.metrics, payload["metrics"]])
        return self

    # -- fleet-level views ----------------------------------------------
    def totals(self) -> Dict[str, int]:
        total = {key: 0 for key in COUNT_KEYS}
        for counts in self.per_testbed.values():
            for key in COUNT_KEYS:
                total[key] += counts[key]
        return total

    def total_sketch(self) -> QuantileSketch:
        merged = QuantileSketch(SKETCH_ALPHA)
        for name in sorted(self.sketches):
            merged.merge(self.sketches[name])
        return merged


# ---------------------------------------------------------------------------
# Chunked worker entry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FleetConfig:
    """A fleet run: size, sharding, dispatch grain, and population."""

    homes: int
    shards: int = 8
    seed: int = 0
    chunk_size: int = 256
    fidelity: str = "fast"
    # full fidelity only: "pooled" restores homes from warm-start
    # templates; "cold" rebuilds every world from scratch (the
    # benchmark baseline).  Both produce byte-identical tables.
    full_build: str = "pooled"
    population: PopulationModel = field(default_factory=PopulationModel)

    def __post_init__(self) -> None:
        if self.homes < 1:
            raise WorkloadError(f"fleet needs at least one home, got {self.homes!r}")
        if self.shards < 1:
            raise WorkloadError(f"shards must be >= 1, got {self.shards!r}")
        if self.chunk_size < 1:
            raise WorkloadError(f"chunk_size must be >= 1, got {self.chunk_size!r}")
        if self.fidelity not in FIDELITIES:
            raise WorkloadError(
                f"unknown fidelity {self.fidelity!r}; choose from {FIDELITIES}")
        if self.full_build not in ("pooled", "cold"):
            raise WorkloadError(
                f"unknown full_build {self.full_build!r}; "
                f"choose from ('pooled', 'cold')")

    def shard_size(self, shard: int) -> int:
        base, remainder = divmod(self.homes, self.shards)
        return base + (1 if shard < remainder else 0)

    def shard_start(self, shard: int) -> int:
        base, remainder = divmod(self.homes, self.shards)
        return shard * base + min(shard, remainder)

    def iter_chunks(self, chunk_size: Optional[int] = None,
                    shard_order: Optional[List[int]] = None,
                    ) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(shard, lo, hi)`` chunk bounds, streaming."""
        chunk = chunk_size or self.chunk_size
        shards = shard_order if shard_order is not None else range(self.shards)
        for shard in shards:
            size = self.shard_size(shard)
            for lo in range(0, size, chunk):
                yield shard, lo, min(lo + chunk, size)


def run_fleet_chunk(config: FleetConfig, shard: int, lo: int, hi: int) -> dict:
    """Simulate homes ``lo..hi`` of ``shard``; return one folded payload.

    This is the pool-task unit: synthesis happens worker-side from
    three integers, and the return value is a constant-size payload no
    matter how many homes the chunk covers.
    """
    accumulator = FleetAccumulator()
    registry = MetricsRegistry()
    scope = registry.scope("fleet")
    homes_counter = scope.counter("homes")
    decisions_counter = scope.counter("decisions")
    timeouts_counter = scope.counter("timeouts")
    false_block_counter = scope.counter("false_blocks")
    blocked_counter = scope.counter("attacks_blocked")
    latency_hist = scope.histogram("decision_latency", DEFAULT_LATENCY_EDGES)

    if config.fidelity == "fast":
        simulate = simulate_home
    elif config.full_build == "cold":
        simulate = simulate_home_full_cold
    else:
        simulate = simulate_home_full
    start_index = config.shard_start(shard)
    for offset in range(lo, hi):
        spec = config.population.home(config.seed, shard, offset,
                                      start_index + offset)
        summary = simulate(spec)
        accumulator.add_home(summary)
        homes_counter.inc()
        decisions_counter.inc(summary.decisions)
        timeouts_counter.inc(summary.timeouts)
        false_block_counter.inc(summary.false_blocks)
        blocked_counter.inc(summary.attacks_blocked)
        _histogram_add_array(latency_hist, summary.latencies_us)
    accumulator.metrics = registry.snapshot()
    return accumulator.to_payload()


def _histogram_add_array(hist, values_us: np.ndarray) -> None:
    """Vectorized bulk-record of microsecond latencies (as seconds)."""
    if values_us.size == 0:
        return
    seconds = np.asarray(values_us, dtype=np.float64) / 1e6
    slots = np.searchsorted(np.asarray(hist.edges), seconds, side="left")
    counts = np.bincount(slots, minlength=len(hist.counts))
    for i, n in enumerate(counts):
        hist.counts[i] += int(n)
    hist.count += int(seconds.size)
    hist.total += float(seconds.sum())
    mn = float(seconds.min())
    mx = float(seconds.max())
    if mn < hist.min:
        hist.min = mn
    if mx > hist.max:
        hist.max = mx


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------

def _fold_chunk(accumulator: FleetAccumulator, payload: object,
                task: ExperimentTask) -> FleetAccumulator:
    return accumulator.merge_payload(payload)


class FleetProgressMeter:
    """Counted progress for a streaming fleet run.

    Reads each folded chunk's ``fleet.homes`` counter from its
    ``obs.metrics`` snapshot (every chunk carries one) and reports
    homes done, instantaneous throughput, and the ETA implied by the
    mean rate so far.  Emission is rate-limited so a million-home fast
    run doesn't drown stderr; the final update always emits.
    """

    def __init__(self, total_homes: int, emit=None,
                 min_interval: float = 0.5) -> None:
        self.total = total_homes
        self.done = 0
        # Chunks whose payload carried no metrics snapshot.  The folded
        # snapshot's collect_metric_snapshots logs a counted warning for
        # these; the live progress line surfaces the same count so an
        # operator watching a long run sees the under-reporting as it
        # happens, not in a log file afterwards.
        self.missing_metrics = 0
        self.emit = emit if emit is not None else self._default_emit
        self.min_interval = min_interval
        self.start = time.perf_counter()
        self._last_emit = float("-inf")

    @staticmethod
    def _default_emit(message: str) -> None:
        import sys

        print(message, file=sys.stderr, flush=True)

    def _chunk_homes(self, payload: dict) -> int:
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            self.missing_metrics += 1
            metrics = {}
        homes = metrics.get("counters", {}).get("fleet.homes")
        if homes is None:  # metrics-free payload: fall back to counts
            homes = sum(counts.get("homes", 0)
                        for counts in payload.get("per_testbed", {}).values())
        return int(homes)

    def update(self, payload: dict) -> None:
        """Fold one chunk's payload into the meter, maybe emitting."""
        self.done += self._chunk_homes(payload)
        now = time.perf_counter()
        final = self.done >= self.total
        if not final and now - self._last_emit < self.min_interval:
            return
        self._last_emit = now
        elapsed = max(now - self.start, 1e-9)
        rate = self.done / elapsed
        remaining = max(self.total - self.done, 0)
        eta = remaining / rate if rate > 0 else float("inf")
        warning = (
            f" [{self.missing_metrics} chunks w/o metrics]"
            if self.missing_metrics else ""
        )
        self.emit(
            f"fleet: {self.done}/{self.total} homes "
            f"({self.done / self.total:.0%}) — {rate:,.0f} homes/sec, "
            f"ETA {eta:,.0f}s{warning}"
        )


@dataclass
class FleetResult:
    """A completed fleet run: accumulators plus run telemetry."""

    config: FleetConfig
    accumulator: FleetAccumulator
    elapsed: float
    chunks: int
    workers: int
    dispatch: str

    @property
    def homes_per_sec(self) -> float:
        return self.config.homes / self.elapsed if self.elapsed > 0 else float("inf")

    def _row(self, name: str, counts: Dict[str, int],
             sketch: QuantileSketch) -> List[object]:
        def rate(num: int, den: int) -> float:
            return num / den if den else float("nan")

        def seconds(q: float) -> str:
            value = sketch.quantile(q)
            return f"{value / 1e6:.2f}s" if value == value else "—"

        decisions = counts["decisions"]
        return [
            name,
            counts["homes"],
            counts["homes_attacked"],
            counts["legit_commands"],
            fmt_percent(rate(counts["false_blocks"], counts["legit_commands"])),
            counts["attacks"],
            fmt_percent(rate(counts["attacks_blocked"], counts["attacks"])),
            fmt_percent(rate(decisions - counts["timeouts"], decisions)),
            seconds(0.50),
            seconds(0.99),
        ]

    def render(self) -> str:
        """The fleet table — deterministic (no wall-clock content).

        Every cell derives from integer counts or sketch buckets, so
        the rendering is byte-identical across worker counts, chunk
        sizes, shard orders, and dispatch modes.
        """
        acc = self.accumulator
        rows = [
            self._row(name, acc.per_testbed[name], acc.sketches[name])
            for name in sorted(acc.per_testbed)
        ]
        if len(acc.per_testbed) > 1:
            rows.append(self._row("all", acc.totals(), acc.total_sketch()))
        population = self.config.population
        table = render_table(
            f"Fleet simulation: {self.config.homes} homes, "
            f"{self.config.shards} shards, seed {self.config.seed} "
            f"({self.config.fidelity} fidelity)",
            ["testbed", "homes", "attacked", "commands", "false-block",
             "attacks", "blocked", "avail", "p50", "p99"],
            rows,
        )
        notes = [
            table,
            f"attack prevalence {population.attack_prevalence:.0%}; "
            "false-block = resolved legitimate commands denied; "
            "avail = decisions resolved before the fail-open window; "
            "p50/p99 over resolved decision latency "
            f"(±{SKETCH_ALPHA:.0%} relative, mergeable sketch).",
        ]
        return "\n".join(notes)

    def render_throughput(self) -> str:
        return (f"{self.config.homes} homes in {self.elapsed:.2f}s — "
                f"{self.homes_per_sec:,.0f} homes/sec "
                f"({self.dispatch} dispatch, workers={self.workers}, "
                f"chunk={self.config.chunk_size}, {self.chunks} tasks)")


def run_fleet(
    config: FleetConfig,
    workers: int = 1,
    progress=None,
    dispatch: str = "chunked",
    shard_order: Optional[List[int]] = None,
    window: Optional[int] = None,
) -> FleetResult:
    """Stream a fleet through the experiment engine.

    ``dispatch="chunked"`` (the fast path) folds chunk payloads as
    futures complete with bounded in-flight backpressure;
    ``dispatch="per-task"`` submits one home per pool task and
    materializes every result — kept runnable as the benchmark
    baseline the chunked path is measured against.  Both produce the
    same accumulator state, and therefore the same table.

    ``progress=True`` attaches a :class:`FleetProgressMeter` (counted
    homes done / homes-per-sec / ETA on stderr, fed by each chunk's
    metrics snapshot); a callable instead receives the engine's
    per-task messages, the pre-meter behaviour.
    """
    if dispatch not in ("chunked", "per-task"):
        raise WorkloadError(f"unknown dispatch mode {dispatch!r}")
    meter = FleetProgressMeter(config.homes) if progress is True else None
    engine = ExperimentEngine(workers=workers, use_cache=False,
                              progress=progress if callable(progress) else None)
    start = time.perf_counter()
    if config.fidelity == "fast":
        # Build every world bucket before the pool forks: children
        # inherit the warmed cache instead of rebuilding it per worker.
        warm_worlds(config.population)
    if dispatch == "per-task":
        tasks = [
            ExperimentTask(
                fn=run_fleet_chunk,
                args=(config, shard, lo, hi),
                label=f"fleet/s{shard}/{lo}",
                cacheable=False,
            )
            for shard, lo, hi in config.iter_chunks(chunk_size=1,
                                                    shard_order=shard_order)
        ]
        results = engine.run(tasks)
        accumulator = FleetAccumulator()
        for payload in results:
            accumulator.merge_payload(payload)
            if meter is not None:
                meter.update(payload)
        chunks = len(tasks)
    else:
        task_stream = (
            ExperimentTask(
                fn=run_fleet_chunk,
                args=(config, shard, lo, hi),
                label=f"fleet/s{shard}/{lo}-{hi}",
                cacheable=False,
            )
            for shard, lo, hi in config.iter_chunks(shard_order=shard_order)
        )

        def fold(accumulator, payload, task):
            accumulator = _fold_chunk(accumulator, payload, task)
            if meter is not None:
                meter.update(payload)
            return accumulator

        accumulator, chunks = engine.run_fold(
            task_stream, fold, initial=FleetAccumulator(),
            window=window,
        )
    elapsed = time.perf_counter() - start
    return FleetResult(
        config=config,
        accumulator=accumulator,
        elapsed=elapsed,
        chunks=chunks,
        workers=engine.workers,
        dispatch=dispatch,
    )
