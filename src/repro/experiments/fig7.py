"""Figure 7: RSSI query processing time.

The paper measures the whole guard workflow (invocation, packet
holding, RSSI query) over 100 invocations per speaker: Echo Dot mean
1.622 s with 78 % under 2 s and two runs slightly above 3 s; Google
Home Mini mean 1.892 s.  The connection is never terminated by the
delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.analysis.reporting import render_histogram
from repro.audio.speech import full_utterance_duration
from repro.core.decision import Verdict
from repro.experiments.scenarios import build_scenario

PAPER_ECHO_MEAN = 1.622
PAPER_GOOGLE_MEAN = 1.892
PAPER_UNDER_2S = 0.78


@dataclass
class Fig7Result:
    speaker_kind: str
    delays: List[float] = field(default_factory=list)
    sessions_broken: int = 0

    @property
    def mean(self) -> float:
        return float(np.mean(self.delays)) if self.delays else float("nan")

    @property
    def fraction_under_2s(self) -> float:
        if not self.delays:
            return float("nan")
        return sum(1 for d in self.delays if d < 2.0) / len(self.delays)

    @property
    def count_over_3s(self) -> int:
        return sum(1 for d in self.delays if d > 3.0)

    def render(self) -> str:
        """Render as paper-style text."""
        histogram = render_histogram(
            f"Figure 7 ({self.speaker_kind}): RSSI verification time over "
            f"{len(self.delays)} invocations",
            self.delays,
            bins=[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0],
        )
        paper_mean = PAPER_ECHO_MEAN if self.speaker_kind == "echo" else PAPER_GOOGLE_MEAN
        return histogram + (
            f"\nmean {self.mean:.3f}s (paper {paper_mean:.3f}s) | "
            f"under 2s: {self.fraction_under_2s:.0%} | over 3s: {self.count_over_3s} | "
            f"sessions broken by holding: {self.sessions_broken}"
        )


def run_fig7(speaker_kind: str = "echo", invocations: int = 100, seed: int = 4) -> Fig7Result:
    """Measure the guard-workflow delay over ``invocations`` commands."""
    scenario = build_scenario(
        "house", speaker_kind, deployment=0, seed=seed,
        owner_count=1, with_floor_tracking=False,
    )
    env = scenario.env
    owner = scenario.owners[0]
    owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))
    rng = env.rng.stream("fig7.workload")
    for _ in range(invocations):
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        utterance = owner.speak(command.text, duration)
        env.play_utterance(utterance, owner.device_position())
        env.sim.run_for(duration + 15.0 + float(rng.uniform(0.0, 3.0)))
    env.sim.run_for(20.0)

    delays = [
        event.decision_latency
        for event in scenario.guard.log.commands()
        if event.verdict in (Verdict.LEGITIMATE, Verdict.MALICIOUS)
        and event.decision_latency is not None
    ]
    broken = 0
    if scenario.avs_cloud is not None:
        broken = len(scenario.avs_cloud.stats.tls_violations)
    return Fig7Result(
        speaker_kind=speaker_kind,
        delays=delays,
        sessions_broken=broken,
    )
