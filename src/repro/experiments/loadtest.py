"""Bursty multi-speaker load test (``repro loadtest``).

The paper evaluates one speaker and one command at a time; a real home
has several speakers in earshot of the same utterance, and every one of
them uploads the command simultaneously — N command windows in flight
through one guard.  This experiment drives that regime: bursts of
owner commands arrive at a configurable offered rate in homes with 1,
2 or 4 Echo Dots, and every cell reports the guard-side throughput
(resolved commands/sec) against the hold-time tail (p50/p99), plus the
coordinator's queue/batching counters — the raw data behind the
commands/sec-vs-latency knee that ``benchmarks/bench_load.py`` charts.

Three guard configurations bound the space:

* ``coordinated`` — the PR's concurrency machinery on: two query
  slots, batching (one phone report settles every speaker's copy of
  the utterance), a generous held-byte budget.
* ``strict`` — one slot, no batching: every window burns its own
  query, so concurrent windows queue and the hold tail stretches.
  This is the past-the-knee reference curve.
* ``degraded`` — coordinated, but with the fault injector dropping
  most pushes and a deliberately tiny held-byte budget: decisions burn
  their timeout, holds pile up, and the budget's overflow policy
  (fail-open or fail-closed) starts shedding load.

Cells are pure functions of their arguments and fan out over the
parallel engine, so the rendered table is identical at any worker
count — the determinism the CI load-smoke job asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import render_table
from repro.audio.speech import full_utterance_duration
from repro.core.config import VoiceGuardConfig
from repro.errors import WorkloadError
from repro.experiments.parallel import ExperimentEngine, ExperimentTask, derive_seed
from repro.experiments.scenarios import add_echo_speaker, build_scenario
from repro.faults.plan import FaultPlan
from repro.obs.metrics import histogram_quantile, merge_snapshots

TESTBED = "apartment"
SPEAKER_COUNTS = (1, 2, 4)

# Offered-load levels: mean idle seconds between command bursts.  The
# realized offered rate is reported per cell (speech time and window
# separation put a physical ceiling on how fast one person can talk).
RATE_LEVELS: Dict[str, float] = {"low": 16.0, "med": 8.0, "high": 2.0}

# Guard configurations, see module docstring.
MODES = ("coordinated", "strict", "degraded")

# Intra-burst spacing beyond the utterance itself: enough post-command
# silence that the recognizer closes one window before the next spike
# (idle_gap plus classification slack), so bursts stress the decision
# layer, not the spike detector.
BURST_SPACING = 3.0

# The degraded mode's fault plan: most pushes lost, so queries burn
# their full timeout while held bytes accumulate against a tiny budget.
DEGRADED_PUSH_LOSS = 0.75
DEGRADED_BUDGET = 4_096


def _cell_config(mode: str) -> VoiceGuardConfig:
    if mode == "coordinated":
        return VoiceGuardConfig(
            max_concurrent_queries=2, decision_batching=True,
            held_byte_budget=65_536,
        )
    if mode == "strict":
        return VoiceGuardConfig(
            max_concurrent_queries=1, decision_batching=False,
            held_byte_budget=65_536,
        )
    if mode == "degraded":
        return VoiceGuardConfig(
            max_concurrent_queries=2, decision_batching=True,
            held_byte_budget=DEGRADED_BUDGET,
        )
    raise WorkloadError(f"unknown loadtest mode {mode!r}")


@dataclass
class LoadCell:
    """One (speakers, rate, mode) run, measured."""

    speakers: int
    rate: str
    mode: str
    offered: int  # utterances spoken
    duration: float  # sim-seconds from first burst to full drain
    commands: int  # command windows the guard saw
    released: int
    blocked: int
    timeouts: int
    batched: int
    queued: int
    expired: int
    overflows: int
    failsafes: int
    queue_peak: float
    inflight_peak: float
    hold_p50: float
    hold_p99: float
    metrics: dict = field(repr=False, default_factory=dict)

    @property
    def resolved(self) -> int:
        return self.released + self.blocked

    @property
    def offered_rate(self) -> float:
        return self.offered / self.duration if self.duration else 0.0

    @property
    def throughput(self) -> float:
        """Resolved command windows per sim-second."""
        return self.resolved / self.duration if self.duration else 0.0

    def row(self) -> List[object]:
        def sec(v: float) -> str:
            return f"{v:.2f}s" if v == v else "—"

        return [
            self.speakers, self.mode, self.rate,
            f"{self.offered_rate:.3f}/s",
            self.commands,
            f"{self.throughput:.3f}/s",
            self.released, self.blocked, self.timeouts,
            self.batched, self.queued, self.overflows,
            int(self.queue_peak),
            sec(self.hold_p50), sec(self.hold_p99),
        ]


def run_loadtest_cell(
    speakers: int,
    rate: str,
    mode: str = "coordinated",
    seed: int = 0,
    utterances: int = 16,
    burst_max: int = 3,
    testbed: str = TESTBED,
) -> LoadCell:
    """Run one load cell: bursty commands through a multi-speaker home."""
    if rate not in RATE_LEVELS:
        raise WorkloadError(f"unknown rate level {rate!r}")
    if speakers < 1:
        raise WorkloadError(f"need at least one speaker, got {speakers!r}")
    idle_mean = RATE_LEVELS[rate]
    config = _cell_config(mode)
    plan = None
    if mode == "degraded":
        plan = FaultPlan(
            seed=derive_seed(seed, "loadtest.faults", speakers, rate),
            push_loss=DEGRADED_PUSH_LOSS,
        )
    scenario = build_scenario(
        testbed, "echo", seed=seed, config=config, fault_plan=plan,
    )
    for _ in range(speakers - 1):
        add_echo_speaker(scenario)
    scenario.settle()

    env = scenario.env
    rng = env.rng.stream("loadtest.arrivals")
    owner = scenario.owners[0]
    start = env.sim.now
    issued = 0
    while issued < utterances:
        burst = min(int(rng.integers(1, burst_max + 1)), utterances - issued)
        for _ in range(burst):
            command = scenario.corpus.sample(rng)
            duration = full_utterance_duration(command, rng)
            utterance = owner.speak(command.text, duration)
            env.play_utterance(utterance, owner.device_position())
            issued += 1
            env.sim.run_for(duration + BURST_SPACING)
        env.sim.run_for(float(rng.exponential(idle_mean)))
    # Drain: every pending hold resolves within max_hold, plus slack
    # for response playback.
    env.sim.run_for(config.max_hold + 15.0)
    elapsed = env.sim.now - start

    events = scenario.guard.command_events()
    snapshot = env.obs.metrics.snapshot()
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    hold = snapshot["histograms"]["proxy.hold_duration"]
    timeouts = sum(
        1 for e in events if e.verdict is not None and e.verdict.value == "timeout"
    )
    return LoadCell(
        speakers=speakers,
        rate=rate,
        mode=mode,
        offered=issued,
        duration=elapsed,
        commands=len(events),
        released=int(counters.get("proxy.commands_released", 0)),
        blocked=int(counters.get("proxy.commands_blocked", 0)),
        timeouts=timeouts,
        batched=int(counters.get("decision.batched_settlements", 0)),
        queued=int(counters.get("decision.queued", 0)),
        expired=int(counters.get("decision.expired_in_queue", 0)),
        overflows=int(counters.get("proxy.hold_overflows", 0)),
        failsafes=int(counters.get("proxy.failsafe_resolutions", 0)),
        queue_peak=gauges.get("decision.queue_depth", {}).get("high_water", 0.0),
        inflight_peak=gauges.get("decision.inflight", {}).get("high_water", 0.0),
        hold_p50=histogram_quantile(hold, 0.5),
        hold_p99=histogram_quantile(hold, 0.99),
        metrics=snapshot,
    )


def saturation_knee(
    cells: Sequence[LoadCell],
    speakers: int,
    p99_bound: float = 10.0,
    mode: str = "coordinated",
) -> Optional[LoadCell]:
    """The highest-throughput cell still under the latency bound.

    The knee of the commands/sec-vs-latency curve: among one speaker
    count's cells (in one mode), the fastest cell whose hold p99 stays
    at or under ``p99_bound`` and that lost nothing to timeouts or the
    max-hold failsafe.  ``None`` when every cell is past the knee.
    """
    eligible = [
        c for c in cells
        if c.speakers == speakers and c.mode == mode
        and c.hold_p99 == c.hold_p99 and c.hold_p99 <= p99_bound
        and c.timeouts == 0 and c.failsafes == 0
    ]
    if not eligible:
        return None
    return max(eligible, key=lambda c: c.throughput)


@dataclass
class LoadtestResult:
    """The full grid, in submission order."""

    cells: List[LoadCell]
    seed: int

    def render(self) -> str:
        table = render_table(
            "Load test: bursty commands x concurrent speakers (one guard)",
            ["spk", "mode", "rate", "offered", "cmds", "resolved/s",
             "rel", "blk", "t/o", "batched", "queued", "ovfl", "q-peak",
             "hold p50", "hold p99"],
            [cell.row() for cell in self.cells],
        )
        lines = [table, f"seed {self.seed}; {len(self.cells)} cells"]
        knee1 = saturation_knee(self.cells, 1)
        knee4 = saturation_knee(self.cells, 4)
        if knee1 is not None and knee4 is not None and knee1.throughput > 0:
            lines.append(
                f"knee: {knee4.throughput:.3f} resolved/s at 4 speakers vs "
                f"{knee1.throughput:.3f} single-flow "
                f"({knee4.throughput / knee1.throughput:.1f}x), "
                f"hold p99 {knee4.hold_p99:.1f}s at the knee"
            )
        lines.append(
            "modes: coordinated = 2 query slots + batching; strict = 1 slot, "
            "no batching; degraded = 75% push loss + 4 KiB held-byte budget."
        )
        return "\n".join(lines)

    def merged_metrics(self) -> dict:
        """One fleet-style fold of every cell's metrics snapshot."""
        return merge_snapshots(cell.metrics for cell in self.cells)


def run_loadtest(
    seed: int = 0,
    smoke: bool = False,
    speaker_counts: Sequence[int] = SPEAKER_COUNTS,
    rates: Sequence[str] = ("low", "med", "high"),
    utterances: Optional[int] = None,
    workers: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    progress=None,
) -> LoadtestResult:
    """Run the grid through the parallel engine.

    The full grid sweeps every speaker count across every offered-load
    level in the coordinated configuration, then adds the strict and
    degraded stress cells at the largest speaker count's highest rate.
    ``smoke`` shrinks the grid to the corners CI exercises.
    """
    if smoke:
        speaker_counts = (1, 4)
        rates = ("high",)
        utterances = 6 if utterances is None else utterances
    per_cell = 16 if utterances is None else utterances
    tasks = []

    def add(speakers: int, rate: str, mode: str) -> None:
        tasks.append(ExperimentTask(
            fn=run_loadtest_cell,
            args=(speakers, rate, mode),
            kwargs=dict(
                seed=derive_seed(seed, "loadtest", speakers, rate, mode),
                utterances=per_cell,
            ),
            label=f"loadtest/{speakers}spk/{rate}/{mode}",
        ))

    for speakers in speaker_counts:
        for rate in rates:
            add(speakers, rate, "coordinated")
    stress_speakers = max(speaker_counts)
    stress_rate = rates[-1]
    add(stress_speakers, stress_rate, "strict")
    add(stress_speakers, stress_rate, "degraded")

    engine = ExperimentEngine(workers=workers, use_cache=use_cache,
                              cache_dir=cache_dir, progress=progress)
    cells = engine.run(tasks)
    return LoadtestResult(cells=list(cells), seed=seed)
