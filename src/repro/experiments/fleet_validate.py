"""Statistical cross-validation of the two fleet fidelities
(``repro fleet-validate``).

The fleet engine ships two home models over one synthesized
population: the reduced-order ``fast`` model (tens of microseconds per
home) and the packet-level ``full`` scenario simulation (tens of
milliseconds per home through the warm-start pool).  Million-home
claims rest on the fast model, so this experiment quantifies how far
its *population statistics* sit from the packet-level ground truth.

Protocol: the same :class:`~repro.experiments.fleet.FleetConfig`
population (same seed, same shards, same homes) streams through both
fidelities via :func:`~repro.experiments.fleet.run_fleet`'s folding
engine; per testbed, the two runs are then compared on

* **decision-latency distributions** — a two-sample Kolmogorov-Smirnov
  statistic computed directly from the mergeable quantile sketches'
  bucket CDFs (:func:`~repro.obs.metrics.sketch_ks_distance`), against
  the large-sample 1% critical value;
* **outcome counts** — Pearson chi-squared (df=1, 1% critical value
  6.635) on the 2x2 contingency tables for false blocks vs resolved
  legitimate commands, blocked vs delivered attacks, and timeouts vs
  decisions.

A testbed *passes* when every statistic sits below its critical value.
A failing cell is a finding, not an error: it localizes exactly which
marginal of the reduced-order model has drifted from packet-level
behaviour (see EXPERIMENTS.md for interpretation guidance).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.reporting import fmt_percent, render_table
from repro.errors import WorkloadError
from repro.experiments.fleet import FleetConfig, FleetResult, run_fleet
from repro.experiments.synthesis import PopulationModel
from repro.obs.metrics import ks_critical_value, sketch_ks_distance

ALPHA = 0.01
# Chi-squared critical value, df=1, p=0.01 (no scipy dependency).
CHI2_CRITICAL_DF1 = 6.6348966010212145

# Full fidelity simulates whole scenarios per home: keep chunks small
# so multi-worker runs stay load-balanced.
FULL_CHUNK_SIZE = 8


def chi2_2x2(a_yes: int, a_no: int, b_yes: int, b_no: int) -> float:
    """Pearson chi-squared for a 2x2 contingency table (df=1).

    Rows are the two populations (fast, full); columns the outcome
    split (e.g. blocked / not blocked).  Degenerate tables — an empty
    margin, where the test is undefined — return 0.0: no evidence of
    difference.
    """
    row_a = a_yes + a_no
    row_b = b_yes + b_no
    col_yes = a_yes + b_yes
    col_no = a_no + b_no
    total = row_a + row_b
    if 0 in (row_a, row_b, col_yes, col_no):
        return 0.0
    numerator = total * float(a_yes * b_no - a_no * b_yes) ** 2
    return numerator / (float(row_a) * row_b * col_yes * col_no)


@dataclass
class TestbedComparison:
    """Fast-vs-full statistics for one testbed's sub-population."""

    testbed: str
    homes: int
    fast_counts: Dict[str, int]
    full_counts: Dict[str, int]
    ks_statistic: float
    ks_critical: float
    chi2_false_block: float
    chi2_blocked: float
    chi2_timeout: float

    @property
    def passed(self) -> bool:
        """Every statistic below its 1% critical value."""
        checks = [
            self.chi2_false_block <= CHI2_CRITICAL_DF1,
            self.chi2_blocked <= CHI2_CRITICAL_DF1,
            self.chi2_timeout <= CHI2_CRITICAL_DF1,
        ]
        # NaN KS (no resolved latencies on a side) is inconclusive,
        # not a failure; comparing nothing to nothing proves nothing.
        if self.ks_statistic == self.ks_statistic:
            checks.append(self.ks_statistic <= self.ks_critical)
        return all(checks)


def _compare_testbed(name: str, fast: FleetResult,
                     full: FleetResult) -> TestbedComparison:
    fast_counts = fast.accumulator.per_testbed[name]
    full_counts = full.accumulator.per_testbed[name]
    if fast_counts["homes"] != full_counts["homes"]:
        raise WorkloadError(
            f"population mismatch on {name!r}: fast saw "
            f"{fast_counts['homes']} homes, full {full_counts['homes']} — "
            f"the two runs must share one population")
    fast_sketch = fast.accumulator.sketches[name]
    full_sketch = full.accumulator.sketches[name]
    return TestbedComparison(
        testbed=name,
        homes=fast_counts["homes"],
        fast_counts=dict(fast_counts),
        full_counts=dict(full_counts),
        ks_statistic=sketch_ks_distance(fast_sketch, full_sketch),
        ks_critical=ks_critical_value(fast_sketch.count, full_sketch.count,
                                      alpha=ALPHA),
        chi2_false_block=chi2_2x2(
            fast_counts["false_blocks"],
            fast_counts["legit_commands"] - fast_counts["false_blocks"],
            full_counts["false_blocks"],
            full_counts["legit_commands"] - full_counts["false_blocks"],
        ),
        chi2_blocked=chi2_2x2(
            fast_counts["attacks_blocked"],
            fast_counts["attacks"] - fast_counts["attacks_blocked"],
            full_counts["attacks_blocked"],
            full_counts["attacks"] - full_counts["attacks_blocked"],
        ),
        chi2_timeout=chi2_2x2(
            fast_counts["timeouts"],
            fast_counts["decisions"] - fast_counts["timeouts"],
            full_counts["timeouts"],
            full_counts["decisions"] - full_counts["timeouts"],
        ),
    )


@dataclass
class FleetValidationResult:
    """Both fidelity runs plus the per-testbed comparison."""

    homes: int
    seed: int
    fast: FleetResult
    full: FleetResult
    comparisons: List[TestbedComparison] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def all_passed(self) -> bool:
        return all(comparison.passed for comparison in self.comparisons)

    def render(self) -> str:
        """The validation table plus both fidelities' fleet tables."""
        def rate(counts: Dict[str, int], num: str, den: str) -> float:
            d = counts[den]
            return counts[num] / d if d else float("nan")

        rows = []
        for c in self.comparisons:
            ks_cell = ("—" if c.ks_statistic != c.ks_statistic else
                       f"{c.ks_statistic:.3f}/{c.ks_critical:.3f}")
            rows.append([
                c.testbed,
                c.homes,
                fmt_percent(rate(c.fast_counts, "false_blocks", "legit_commands")),
                fmt_percent(rate(c.full_counts, "false_blocks", "legit_commands")),
                f"{c.chi2_false_block:.2f}",
                fmt_percent(rate(c.fast_counts, "attacks_blocked", "attacks")),
                fmt_percent(rate(c.full_counts, "attacks_blocked", "attacks")),
                f"{c.chi2_blocked:.2f}",
                f"{c.chi2_timeout:.2f}",
                ks_cell,
                "pass" if c.passed else "FAIL",
            ])
        table = render_table(
            f"Fleet fidelity cross-validation: {self.homes} homes, "
            f"seed {self.seed} (fast vs full)",
            ["testbed", "homes", "fb fast", "fb full", "χ² fb",
             "blk fast", "blk full", "χ² blk", "χ² t/o", "KS D/crit",
             "verdict"],
            rows,
        )
        notes = [
            table,
            f"χ² critical (df=1, α={ALPHA:.0%}): {CHI2_CRITICAL_DF1:.2f}; "
            "KS over resolved decision-latency sketches, large-sample "
            f"α={ALPHA:.0%} critical shown per testbed.  A FAIL names the "
            "marginal where the reduced-order model departs from the "
            "packet-level simulation at this population size.",
            "",
            self.fast.render(),
            "",
            self.full.render(),
        ]
        return "\n".join(notes)

    def render_throughput(self) -> str:
        return (f"validated {self.homes} homes in {self.elapsed:.1f}s — "
                f"fast: {self.fast.render_throughput()}; "
                f"full: {self.full.render_throughput()}")


def run_fleet_validate(
    homes: int = 120,
    shards: int = 4,
    seed: int = 0,
    workers: int = 1,
    population: Optional[PopulationModel] = None,
    full_build: str = "pooled",
    progress=None,
) -> FleetValidationResult:
    """Stream one population through both fidelities and compare.

    ``full_build`` selects the full-fidelity world strategy ("pooled"
    warm-start templates or "cold" per-home rebuilds — byte-identical
    outcomes, so the statistics never depend on the choice).
    """
    population = population if population is not None else PopulationModel()
    start = time.perf_counter()
    fast = run_fleet(
        FleetConfig(homes=homes, shards=shards, seed=seed,
                    fidelity="fast", population=population),
        workers=workers, progress=progress,
    )
    full = run_fleet(
        FleetConfig(homes=homes, shards=shards, seed=seed,
                    chunk_size=FULL_CHUNK_SIZE, fidelity="full",
                    full_build=full_build, population=population),
        workers=workers, progress=progress,
    )
    names = sorted(fast.accumulator.per_testbed)
    if names != sorted(full.accumulator.per_testbed):
        raise WorkloadError(
            f"population mismatch: fast covered {names}, full covered "
            f"{sorted(full.accumulator.per_testbed)}")
    comparisons = [_compare_testbed(name, fast, full) for name in names]
    return FleetValidationResult(
        homes=homes,
        seed=seed,
        fast=fast,
        full=full,
        comparisons=comparisons,
        elapsed=time.perf_counter() - start,
    )
