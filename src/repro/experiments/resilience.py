"""Accuracy and availability under injected faults (``repro resilience``).

The paper evaluates VoiceGuard on a healthy chain: every push arrives,
every scan completes, every report lands.  This experiment asks what
the "practical" claim is worth when they don't — the home-network
conditions of the BarrierBypass / Alexa-case-study threat models, where
pushes drop and phones go unreachable.

The sweep runs the Tables II-IV workload under a grid of *fault rates*
(push loss, with proportional report loss, scan failures and sensor
dropout riding along) crossed with *retry policies* (single attempt,
exponential-backoff retries, retries plus the degraded proximity
cache), in each of the paper's three testbeds.  Every cell reports the
blocked-attack rate, the false-block rate, decision availability, and
p50/p95 decision latency.  Cells are independent seeded runs, so the
sweep fans out over the parallel engine and reproduces the same table
at the same seed, run after run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import ResilienceSummary, summarize_resilience
from repro.analysis.reporting import fmt_percent, render_table
from repro.core.config import VoiceGuardConfig
from repro.errors import WorkloadError
from repro.experiments.parallel import ExperimentEngine, ExperimentTask, derive_seed
from repro.experiments.runner import score_interactions
from repro.experiments.scenarios import build_scenario
from repro.experiments.workload import SevenDayWorkload
from repro.faults.plan import FaultPlan, OfflineWindow

TESTBEDS = ("house", "apartment", "office")

# Swept push-loss rates; the secondary channels scale off the same knob
# so one axis degrades the whole chain coherently.
FAULT_RATES = (0.0, 0.1, 0.3)

# name -> (push_retries, proximity_cache_ttl seconds).  The cache TTL
# must cover at least one inter-episode gap (~1-2 min) to ever matter;
# 180 s keeps it short enough that "stale proximity" still means
# "minutes ago", not "this morning".
POLICIES: Dict[str, Tuple[int, float]] = {
    "single": (0, 0.0),
    "retry2": (2, 0.0),
    "retry2+cache": (2, 180.0),
}

# Devices per testbed (matches the scenario builders: two phone owners
# in the homes, one watch wearer in the office).
_TESTBED_DEVICES = {
    "house": ("phone1", "phone2"),
    "apartment": ("phone1", "phone2"),
    "office": ("watch1",),
}


def build_fault_plan(testbed: str, push_loss: float, seed: int) -> Optional[FaultPlan]:
    """The per-cell fault plan for one swept push-loss rate.

    ``push_loss == 0`` returns ``None`` — the genuinely fault-free
    baseline, taking the exact pre-fault code path.  Positive rates
    degrade every channel proportionally and schedule one offline
    window per device (staggered, so multi-device homes keep partial
    coverage while the office's lone watch goes fully dark).
    """
    if push_loss <= 0.0:
        return None
    devices = _TESTBED_DEVICES[testbed]
    # The scaled workload runs a few thousand simulated seconds; windows
    # sit well inside even the smallest run.
    windows = tuple(
        OfflineWindow(device=name, start=600.0 + 500.0 * index,
                      end=900.0 + 500.0 * index)
        for index, name in enumerate(devices)
    )
    return FaultPlan(
        seed=seed,
        push_loss=push_loss,
        push_extra_delay=0.4 * push_loss,
        report_loss=0.5 * push_loss,
        scan_failure=0.25 * push_loss,
        sensor_dropout=0.5 * push_loss,
        trace_dropout=0.25 * push_loss,
        offline_windows=windows,
    )


@dataclass
class ResilienceCell:
    """One (testbed, fault rate, policy) run, scored."""

    testbed: str
    push_loss: float
    policy: str
    blocked_attack_rate: float
    false_block_rate: float
    attacks_total: int
    legit_total: int
    summary: ResilienceSummary
    faults_injected: int

    def row(self) -> List[object]:
        s = self.summary
        return [
            self.testbed,
            f"{self.push_loss:.0%}",
            self.policy,
            fmt_percent(self.blocked_attack_rate),
            fmt_percent(self.false_block_rate),
            fmt_percent(s.availability),
            f"{s.latency_p50:.2f}s" if s.latency_p50 == s.latency_p50 else "—",
            f"{s.latency_p95:.2f}s" if s.latency_p95 == s.latency_p95 else "—",
            s.timeouts,
            s.retries,
            s.degraded_grants,
        ]


def run_resilience_cell(
    testbed: str,
    push_loss: float,
    policy: str,
    seed: int = 0,
    legit_count: int = 24,
    malicious_count: int = 18,
    speaker_kind: str = "echo",
) -> ResilienceCell:
    """Run one cell of the resilience sweep end to end."""
    if policy not in POLICIES:
        raise WorkloadError(f"unknown retry policy {policy!r}")
    push_retries, cache_ttl = POLICIES[policy]
    config = VoiceGuardConfig(
        push_retries=push_retries,
        retry_base=1.2,
        retry_cap=4.0,
        proximity_cache_ttl=cache_ttl,
    )
    # The plan seed deliberately excludes the policy: every policy in a
    # column faces the same fault realization, so the comparison is
    # apples-to-apples.
    plan = build_fault_plan(
        testbed, push_loss, seed=derive_seed(seed, "faults", testbed, push_loss)
    )
    scenario = build_scenario(
        testbed,
        speaker_kind,
        deployment=0,
        seed=seed,
        owner_count=1 if testbed == "office" else 2,
        config=config,
        fault_plan=plan,
    )
    workload = SevenDayWorkload(scenario)
    workload.run(legit_count, malicious_count)
    records = scenario.speaker.settle_all()
    matrix = score_interactions(records)
    guard = scenario.guard
    summary = summarize_resilience(
        guard.command_events(), guard.log.resilience_counts()
    )
    faults = scenario.env.faults
    return ResilienceCell(
        testbed=testbed,
        push_loss=push_loss,
        policy=policy,
        blocked_attack_rate=matrix.recall,
        false_block_rate=(
            matrix.false_positive / matrix.actual_negative
            if matrix.actual_negative else float("nan")
        ),
        attacks_total=matrix.actual_positive,
        legit_total=matrix.actual_negative,
        summary=summary,
        faults_injected=faults.total_injected if faults is not None else 0,
    )


@dataclass
class ResilienceResult:
    """The full sweep, in submission order."""

    cells: List[ResilienceCell]
    seed: int

    def render(self) -> str:
        table = render_table(
            "Resilience sweep: fault rate x retry policy (RSSI method, loc1)",
            ["testbed", "push loss", "policy", "blocked attacks", "false blocks",
             "availability", "p50", "p95", "timeouts", "retries", "degraded"],
            [cell.row() for cell in self.cells],
        )
        injected = sum(cell.faults_injected for cell in self.cells)
        notes = [
            table,
            f"seed {self.seed}; {injected} faults injected across "
            f"{len(self.cells)} cells",
            "availability = decisions resolved with live or cached evidence "
            "(not a bare timeout); degraded = grants from the proximity cache.",
        ]
        return "\n".join(notes)

    def availability_by_policy(self, push_loss: float) -> Dict[str, float]:
        """Pooled availability per policy at one fault rate (across
        testbeds) — the headline retry-vs-single comparison."""
        pooled: Dict[str, List[int]] = {}
        for cell in self.cells:
            if cell.push_loss != push_loss:
                continue
            decided, timeouts = pooled.setdefault(cell.policy, [0, 0])
            pooled[cell.policy][0] = decided + cell.summary.decisions
            pooled[cell.policy][1] = timeouts + cell.summary.timeouts
        return {
            policy: (decided - timeouts) / decided if decided else float("nan")
            for policy, (decided, timeouts) in pooled.items()
        }


def run_resilience(
    seed: int = 0,
    scale: float = 0.25,
    testbeds: Sequence[str] = TESTBEDS,
    fault_rates: Sequence[float] = FAULT_RATES,
    policies: Sequence[str] = tuple(POLICIES),
    workers: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    progress=None,
) -> ResilienceResult:
    """Run the full sweep through the parallel engine.

    ``scale`` shrinks the paper-sized command counts per cell, exactly
    as the table experiments do.  Cells are pure functions of their
    arguments, so the sweep caches and parallelizes like every other
    artifact.
    """
    legit_count = max(6, int(round(90 * scale)))
    malicious_count = max(5, int(round(65 * scale)))
    tasks = []
    for testbed in testbeds:
        if testbed not in TESTBEDS:
            raise WorkloadError(f"unknown testbed {testbed!r}")
        for rate in fault_rates:
            for policy in policies:
                tasks.append(ExperimentTask(
                    fn=run_resilience_cell,
                    args=(testbed, float(rate), policy),
                    kwargs=dict(
                        seed=derive_seed(seed, "resilience", testbed),
                        legit_count=legit_count,
                        malicious_count=malicious_count,
                    ),
                    label=f"resilience/{testbed}/loss{int(round(rate * 100))}/{policy}",
                ))
    engine = ExperimentEngine(workers=workers, use_cache=use_cache,
                              cache_dir=cache_dir, progress=progress)
    cells = engine.run(tasks)
    return ResilienceResult(cells=list(cells), seed=seed)
