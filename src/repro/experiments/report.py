"""One-call reproduction report.

``generate_report`` runs every experiment (optionally at reduced scale)
and concatenates the rendered tables and figures into a single text
report — the programmatic counterpart of running the whole benchmark
suite.  Used by ``examples/full_reproduction.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.experiments.ablation import (
    run_defense_matrix,
    run_firewall_comparison,
    run_floor_ablation,
    run_signature_ablation,
)
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig6 import corpus_report, run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig10 import run_fig10
from repro.experiments.hold_endurance import run_hold_endurance
from repro.experiments.rssi_maps import run_rssi_map
from repro.experiments.rssi_tables import run_rssi_table
from repro.experiments.table1 import run_table1


@dataclass
class ReportSection:
    name: str
    text: str
    elapsed: float


@dataclass
class ReproductionReport:
    sections: List[ReportSection] = field(default_factory=list)

    def render(self) -> str:
        """Render as paper-style text."""
        parts = ["VoiceGuard reproduction report", "=" * 31, ""]
        for section in self.sections:
            parts.append(f"--- {section.name} ({section.elapsed:.1f}s) ---")
            parts.append(section.text)
            parts.append("")
        return "\n".join(parts)

    def section(self, name: str) -> ReportSection:
        for section in self.sections:
            if section.name == name:
                return section
        raise KeyError(name)


def _timed(report: ReproductionReport, name: str, producer: Callable[[], str],
           progress: Optional[Callable[[str], None]]) -> None:
    if progress:
        progress(f"running {name}...")
    start = time.perf_counter()
    text = producer()
    report.sections.append(ReportSection(name, text, time.perf_counter() - start))


def generate_report(
    scale: float = 0.3,
    seed: int = 3,
    progress: Optional[Callable[[str], None]] = print,
) -> ReproductionReport:
    """Regenerate every paper table and figure.

    ``scale`` shrinks the workload sizes of the 7-day tables (1.0 =
    paper scale, ~30 s of wall-clock; 0.3 ≈ a third of the commands in
    a few seconds).
    """
    report = ReproductionReport()
    _timed(report, "corpus statistics (§V-A2)", corpus_report, progress)
    _timed(report, "Table I (traffic recognition)",
           lambda: run_table1(seed=seed).render(), progress)
    for testbed, table in (("house", "Table II"), ("apartment", "Table III"),
                           ("office", "Table IV")):
        _timed(report, f"{table} ({testbed})",
               lambda tb=testbed: run_rssi_table(tb, seed=seed, scale=scale)
               .render_with_paper(), progress)
    _timed(report, "Figure 3 (interaction spikes)",
           lambda: run_fig3(seed=seed).render(), progress)
    _timed(report, "Figure 4 (traffic handler cases)",
           lambda: run_fig4(seed=seed).render(), progress)
    _timed(report, "Figure 6 (delay cases)",
           lambda: run_fig6("echo", invocations=max(20, int(100 * scale)),
                            seed=seed).render(), progress)
    _timed(report, "Figure 7 (query latency)",
           lambda: "\n".join(
               run_fig7(kind, invocations=max(30, int(100 * scale)), seed=seed).render()
               for kind in ("echo", "google")), progress)
    _timed(report, "Figures 8-9 (RSSI maps)",
           lambda: "\n\n".join(
               run_rssi_map(tb, dep, seed=seed).render()
               for tb in ("house", "apartment", "office") for dep in (0, 1)),
           progress)
    _timed(report, "Figure 10 (floor traces)",
           lambda: run_fig10("echo", seed=seed,
                             test_reps=max(5, int(15 * scale))).render(), progress)
    trials = max(3, int(8 * scale))
    _timed(report, "ablation: defense matrix",
           lambda: run_defense_matrix(seed=seed, trials_per_attack=trials,
                                      legit_trials=trials).render(), progress)
    _timed(report, "ablation: floor tracking",
           lambda: run_floor_ablation(seed=seed, legit=max(15, int(50 * scale)),
                                      malicious=max(10, int(40 * scale))).render(),
           progress)
    _timed(report, "ablation: AVS signatures",
           lambda: run_signature_ablation(seed=seed,
                                          commands=max(8, int(25 * scale))).render(),
           progress)
    _timed(report, "ablation: firewall comparison",
           lambda: run_firewall_comparison(seed=seed,
                                           commands=max(10, int(25 * scale))).render(),
           progress)
    _timed(report, "ablation: hold endurance",
           lambda: run_hold_endurance(holds=(2.0, 10.0, 30.0), seed=seed).render(),
           progress)
    return report
