"""One-call reproduction report.

``generate_report`` runs every experiment (optionally at reduced scale)
and concatenates the rendered tables and figures into a single text
report — the programmatic counterpart of running the whole benchmark
suite.  Used by ``examples/full_reproduction.py``.

Sections are independent of one another, so the report fans them out
through the :mod:`repro.experiments.parallel` engine: ``workers=1``
(the default) runs them serially in the order below, ``workers=N``
regenerates them concurrently with identical section text (only the
per-section wall-clock annotations differ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.parallel import ExperimentEngine, ExperimentTask, TaskTiming


@dataclass
class ReportSection:
    name: str
    text: str
    elapsed: float


@dataclass
class ReproductionReport:
    sections: List[ReportSection] = field(default_factory=list)
    timings: List[TaskTiming] = field(default_factory=list)

    def render(self) -> str:
        """Render as paper-style text."""
        parts = ["VoiceGuard reproduction report", "=" * 31, ""]
        for section in self.sections:
            parts.append(f"--- {section.name} ({section.elapsed:.1f}s) ---")
            parts.append(section.text)
            parts.append("")
        return "\n".join(parts)

    def section(self, name: str) -> ReportSection:
        for section in self.sections:
            if section.name == name:
                return section
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Section producers — module-level so the pool can pickle them by name.
# Each returns the section's rendered text.
# ---------------------------------------------------------------------------

def _section_corpus() -> str:
    from repro.experiments.fig6 import corpus_report

    return corpus_report()


def _section_table1(seed: int) -> str:
    from repro.experiments.table1 import run_table1

    return run_table1(seed=seed).render()


def _section_rssi_table(testbed: str, seed: int, scale: float) -> str:
    from repro.experiments.rssi_tables import run_rssi_table

    return run_rssi_table(testbed, seed=seed, scale=scale).render_with_paper()


def _section_fig3(seed: int) -> str:
    from repro.experiments.fig3 import run_fig3

    return run_fig3(seed=seed).render()


def _section_fig4(seed: int) -> str:
    from repro.experiments.fig4 import run_fig4

    return run_fig4(seed=seed).render()


def _section_fig6(seed: int, scale: float) -> str:
    from repro.experiments.fig6 import run_fig6

    return run_fig6("echo", invocations=max(20, int(100 * scale)),
                    seed=seed).render()


def _section_fig7(seed: int, scale: float) -> str:
    from repro.experiments.fig7 import run_fig7

    return "\n".join(
        run_fig7(kind, invocations=max(30, int(100 * scale)), seed=seed).render()
        for kind in ("echo", "google"))


def _section_rssi_maps(seed: int) -> str:
    from repro.experiments.rssi_maps import run_rssi_map

    return "\n\n".join(
        run_rssi_map(tb, dep, seed=seed).render()
        for tb in ("house", "apartment", "office") for dep in (0, 1))


def _section_fig10(seed: int, scale: float) -> str:
    from repro.experiments.fig10 import run_fig10

    return run_fig10("echo", seed=seed,
                     test_reps=max(5, int(15 * scale))).render()


def _section_defense_matrix(seed: int, trials: int) -> str:
    from repro.experiments.ablation import run_defense_matrix

    return run_defense_matrix(seed=seed, trials_per_attack=trials,
                              legit_trials=trials).render()


def _section_floor_ablation(seed: int, scale: float) -> str:
    from repro.experiments.ablation import run_floor_ablation

    return run_floor_ablation(seed=seed, legit=max(15, int(50 * scale)),
                              malicious=max(10, int(40 * scale))).render()


def _section_signature_ablation(seed: int, scale: float) -> str:
    from repro.experiments.ablation import run_signature_ablation

    return run_signature_ablation(seed=seed,
                                  commands=max(8, int(25 * scale))).render()


def _section_firewall_comparison(seed: int, scale: float) -> str:
    from repro.experiments.ablation import run_firewall_comparison

    return run_firewall_comparison(seed=seed,
                                   commands=max(10, int(25 * scale))).render()


def _section_hold_endurance(seed: int) -> str:
    from repro.experiments.hold_endurance import run_hold_endurance

    return run_hold_endurance(holds=(2.0, 10.0, 30.0), seed=seed).render()


SectionSpec = Tuple[str, Callable[..., str], Dict[str, object]]


def report_section_specs(scale: float, seed: int) -> List[SectionSpec]:
    """Every report section as (name, producer, kwargs), in print order."""
    trials = max(3, int(8 * scale))
    specs: List[SectionSpec] = [
        ("corpus statistics (§V-A2)", _section_corpus, {}),
        ("Table I (traffic recognition)", _section_table1, dict(seed=seed)),
    ]
    for testbed, table in (("house", "Table II"), ("apartment", "Table III"),
                           ("office", "Table IV")):
        specs.append((f"{table} ({testbed})", _section_rssi_table,
                      dict(testbed=testbed, seed=seed, scale=scale)))
    specs.extend([
        ("Figure 3 (interaction spikes)", _section_fig3, dict(seed=seed)),
        ("Figure 4 (traffic handler cases)", _section_fig4, dict(seed=seed)),
        ("Figure 6 (delay cases)", _section_fig6, dict(seed=seed, scale=scale)),
        ("Figure 7 (query latency)", _section_fig7, dict(seed=seed, scale=scale)),
        ("Figures 8-9 (RSSI maps)", _section_rssi_maps, dict(seed=seed)),
        ("Figure 10 (floor traces)", _section_fig10, dict(seed=seed, scale=scale)),
        ("ablation: defense matrix", _section_defense_matrix,
         dict(seed=seed, trials=trials)),
        ("ablation: floor tracking", _section_floor_ablation,
         dict(seed=seed, scale=scale)),
        ("ablation: AVS signatures", _section_signature_ablation,
         dict(seed=seed, scale=scale)),
        ("ablation: firewall comparison", _section_firewall_comparison,
         dict(seed=seed, scale=scale)),
        ("ablation: hold endurance", _section_hold_endurance, dict(seed=seed)),
    ])
    return specs


def generate_report(
    scale: float = 0.3,
    seed: int = 3,
    progress: Optional[Callable[[str], None]] = print,
    workers: int = 1,
    use_cache: bool = False,
    cache_dir=None,
) -> ReproductionReport:
    """Regenerate every paper table and figure.

    ``scale`` shrinks the workload sizes of the 7-day tables (1.0 =
    paper scale, ~30 s of wall-clock; 0.3 ≈ a third of the commands in
    a few seconds).  ``workers`` regenerates sections on a process
    pool; the section texts are identical to a serial run.
    """
    specs = report_section_specs(scale, seed)
    tasks = [ExperimentTask(fn=fn, kwargs=kwargs, label=name)
             for name, fn, kwargs in specs]
    engine = ExperimentEngine(workers=workers, use_cache=use_cache,
                              cache_dir=cache_dir, progress=progress)
    texts = engine.run(tasks)

    elapsed_by_label = {timing.label: timing.elapsed for timing in engine.timings}
    report = ReproductionReport(timings=list(engine.timings))
    for (name, _, _), text in zip(specs, texts):
        report.sections.append(
            ReportSection(name, text, elapsed_by_label.get(name, 0.0)))
    return report
