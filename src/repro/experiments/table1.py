"""Table I: traffic pattern recognition accuracy.

The paper activates the Echo Dot 134 times with randomly generated
voice commands; every spike window the recognizer opens is scored
against ground truth (command-phase spikes are positive, response-phase
and other spikes negative).  Reported: accuracy 99.29 %, precision
100 %, recall 98.51 % (132/134 commands recognized; no response spike
mistaken for a command).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.metrics import ConfusionMatrix
from repro.audio.speech import full_utterance_duration
from repro.core.events import CommandEvent, TrafficClass
from repro.experiments.scenarios import build_scenario
from repro.speakers.base import InteractionRecord

PAPER_INVOCATIONS = 134
PAPER_ACCURACY = 0.9929
PAPER_PRECISION = 1.0
PAPER_RECALL = 0.9851


@dataclass
class Table1Result:
    """Scored recognition windows."""

    matrix: ConfusionMatrix
    invocations: int
    windows_scored: int
    missed_variants: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Render as paper-style text."""
        header = (
            f"Table I reproduction: {self.invocations} Echo Dot invocations, "
            f"{self.windows_scored} recognizer triggers\n"
        )
        return header + self.matrix.render()


def _window_is_command_truth(event: CommandEvent, records: List[InteractionRecord]) -> bool:
    """Ground truth: did this window open during a command phase?"""
    for record in records:
        if record.started_at - 0.2 <= event.opened_at <= record.speech_ends_at + 0.5:
            return True
    return False


def run_table1(
    seed: int = 1,
    invocations: int = PAPER_INVOCATIONS,
    anomalous_rate: float = 0.015,
) -> Table1Result:
    """Reproduce Table I.

    ``anomalous_rate`` is the chance a command spike carries neither
    marker nor fixed pattern; the paper's random-command experiment
    measured about 1.5 % (2 of 134).
    """
    scenario = build_scenario(
        "house",
        "echo",
        deployment=0,
        seed=seed,
        owner_count=1,
        anomalous_rate=anomalous_rate,
        with_floor_tracking=False,
    )
    env = scenario.env
    owner = scenario.owners[0]
    # The owner stays near the speaker so every command is released and
    # generates its response spikes (recognition is what is under test).
    owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))
    workload_start = env.sim.now
    rng = env.rng.stream("table1.workload")

    for _ in range(invocations):
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        utterance = owner.speak(command.text, duration)
        env.play_utterance(utterance, owner.device_position())
        env.sim.run_for(duration + 16.0 + float(rng.uniform(0.0, 4.0)))
    env.sim.run_for(30.0)

    records = scenario.speaker.settle_all()
    matrix = ConfusionMatrix()
    missed: List[str] = []
    scored = 0
    for event in scenario.guard.log.events:
        if event.opened_at < workload_start:
            continue
        scored += 1
        truth = _window_is_command_truth(event, records)
        predicted = event.classification is TrafficClass.COMMAND
        matrix.record(actual_positive=truth, predicted_positive=predicted)
        if truth and not predicted:
            nearest = min(records, key=lambda r: abs(r.started_at - event.opened_at))
            missed.append(str(nearest.meta.get("traffic_variant")))
    return Table1Result(
        matrix=matrix,
        invocations=invocations,
        windows_scored=scored,
        missed_variants=missed,
    )
