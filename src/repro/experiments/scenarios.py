"""Scenario builders: a fully wired testbed + speaker + guard world.

A :class:`Scenario` is everything one experiment run needs: the
physical environment, the home network with clouds and DNS, the smart
speaker under test, the owners with their calibrated devices, and the
installed VoiceGuard.  Builders take care of the setup the paper
describes: threshold calibration walks, device registration, speaker
boot, and (in the house) motion-sensor installation and trace-classifier
training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.audio.commands import CommandCorpus, alexa_corpus, google_corpus
from repro.core.config import VoiceGuardConfig
from repro.core.floor import TraceClassifier, TraceFeatures
from repro.core.guard import VoiceGuard
from repro.core.recognition import SpeakerProfile
from repro.core.threshold import CalibrationResult, ThresholdCalibrator
from repro.errors import WorkloadError
from repro.faults.plan import FaultPlan
from repro.home.devices import MobileDevice, MotionSensor
from repro.home.environment import HomeEnvironment
from repro.home.person import Person
from repro.net.addresses import IPv4Address, endpoint
from repro.net.dns import DnsRecord, DnsServer
from repro.net.link import Network
from repro.radio.testbeds import Testbed, testbed_by_name
from repro.speakers import signatures as sig
from repro.speakers.base import SmartSpeaker
from repro.speakers.cloud import AvsCloud, GoogleCloud, MiscCloud
from repro.speakers.echo_dot import EchoDot
from repro.speakers.google_home import GoogleHomeMini
from repro.speakers.interaction import EchoTrafficModel, GoogleTrafficModel

GUARD_IP = "192.168.1.50"
ECHO_IP = "192.168.1.200"  # the IP the paper shows in Figure 4
GOOGLE_IP = "192.168.1.201"
# Additional speakers (multi-speaker homes / loadtest) get IPs from here up.
EXTRA_SPEAKER_IP_BASE = 210
DNS_IP = "192.168.1.1"
AVS_IPS = ("54.239.28.85", "54.239.29.12", "52.94.236.48")
GOOGLE_CLOUD_IP = "142.250.65.68"
MISC_CLOUD_BASE = "52.46.130.{}"
AVS_ROTATE_PROBABILITY = 0.6

SETTLE_TIME = 6.0  # sim-seconds for boot traffic to complete


@dataclass
class Scenario:
    """A wired experiment world."""

    name: str
    env: HomeEnvironment
    network: Network
    dns_server: DnsServer
    guard: VoiceGuard
    speaker: SmartSpeaker
    speaker_kind: str  # "echo" | "google"
    corpus: CommandCorpus
    owners: List[Person] = field(default_factory=list)
    devices: List[MobileDevice] = field(default_factory=list)
    calibrations: Dict[str, CalibrationResult] = field(default_factory=dict)
    avs_cloud: Optional[AvsCloud] = None
    google_cloud: Optional[GoogleCloud] = None
    avs_record: Optional[DnsRecord] = None
    motion_sensor: Optional[MotionSensor] = None
    trace_classifier: Optional[TraceClassifier] = None
    extra_speakers: List[SmartSpeaker] = field(default_factory=list)

    @property
    def all_speakers(self) -> List[SmartSpeaker]:
        """The primary speaker plus every extra one, in install order."""
        return [self.speaker] + list(self.extra_speakers)

    @property
    def sim(self):
        return self.env.sim

    @property
    def rng_hub(self):
        return self.env.rng

    def run_for(self, duration: float) -> None:
        self.env.sim.run_for(duration)

    def settle(self) -> None:
        """Give boot traffic time to finish."""
        self.env.sim.run_for(SETTLE_TIME)


def build_scenario(
    testbed_name: str,
    speaker_kind: str = "echo",
    deployment: int = 0,
    seed: int = 0,
    owner_count: int = 1,
    device_kind: Optional[str] = None,  # "smartphone" | "smartwatch"
    config: Optional[VoiceGuardConfig] = None,
    anomalous_rate: float = 0.004,
    calibrate: bool = True,
    with_floor_tracking: Optional[bool] = None,
    misc_domains: int = 2,
    with_guard: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    tracing: bool = False,
    testbed: Optional[Testbed] = None,
    memo_bucket: Optional[tuple] = None,
    with_fault_injector: bool = False,
) -> Scenario:
    """Build a fully wired scenario.

    Defaults mirror the paper's 7-day experiments: scripted everyday
    commands (near-zero anomalous traffic), calibrated thresholds, and
    floor tracking wherever the testbed has stairs.  ``fault_plan``
    arms the environment's fault injector (see :mod:`repro.faults`);
    without one, every injection hook is a no-op.  ``tracing`` turns on
    span collection (``env.obs.tracer``); it never changes a run.
    ``testbed`` substitutes a pre-built (e.g. geometrically jittered)
    testbed for the named one; ``testbed_name`` still labels the run.
    ``memo_bucket`` (a hashable key covering geometry/deployment/seed/
    device mix) lets repeat builds of the same world bucket replay
    memoized calibration walks and trace-classifier training instead of
    re-simulating them — the scenario pool's warm-build path; leave it
    ``None`` to always recompute.  ``with_fault_injector`` forces an
    unarmed fault injector to exist even without a plan, so a pooled
    world can be re-armed per home (byte-identical to having none).
    """
    if speaker_kind not in ("echo", "google"):
        raise WorkloadError(f"unknown speaker kind {speaker_kind!r}")
    if testbed is None:
        testbed = testbed_by_name(testbed_name)
    env = HomeEnvironment(testbed, deployment=deployment, seed=seed,
                          fault_plan=fault_plan, tracing=tracing,
                          with_fault_injector=with_fault_injector)
    network = Network(env.sim, env.rng)

    dns_server = DnsServer("router-dns", IPv4Address(DNS_IP))
    network.attach(dns_server)

    scenario = Scenario(
        name=f"{testbed_name}/{speaker_kind}/loc{deployment + 1}",
        env=env,
        network=network,
        dns_server=dns_server,
        guard=None,  # type: ignore[arg-type]  # set below
        speaker=None,  # type: ignore[arg-type]
        speaker_kind=speaker_kind,
        corpus=alexa_corpus() if speaker_kind == "echo" else google_corpus(),
    )

    # -- clouds ---------------------------------------------------------
    if speaker_kind == "echo":
        _build_echo_side(scenario, anomalous_rate, misc_domains)
    else:
        _build_google_side(scenario)

    # -- guard ----------------------------------------------------------
    if with_guard:
        guard = VoiceGuard(env, network, IPv4Address(GUARD_IP), config=config)
        scenario.guard = guard
        profile = SpeakerProfile.ECHO if speaker_kind == "echo" else SpeakerProfile.GOOGLE
        guard.protect(scenario.speaker, profile)
        # A trainable recognizer (config.recognizer != "signature") is
        # trained here, before any owner/boot traffic, from dedicated
        # ``recognition.train.*`` streams — with the default signature
        # matcher this branch never runs and the build is byte-identical
        # to a pre-recognizer guard.
        if guard.config.recognizer != "signature":
            _install_trained_recognizer(scenario, profile, memo_bucket)

    # -- owners and devices ------------------------------------------------
    speaker_room = testbed.speaker_room(deployment)
    watch = (device_kind or ("smartwatch" if testbed_name == "office" else "smartphone"))
    for index in range(owner_count):
        person = env.add_person(f"owner{index + 1}", speaker_room.center(height=0.0))
        if watch == "smartwatch":
            device = env.add_smartwatch(f"watch{index + 1}", person)
        else:
            device = env.add_smartphone(f"phone{index + 1}", person)
        scenario.owners.append(person)
        scenario.devices.append(device)

    # -- calibration + registration -----------------------------------------
    if calibrate:
        calibrator = ThresholdCalibrator(env, memo_bucket=memo_bucket)
        for device in scenario.devices:
            result = calibrator.calibrate(device, speaker_room)
            scenario.calibrations[device.name] = result
            if with_guard:
                scenario.guard.register_device(device, result.threshold)
    elif with_guard:
        for device in scenario.devices:
            scenario.guard.register_device(device, threshold=-8.0)

    # -- boot the speaker -----------------------------------------------------
    scenario.speaker.boot()
    scenario.settle()

    # -- floor tracking ----------------------------------------------------------
    wants_floor = (
        with_floor_tracking
        if with_floor_tracking is not None
        else testbed.stair_region is not None
    )
    if with_guard and wants_floor and testbed.stair_region is not None:
        classifier = train_trace_classifier(scenario, memo_bucket=memo_bucket)
        scenario.trace_classifier = classifier
        sensor = env.install_motion_sensor()
        scenario.motion_sensor = sensor
        scenario.guard.enable_floor_tracking(sensor, classifier)

    return scenario


def _install_trained_recognizer(scenario: Scenario, profile: SpeakerProfile,
                                memo_bucket: Optional[tuple]) -> None:
    """Train and install the configured window recognizer.

    Training is memoized per ``memo_bucket`` exactly like threshold
    calibration: a pooled warm build replays the stored recognizer and
    draws from no stream, which ``RngHub.reseed`` makes indistinguishable
    from a cold build.  Imports are lazy so the default signature path
    never loads numpy-heavy training code or the attacks layer.
    """
    from repro.core.recognizers import train_window_recognizer

    config = scenario.guard.config
    morpher = None
    if config.recognizer_train_morph is not None:
        from repro.attacks.morphing import create_morpher

        morpher = create_morpher(config.recognizer_train_morph)
    recognizer = train_window_recognizer(
        config.recognizer,
        scenario.speaker_kind,
        scenario.env.rng,
        train_per_class=config.recognizer_train_windows,
        morpher=morpher,
        memo_bucket=memo_bucket,
    )
    scenario.guard.set_window_recognizer(profile, recognizer)


# ---------------------------------------------------------------------------
# Speaker-specific wiring
# ---------------------------------------------------------------------------

class _SessionChurn:
    """Rotate the AVS DNS record after some session closes."""

    def __init__(self, rng, record: DnsRecord) -> None:
        self.rng = rng
        self.record = record

    def __call__(self, reason: str) -> None:
        if self.rng.random() < AVS_ROTATE_PROBABILITY:
            self.record.rotate()


def _build_echo_side(scenario: Scenario, anomalous_rate: float, misc_domains: int) -> None:
    env, network = scenario.env, scenario.network
    rng = env.rng.stream("cloud.avs")
    avs = AvsCloud("avs-cloud", IPv4Address(AVS_IPS[0]), rng)
    network.attach(avs)
    for ip in AVS_IPS[1:]:
        network.add_alias(avs, IPv4Address(ip))
    record = scenario.dns_server.add_record(
        sig.AVS_DOMAIN, [IPv4Address(ip) for ip in AVS_IPS]
    )
    scenario.avs_cloud = avs
    scenario.avs_record = record

    # Cloud-side IP churn: sessions often land on a different server.
    # A callable object (not a closure): the hook is permanent state on
    # the cloud, and deepcopy-based world snapshots must rebind its rng
    # and record references into the copied graph (a closure would be
    # copied as an atom still pointing at the template's).
    avs.on_session_closed = _SessionChurn(env.rng.stream("cloud.avs.rotate"), record)

    domains = list(sig.OTHER_AMAZON_SIGNATURES)[:misc_domains]
    for index, domain in enumerate(domains):
        misc = MiscCloud(f"misc-{index}", IPv4Address(MISC_CLOUD_BASE.format(10 + index)))
        network.attach(misc)
        scenario.dns_server.add_record(domain, [misc.ip])

    speaker = EchoDot(
        "echo-dot",
        IPv4Address(ECHO_IP),
        env,
        env.rng.stream("speaker.echo"),
        dns_server=endpoint(DNS_IP, 53),
        avs_directory=record.current,
        traffic_model=EchoTrafficModel(
            env.rng.stream("speaker.echo.traffic"), anomalous_rate=anomalous_rate
        ),
        misc_domains=domains,
    )
    network.attach(speaker)
    avs.on_execute = speaker.mark_executed
    scenario.speaker = speaker


def _build_google_side(scenario: Scenario) -> None:
    env, network = scenario.env, scenario.network
    cloud = GoogleCloud("google-cloud", IPv4Address(GOOGLE_CLOUD_IP),
                        env.rng.stream("cloud.google"))
    network.attach(cloud)
    scenario.dns_server.add_record(sig.GOOGLE_DOMAIN, [cloud.ip])
    scenario.google_cloud = cloud

    speaker = GoogleHomeMini(
        "google-home-mini",
        IPv4Address(GOOGLE_IP),
        env,
        env.rng.stream("speaker.google"),
        dns_server=endpoint(DNS_IP, 53),
        traffic_model=GoogleTrafficModel(env.rng.stream("speaker.google.traffic")),
    )
    network.attach(speaker)
    cloud.on_execute = speaker.mark_executed
    scenario.speaker = speaker


class _ExecuteDispatch:
    """Route a cloud's execute callback to whichever speaker owns the
    interaction.

    One AVS cloud serves every Echo Dot in the home, but interaction
    records live on the speaker that heard the utterance (ids are
    process-global, so at most one speaker knows each id and the rest
    no-op).  A callable object, not a closure: the hook is permanent
    cloud state, and deepcopy-based world snapshots must rebind the
    speaker references into the copied graph.
    """

    def __init__(self, speakers: List[SmartSpeaker]) -> None:
        self.speakers = speakers

    def __call__(self, interaction_id: int) -> None:
        for speaker in self.speakers:
            speaker.mark_executed(interaction_id)


def add_echo_speaker(scenario: Scenario, name: Optional[str] = None,
                     ip: Optional[str] = None) -> SmartSpeaker:
    """Add another Echo Dot to an existing echo scenario.

    The new speaker shares the home's AVS cloud and DNS but gets its own
    IP, its own RNG streams, and its own guard coverage — the concurrent
    multi-speaker setup the loadtest drives.  Every microphone hears
    every utterance, so one spoken command puts N command windows in
    flight at once.  The caller is responsible for booting settle time
    (``scenario.settle()``) after adding speakers.
    """
    if scenario.avs_cloud is None or scenario.avs_record is None:
        raise WorkloadError("add_echo_speaker needs an echo-based scenario")
    index = len(scenario.extra_speakers) + 1
    name = name or f"echo-dot-{index + 1}"
    ip = ip or f"192.168.1.{EXTRA_SPEAKER_IP_BASE + index - 1}"
    env, network = scenario.env, scenario.network
    speaker = EchoDot(
        name,
        IPv4Address(ip),
        env,
        env.rng.stream(f"speaker.{name}"),
        dns_server=endpoint(DNS_IP, 53),
        avs_directory=scenario.avs_record.current,
        traffic_model=EchoTrafficModel(env.rng.stream(f"speaker.{name}.traffic")),
        misc_domains=[],
    )
    network.attach(speaker)
    avs = scenario.avs_cloud
    if isinstance(avs.on_execute, _ExecuteDispatch):
        avs.on_execute.speakers.append(speaker)
    else:
        avs.on_execute = _ExecuteDispatch([scenario.speaker, speaker])
    scenario.extra_speakers.append(speaker)
    if scenario.guard is not None:
        scenario.guard.protect(speaker, SpeakerProfile.ECHO)
    speaker.boot()
    return speaker


def add_second_speaker(scenario: Scenario, speaker_kind: str = "google") -> SmartSpeaker:
    """Add another speaker to an existing scenario, guarded by the same
    VoiceGuard instance.

    The paper's Section V notes VoiceGuard handles multiple speakers by
    keying on each speaker's unique IP; this helper builds that setup
    (e.g. an Echo Dot and a Google Home Mini in one home).
    """
    if speaker_kind != "google":
        raise WorkloadError("only a Google Home Mini can be added as second speaker")
    if scenario.google_cloud is not None:
        raise WorkloadError("scenario already has a Google speaker")
    holder = Scenario(
        name=scenario.name + "+google",
        env=scenario.env,
        network=scenario.network,
        dns_server=scenario.dns_server,
        guard=scenario.guard,
        speaker=None,  # type: ignore[arg-type]
        speaker_kind="google",
        corpus=scenario.corpus,
    )
    _build_google_side(holder)
    scenario.google_cloud = holder.google_cloud
    if scenario.guard is not None:
        scenario.guard.protect(holder.speaker, SpeakerProfile.GOOGLE)
    return holder.speaker


# ---------------------------------------------------------------------------
# Trace-classifier training (the pre-recorded traces of Section V-B2)
# ---------------------------------------------------------------------------

# The paper's training protocol: 15 Up, 15 Down, 25 Route-1 traces
# (5 random-movement walks in each of 5 rooms), 10 each of Routes 2-3.
TRAINING_REPS = {
    "up": 15,
    "down": 15,
    "route1": 5,
    "route1_kitchen": 5,
    "route1_restroom": 5,
    "route1_bedroom_a": 5,
    "route1_bedroom_b": 5,
    "route2": 10,
    "route3": 10,
}

# Route-1 variants all train one class: "in-room movement".
ROUTE_CLASS = {name: ("route1" if name.startswith("route1") else name)
               for name in TRAINING_REPS}


def _sensor_trigger_offset(testbed: Testbed, route_name: str) -> float:
    """When the stair motion sensor would fire during a route walk.

    Training traces must be aligned the same way live traces are: the
    recording starts when the walker enters the sensor's region, not
    when the walk starts.  Routes that never enter the region (the
    confusable Routes 1-3 are recorded while a *guest* trips the
    sensor) start at zero.
    """
    region = testbed.stair_region
    route = testbed.routes[route_name]
    if region is None:
        return 0.0
    x0, y0, x1, y1 = region
    steps = 80
    for i in range(steps + 1):
        t = route.duration * i / steps
        p = route.position_at(t)
        if x0 <= p.x <= x1 and y0 <= p.y <= y1:
            return t
    return 0.0


def collect_route_features(
    scenario: Scenario,
    device: MobileDevice,
    route_name: str,
    repetitions: int,
    step_log: Optional[List[float]] = None,
) -> List[TraceFeatures]:
    """Walk ``route_name`` ``repetitions`` times recording traces.

    Advances the simulator; run during setup.  Recording starts at the
    moment the stair sensor would trigger, and the walker stands still
    at the route's end until the 8-second trace completes — matching
    how live traces are captured.

    ``step_log``, if given, collects every ``run_for`` increment in
    order.  Replaying those exact floats from the same starting clock
    reproduces the clock's value chain bit-for-bit — which a single
    fused ``run_for(total)`` would not — so memoized training (see
    :func:`train_trace_classifier`) keeps later event timestamps
    byte-identical to a memo-cold build.
    """
    env = scenario.env
    route = scenario.env.testbed.routes[route_name]
    person = device.carrier
    base_offset = _sensor_trigger_offset(scenario.env.testbed, route_name)
    jitter_rng = env.rng.stream(f"training.trigger.{route_name}")
    features: List[TraceFeatures] = []
    return_point = person.position
    for _ in range(repetitions):
        done: List[TraceFeatures] = []

        def on_trace(samples: list) -> None:
            from repro.analysis.traces import RssiTrace

            trace = RssiTrace.from_samples(samples, label=route_name)
            done.append(TraceFeatures.from_fit(trace.fit()))

        person.follow(route)
        # The live sensor polls every 0.25 s, so live traces start up
        # to a poll period after region entry; train the same way.
        trigger_offset = base_offset + float(jitter_rng.uniform(0.0, 0.3))
        tail = route.duration - trigger_offset + 9.5
        if step_log is not None:
            step_log.append(trigger_offset)
            step_log.append(tail)
        env.sim.run_for(trigger_offset)
        device.record_trace(env.speaker_beacon, on_trace)
        env.sim.run_for(tail)
        if not done:
            raise WorkloadError(f"trace recording for {route_name!r} never completed")
        features.append(done[0])
    person.teleport(return_point)
    return features


# Memoized training collections, keyed like the calibration memo (see
# repro.core.threshold): the walks are deterministic per world bucket,
# so repeat builds replay the recorded features — refitting the (cheap,
# pure) classifier — while advancing the sim clock through the exact
# recorded ``run_for`` step sequence (bit-for-bit clock parity).
_TRAINING_MEMO: Dict[tuple, Tuple[Dict[str, Tuple[TraceFeatures, ...]],
                                  Tuple[float, ...]]] = {}


def clear_training_memo() -> None:
    """Drop memoized trace-classifier training (tests / cold benchmarks)."""
    _TRAINING_MEMO.clear()


def train_trace_classifier(
    scenario: Scenario,
    device: Optional[MobileDevice] = None,
    repetitions: Optional[Dict[str, int]] = None,
    memo_bucket: Optional[tuple] = None,
) -> TraceClassifier:
    """Collect the paper's training traces and fit the classifier.

    The paper pre-records 15 Up, 15 Down, 25 Route-1, 10 Route-2 and
    10 Route-3 traces per (device, speaker, location) case.
    """
    device = device or scenario.devices[0]
    reps = dict(TRAINING_REPS)
    if repetitions:
        reps.update(repetitions)
    memo_key = None
    if memo_bucket is not None:
        memo_key = (memo_bucket, device.name, device.kind,
                    tuple(sorted(reps.items())))
        hit = _TRAINING_MEMO.get(memo_key)
        if hit is not None:
            training_stored, steps = hit
            for step in steps:
                scenario.env.sim.run_for(step)
            classifier = TraceClassifier()
            classifier.fit({label: list(features)
                            for label, features in training_stored.items()})
            return classifier
    step_log: List[float] = []
    training: Dict[str, List[TraceFeatures]] = {}
    for route_name, count in reps.items():
        if route_name not in scenario.env.testbed.routes:
            continue
        label = ROUTE_CLASS.get(route_name, route_name)
        features = collect_route_features(scenario, device, route_name, count,
                                          step_log=step_log)
        training.setdefault(label, []).extend(features)
    if memo_key is not None:
        _TRAINING_MEMO[memo_key] = (
            {label: tuple(features) for label, features in training.items()},
            tuple(step_log),
        )
    classifier = TraceClassifier()
    classifier.fit(training)
    return classifier
