"""Large-scale remote attack campaigns (paper Section III-B).

The remote attacker "embeds malicious commands in videos/audios that
are published on popular media streaming platforms for large-scale
attacks": one payload, many homes.  This experiment simulates a fleet
of independent VoiceGuard-protected homes (different seeds, different
resident behaviour), plays the same campaign through each home's
compromised playback device, and measures the campaign's success rate
across the fleet — alongside the rate in unprotected homes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.reporting import render_table
from repro.attacks.remote import CompromisedPlaybackAttack
from repro.audio.speech import SPEECH_WORDS_PER_SECOND
from repro.experiments.parallel import ExperimentEngine, ExperimentTask
from repro.experiments.scenarios import build_scenario

CAMPAIGN_PAYLOADS = (
    "unlock the front door right now",
    "disarm the security system please",
    "open the garage door now please",
    "order a gift card for me today",
)


@dataclass
class HomeOutcome:
    """One home's exposure to the campaign."""

    seed: int
    protected: bool
    owner_home: bool
    payloads_played: int
    payloads_executed: int


@dataclass
class CampaignResult:
    homes: List[HomeOutcome] = field(default_factory=list)

    def executed_fraction(self, protected: bool) -> float:
        pool = [h for h in self.homes if h.protected == protected]
        played = sum(h.payloads_played for h in pool)
        executed = sum(h.payloads_executed for h in pool)
        return executed / played if played else float("nan")

    def compromised_homes(self, protected: bool) -> int:
        return sum(
            1 for h in self.homes
            if h.protected == protected and h.payloads_executed > 0
        )

    def render(self) -> str:
        """Render as paper-style text."""
        rows = []
        for protected in (False, True):
            pool = [h for h in self.homes if h.protected == protected]
            rows.append([
                "VoiceGuard" if protected else "unprotected",
                len(pool),
                self.compromised_homes(protected),
                f"{self.executed_fraction(protected):.0%}",
            ])
        return render_table(
            "Media-embedded campaign across a fleet of homes "
            f"({len(CAMPAIGN_PAYLOADS)} payloads per home)",
            ["fleet", "homes", "homes compromised", "payloads executed"],
            rows,
        )


def _run_home(seed: int, protected: bool, owner_home: bool) -> HomeOutcome:
    scenario = build_scenario(
        "house", "echo", deployment=0, seed=seed,
        owner_count=1, with_floor_tracking=False,
        with_guard=protected,
    )
    env = scenario.env
    owner = scenario.owners[0]
    if owner_home:
        # Home but in another room — the realistic campaign victim is
        # not staring at the speaker.
        owner.teleport(env.testbed.device_point(33).offset(dz=-1.0))
    else:
        owner.teleport(env.testbed.device_point(75).offset(dz=-1.0))  # upstairs/out
    env.sim.run_for(2.0)

    tv = CompromisedPlaybackAttack(
        env, env.rng.stream("campaign"),
        victim=owner.voiceprint,
        device_position=env.speaker_beacon.position.offset(dx=1.8, dy=0.5),
    )
    played = 0
    for payload in CAMPAIGN_PAYLOADS:
        duration = len(payload.split()) / SPEECH_WORDS_PER_SECOND + 0.8
        result = tv.launch_from_device(payload, duration)
        if result.heard_by_speaker:
            played += 1
        env.sim.run_for(duration + 18.0)

    records = scenario.speaker.settle_all()
    executed = sum(1 for r in records if r.is_attack and r.executed_at is not None)
    return HomeOutcome(
        seed=seed,
        protected=protected,
        owner_home=owner_home,
        payloads_played=played,
        payloads_executed=executed,
    )


def run_campaign(
    homes: int = 6,
    seed: int = 200,
    workers: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    progress=None,
) -> CampaignResult:
    """Run the campaign against ``homes`` protected and ``homes``
    unprotected households.

    Every home is an independent simulation (its own seed and resident
    behaviour), so ``workers`` fans the fleet out over a process pool
    without changing any outcome.
    """
    tasks = []
    for index in range(homes):
        owner_home = index % 2 == 0
        for protected in (False, True):
            tasks.append(ExperimentTask(
                fn=_run_home,
                args=(seed + index,),
                kwargs=dict(protected=protected, owner_home=owner_home),
                label=f"campaign/home{index}/"
                      f"{'guarded' if protected else 'unprotected'}",
            ))
    engine = ExperimentEngine(workers=workers, use_cache=use_cache,
                              cache_dir=cache_dir, progress=progress)
    return CampaignResult(homes=engine.run(tasks))
