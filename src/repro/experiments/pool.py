"""Warm-start scenario pool for full-fidelity fleet simulation.

``--fidelity full`` simulates every home at packet level.  Building one
wired world (:func:`~repro.experiments.scenarios.build_scenario`) costs
two orders of magnitude more than *running* a home's seven-day command
workload through it: threshold-calibration walks, speaker boot/settle
traffic, and — on the house testbed — ninety-odd trace-classifier
training walks dominate.  Rebuilding that world from scratch per home
is what kept full fidelity off the fleet path.

This module amortizes the build with a **snapshot/reset protocol**:

1. **One template per world bucket.**  Homes synthesized by
   :mod:`repro.experiments.synthesis` quantize into a small set of
   ``(testbed, deployment, plan_scale, owner_count, device_kind)``
   buckets.  The pool builds one fully wired scenario per bucket from a
   bucket-derived seed, with memoized calibration and training
   (``memo_bucket``) so even templates amortize across processes of the
   same run, and with an unarmed fault injector wired through every
   component so per-home fault plans can be armed later.

2. **Deep-copy restore with shared immutables.**  ``acquire(spec)``
   deep-copies the template with a pre-seeded memo that *shares* the
   heavyweight value-transparent objects (propagation model + caches,
   testbed geometry, command corpus, fitted trace classifier) and
   rebinds everything stateful — simulator, event queue, hosts, TCP
   stacks, RNG generators — into the copy.  Every persistent callback
   in the substrate is a bound method, a ``functools.partial`` over a
   bound method, or a callable object precisely so this rebinding works
   (``copy.deepcopy`` treats plain closures as atoms that would keep
   pointing into the template's graph; :func:`snapshot_hazards` audits
   for regressions).

3. **Rehome.**  The copy is re-keyed to the target home: module-global
   id counters reset to their deterministic post-build values, the RNG
   hub reseeds every stream in place from the home's derived seed (see
   :meth:`repro.sim.random.RngHub.reseed` for why memo-warm and
   memo-cold builds are indistinguishable afterwards), and the fault
   injector re-arms with the home's plan.

The contract — enforced by tests and asserted before every timed
benchmark cell — is that a pooled-and-rehomed home produces **byte
identical** guard event streams to a freshly built home rehomed the
same way (:func:`build_home_cold`).
"""

from __future__ import annotations

import copy
import types
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.audio.voiceprint import reset_utterance_ids
from repro.core.config import VoiceGuardConfig
from repro.experiments.parallel import derive_seed
from repro.experiments.scenarios import Scenario, build_scenario
from repro.experiments.synthesis import HomeSpec, fleet_world
from repro.faults.plan import FaultPlan
from repro.net.packet import peek_packet_number, reset_packet_numbers
from repro.speakers.base import reset_interaction_ids

# (testbed, deployment, plan_scale, owner_count, device_kind): the
# fields of a HomeSpec that select *which world gets built*; everything
# else about a home is applied per copy by ``rehome``.
PoolKey = Tuple[str, int, float, int, str]


def pool_key(spec: HomeSpec) -> PoolKey:
    """The world-bucket key a spec's home belongs to."""
    return (spec.testbed, int(spec.deployment), float(spec.plan_scale),
            int(spec.owner_count), spec.device_kind)


def template_seed(key: PoolKey) -> int:
    """The bucket-derived seed a template world is built from.

    Deliberately *not* a per-home seed: every home in a bucket restores
    from the same template, and the cold path builds from the same seed
    so pooled and cold homes are identical by construction.  Per-home
    randomness enters only through ``rehome``'s reseed.
    """
    testbed, deployment, plan_scale, owner_count, device_kind = key
    return derive_seed(0, "fleet.pool", testbed, deployment,
                       f"{plan_scale:.6f}", owner_count, device_kind)


def fleet_guard_config() -> VoiceGuardConfig:
    """The retry policy the fleet's full-fidelity guard runs (matching
    the reduced-order model's constants; see repro.experiments.fleet)."""
    from repro.experiments.fleet import PUSH_ATTEMPTS, RETRY_BASE, RETRY_CAP

    return VoiceGuardConfig(push_retries=PUSH_ATTEMPTS - 1,
                            retry_base=RETRY_BASE, retry_cap=RETRY_CAP)


def home_fault_plan(spec: HomeSpec) -> Optional[FaultPlan]:
    """The per-home fault plan (same derivation both fidelities use)."""
    if spec.push_loss <= 0.0:
        return None
    return FaultPlan(
        seed=derive_seed(spec.seed, "home.faults"),
        push_loss=spec.push_loss,
        report_loss=0.5 * spec.push_loss,
    )


def _build_bucket_scenario(key: PoolKey, config: Optional[VoiceGuardConfig],
                           memo_bucket: Optional[tuple]) -> Scenario:
    """One wired world for ``key``, built from the bucket seed.

    The scaled testbed comes from the fleet world cache — one geometry
    build + validation per bucket per process, shared with the fast
    fidelity — instead of a per-call ``scale_testbed``.
    """
    testbed_name, deployment, plan_scale, owner_count, device_kind = key
    world = fleet_world(testbed_name, deployment, plan_scale)
    return build_scenario(
        testbed_name,
        "echo",
        deployment=deployment,
        seed=template_seed(key),
        owner_count=owner_count,
        device_kind=device_kind,
        config=config if config is not None else fleet_guard_config(),
        fault_plan=None,
        testbed=world.testbed,
        memo_bucket=memo_bucket,
        with_fault_injector=True,
    )


def _shared_immutables(scenario: Scenario) -> Tuple[object, ...]:
    """Objects every home in a bucket may share rather than copy.

    All are value-transparent under the simulation's semantics: the
    propagation model's memo caches are pure functions of positions,
    the testbed/plan geometry is never mutated after validation, the
    command corpus is read-only, and the trace classifier is a fitted
    constant.  Sharing them cuts the per-home copy from the full world
    graph to just the stateful simulation layer.
    """
    shared: List[object] = [
        scenario.env.model,
        scenario.env.testbed,
        scenario.env.testbed.plan,
        scenario.corpus,
    ]
    if scenario.trace_classifier is not None:
        shared.append(scenario.trace_classifier)
    return tuple(shared)


def rehome(scenario: Scenario, spec: HomeSpec, packet_mark: int) -> None:
    """Re-key a just-built or just-restored world to one home.

    Applied identically on the pooled path (after the template copy)
    and the cold path (after a fresh build), which is what makes the
    two byte-identical:

    * module-global id counters are normalized — packet numbering to
      its deterministic post-build value, interaction/utterance ids to
      1 (world construction consumes neither), so ids are independent
      of process history and of how many homes ran before this one;
    * the RNG hub reseeds every stream in place from the home's seed;
    * the environment's (always present, possibly unarmed) fault
      injector re-arms with the home's plan.
    """
    reset_packet_numbers(packet_mark)
    reset_interaction_ids(1)
    reset_utterance_ids(1)
    scenario.env.rng.reseed(derive_seed(spec.seed, "fleet.rehome"))
    if scenario.env.faults is not None:
        scenario.env.faults.rearm(home_fault_plan(spec))


@dataclass
class _Template:
    """A pristine bucket world plus its restore bookkeeping."""

    scenario: Scenario
    packet_mark: int  # post-build packet counter (deterministic per bucket)
    shared: Tuple[object, ...]


class ScenarioPool:
    """Per-process cache of bucket templates with snapshot restore.

    ``acquire(spec)`` returns a fully wired scenario for ``spec``'s
    home, building the bucket's template on first touch and restoring
    from it afterwards.  The returned scenario is private to the
    caller; the template is never run and never mutated.
    """

    def __init__(self, config: Optional[VoiceGuardConfig] = None,
                 use_memos: bool = True) -> None:
        self.config = config
        self.use_memos = use_memos
        self._templates: Dict[PoolKey, _Template] = {}
        self.template_builds = 0
        self.restores = 0

    def template(self, key: PoolKey) -> _Template:
        """The bucket's template, building it on first use."""
        entry = self._templates.get(key)
        if entry is None:
            memo_bucket = (("fleet.pool",) + key) if self.use_memos else None
            scenario = _build_bucket_scenario(key, self.config, memo_bucket)
            entry = _Template(
                scenario=scenario,
                packet_mark=peek_packet_number(),
                shared=_shared_immutables(scenario),
            )
            self._templates[key] = entry
            self.template_builds += 1
        return entry

    def acquire(self, spec: HomeSpec) -> Scenario:
        """A private, rehomed world for ``spec`` (snapshot restore)."""
        entry = self.template(pool_key(spec))
        memo: Dict[int, object] = {id(obj): obj for obj in entry.shared}
        scenario = copy.deepcopy(entry.scenario, memo)
        rehome(scenario, spec, entry.packet_mark)
        self.restores += 1
        return scenario

    def clear(self) -> None:
        """Drop cached templates (tests / memory pressure)."""
        self._templates.clear()


def build_home_cold(spec: HomeSpec,
                    config: Optional[VoiceGuardConfig] = None) -> Scenario:
    """The no-pool baseline: build ``spec``'s world from scratch.

    Same bucket seed, same rehome — so the result is byte-identical to
    ``ScenarioPool.acquire(spec)`` — but with calibration/training
    memos bypassed and the full build re-simulated per call.  This is
    the equality oracle's reference side and the benchmark's baseline.
    """
    scenario = _build_bucket_scenario(pool_key(spec), config, memo_bucket=None)
    rehome(scenario, spec, peek_packet_number())
    return scenario


# ---------------------------------------------------------------------------
# Snapshot-safety audit
# ---------------------------------------------------------------------------

_ATOMIC_TYPES = (str, bytes, int, float, bool, complex, type(None), type)


def _hazardous_function(fn: object) -> Optional[types.FunctionType]:
    """The plain-function hazard inside ``fn``, if any.

    ``copy.deepcopy`` rebinds bound methods and ``functools.partial``
    objects into the copied graph, but plain functions are atoms: a
    closure (or a lambda capturing anything) stored as persistent state
    would keep referencing the *template's* objects after a restore.
    Module-level functions with no closure are stateless and safe.
    """
    if isinstance(fn, partial):
        for piece in (fn.func, *fn.args, *fn.keywords.values()):
            found = _hazardous_function(piece)
            if found is not None:
                return found
        return None
    if isinstance(fn, types.MethodType):
        return None
    if isinstance(fn, types.FunctionType) and fn.__closure__:
        return fn
    return None


def snapshot_hazards(scenario: Scenario, max_objects: int = 200_000) -> List[str]:
    """Closure-valued persistent state reachable from ``scenario``.

    Walks the scenario's object graph (instance attributes, containers,
    and pending event-queue entries) and reports every stored plain
    function that captures a closure — exactly the category of callback
    ``copy.deepcopy`` cannot rebind.  A template eligible for pooling
    must report none; the pool's tests pin that down so a future
    `lambda`-wired callback fails loudly instead of silently corrupting
    restored homes.
    """
    hazards: List[str] = []
    seen: set = set()
    shared = {id(obj) for obj in _shared_immutables(scenario)}
    stack: List[Tuple[object, str]] = [(scenario, "scenario")]
    budget = max_objects

    def visit(value: object, path: str) -> None:
        if isinstance(value, _ATOMIC_TYPES):
            return
        found = _hazardous_function(value)
        if found is not None:
            hazards.append(f"{path}: {found.__module__}.{found.__qualname__}")
            return
        if id(value) in seen or id(value) in shared:
            return
        seen.add(id(value))
        stack.append((value, path))

    while stack and budget > 0:
        obj, path = stack.pop()
        budget -= 1
        if isinstance(obj, dict):
            for key, value in obj.items():
                visit(value, f"{path}[{key!r}]")
        elif isinstance(obj, (list, tuple, set, frozenset)):
            for index, value in enumerate(obj):
                visit(value, f"{path}[{index}]")
        else:
            state = getattr(obj, "__dict__", None)
            if state:
                for name, value in state.items():
                    visit(value, f"{path}.{name}")
            for slot_name in getattr(type(obj), "__slots__", ()):
                value = getattr(obj, slot_name, None)
                visit(value, f"{path}.{slot_name}")
    return hazards
