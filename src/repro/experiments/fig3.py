"""Figure 3: traffic spikes during one user-Echo interaction.

The paper's example: the user asks for tonight's NBA schedule and the
reply contains three game segments, so the Echo emits the command-phase
spikes (① activation, ② audio upload) and three response-phase spikes
(③④⑤).  The naive method treats every post-idle spike as a command
and needlessly holds ③④⑤; the signature method releases them within a
few packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.reporting import render_table
from repro.audio.speech import full_utterance_duration
from repro.baselines.naive_spike import NaiveSpikeDetector
from repro.core.events import TrafficClass
from repro.experiments.scenarios import build_scenario
from repro.net.capture import PacketCapture
from repro.net.packet import Packet


@dataclass
class Spike:
    """One post-idle burst of client app-data packets."""

    start: float
    end: float
    lengths: List[int]

    @property
    def total_bytes(self) -> int:
        return sum(self.lengths)

    @property
    def packet_count(self) -> int:
        return len(self.lengths)


@dataclass
class Fig3Result:
    spikes: List[Spike]
    naive_holds: int
    naive_wrong_holds: int
    guard_command_windows: int
    guard_response_windows: int
    guard_response_hold_times: List[float] = field(default_factory=list)

    def render(self) -> str:
        """Render as paper-style text."""
        rows = []
        for index, spike in enumerate(self.spikes):
            label = "command phase" if index == 0 else f"response spike {index}"
            rows.append([
                f"#{index + 1}",
                f"{spike.start:.2f}s",
                spike.packet_count,
                spike.total_bytes,
                label,
            ])
        table = render_table(
            "Figure 3: spikes in one Echo interaction (3-segment response)",
            ["spike", "start", "packets", "bytes", "ground truth"],
            rows,
        )
        worst = max(self.guard_response_hold_times) if self.guard_response_hold_times else 0.0
        summary = (
            f"\nnaive method: holds {self.naive_holds} spikes "
            f"({self.naive_wrong_holds} needlessly -> seconds of delay each)\n"
            f"VoiceGuard: {self.guard_command_windows} command window(s) held for decision; "
            f"{self.guard_response_windows} response window(s) released after <=7 packets "
            f"(worst release delay {worst * 1000:.0f} ms)"
        )
        return table + summary


def group_spikes(events: List[tuple], idle_gap: float = 2.5) -> List[Spike]:
    """Group (time, length) points into post-idle spikes."""
    spikes: List[Spike] = []
    current: Optional[Spike] = None
    for time, length in events:
        if current is None or time - current.end > idle_gap:
            current = Spike(start=time, end=time, lengths=[length])
            spikes.append(current)
        else:
            current.end = time
            current.lengths.append(length)
    return spikes


def run_fig3(seed: int = 5) -> Fig3Result:
    """Reproduce Figure 3 with a forced three-segment response."""
    scenario = build_scenario(
        "house", "echo", deployment=0, seed=seed,
        owner_count=1, with_floor_tracking=False,
    )
    env = scenario.env
    speaker = scenario.speaker
    speaker.traffic.forced_response_segments = [8, 9, 8]
    owner = scenario.owners[0]
    owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))

    capture = PacketCapture()

    def keep(packet: Packet) -> bool:
        return (
            packet.src.ip == speaker.ip
            and packet.is_application_data
            and packet.payload_len != 41
        )

    capture.attach(scenario.network, keep)
    start_time = env.sim.now
    windows_before = len(scenario.guard.log.events)

    command = scenario.corpus.sample(env.rng.stream("fig3"))
    duration = full_utterance_duration(command, env.rng.stream("fig3"))
    utterance = owner.speak(command.text, duration)
    env.play_utterance(utterance, owner.device_position())
    env.sim.run_for(duration + 35.0)

    # Each client record is observed twice (speaker->guard and
    # guard->cloud legs); keep the first (downstream) observation of
    # each TLS record sequence number.
    seen = set()
    events = []
    for record in sorted(capture.records, key=lambda r: r.time):
        key = record.tls_record_seq
        if key is not None and key in seen:
            continue
        seen.add(key)
        events.append((record.time - start_time, record.payload_len))
    events.sort()
    spikes = group_spikes(events)

    naive = NaiveSpikeDetector()
    verdicts = naive.evaluate_interaction([s.lengths for s in spikes])
    naive_holds = sum(1 for v in verdicts if v.would_hold)

    guard_events = scenario.guard.log.events[windows_before:]
    commands = [e for e in guard_events if e.classification is TrafficClass.COMMAND]
    responses = [e for e in guard_events if e.classification is TrafficClass.RESPONSE]
    return Fig3Result(
        spikes=spikes,
        naive_holds=naive_holds,
        naive_wrong_holds=max(naive_holds - 1, 0),
        guard_command_windows=len(commands),
        guard_response_windows=len(responses),
        guard_response_hold_times=[e.hold_duration for e in responses if e.hold_duration],
    )
