"""``repro profile`` — cProfile a full scenario run.

This is the tool the kernel optimization work was driven by: build a
scenario, run the standard workload under :mod:`cProfile`, and print
the hottest functions.  ``--legacy`` profiles the pre-optimization
kernel (via :mod:`repro.sim.compat`) so before/after profiles can be
compared on the same checkout; ``--seven-day`` stretches the idle gaps
to the paper's real timeline, which is where timer churn and idle
polling dominate.

The profile and the benchmark deliberately share their workload shape
(:data:`repro.experiments.bench_sim.SEVEN_DAY_GAP`,
``FULL_COUNTS``/``SMOKE_COUNTS``): what you profile is what
``BENCH_sim.json`` measures.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Dict, Optional, Tuple

from repro.experiments.bench_sim import (
    FULL_COUNTS,
    SEVEN_DAY_GAP,
    SMOKE_COUNTS,
    guard_event_stream,
)
from repro.sim import compat

SORT_KEYS = ("cumulative", "tottime", "calls")


def run_profile(
    testbed_name: str = "house",
    speaker_kind: str = "echo",
    seed: int = 11,
    counts: Optional[Tuple[int, int]] = None,
    seven_day: bool = False,
    legacy: bool = False,
    top: int = 30,
    sort: str = "cumulative",
) -> Dict:
    """Profile one workload run; returns stats text plus run facts.

    Only the workload phase is profiled — scenario construction is
    excluded, matching what ``bench-sim`` times.
    """
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, got {sort!r}")
    from repro.experiments.scenarios import build_scenario
    from repro.experiments.workload import SevenDayWorkload

    legit, malicious = SMOKE_COUNTS if counts is None else counts
    gap = SEVEN_DAY_GAP if seven_day else None
    compat.use_legacy_kernel(legacy)
    try:
        scenario = build_scenario(testbed_name, speaker_kind, deployment=0,
                                  seed=seed, owner_count=2, tracing=False)
        workload = SevenDayWorkload(scenario, episode_gap=gap)
        profiler = cProfile.Profile()
        profiler.enable()
        workload.run(legit, malicious)
        scenario.speaker.settle_all()
        profiler.disable()
    finally:
        compat.use_legacy_kernel(False)

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort)
    stats.print_stats(top)
    total_calls = stats.total_calls
    total_time = stats.total_tt
    return {
        "kernel": "legacy" if legacy else "current",
        "testbed": testbed_name,
        "speaker": speaker_kind,
        "seed": seed,
        "legit_count": legit,
        "malicious_count": malicious,
        "seven_day": seven_day,
        "sim_seconds": scenario.sim.now,
        "command_events": len(guard_event_stream(scenario.guard)),
        "total_calls": total_calls,
        "total_time_s": total_time,
        "stats_text": buffer.getvalue(),
        "stats": stats,
    }


def render_profile(result: Dict) -> str:
    """Header plus the pstats table."""
    days = result["sim_seconds"] / 86400.0
    lines = [
        f"Profile — {result['testbed']}/{result['speaker']}, "
        f"{result['legit_count']}+{result['malicious_count']} commands, "
        f"seed {result['seed']}, kernel={result['kernel']}"
        + (", seven-day timeline" if result["seven_day"] else ""),
        f"  simulated {result['sim_seconds']:.1f} s ({days:.2f} days), "
        f"{result['command_events']} command events, "
        f"{result['total_calls']:,} calls in {result['total_time_s']:.3f} s",
        "",
        result["stats_text"].rstrip(),
    ]
    return "\n".join(lines)
