"""Ablations and defense comparisons (DESIGN.md section 5).

* ``run_defense_matrix`` — VoiceGuard vs the voice-match baseline vs no
  defense, against the full attack gallery (replay, synthesis,
  inaudible, laser, remote playback, live guest) plus live owner
  commands: the paper's core security argument in one table.
* ``run_floor_ablation`` — floor tracking on vs off in the house: off
  reproduces the above-speaker leak as recall loss.
* ``run_signature_ablation`` — AVS tracking with vs without connection
  signatures: without them, silent IP changes orphan the guard.
* ``run_firewall_comparison`` — transparent proxy vs packet-dropping
  firewall: what "blocking" costs legitimate users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.reporting import render_table
from repro.attacks.inaudible import InaudibleAttack, LaserAttack
from repro.attacks.remote import CompromisedPlaybackAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.synthesis import SynthesisAttack
from repro.audio.speech import full_utterance_duration
from repro.audio.verification import VoiceMatchVerifier
from repro.baselines.firewall import FirewallTap
from repro.core.decision import DecisionContext, RssiDecisionMethod
from repro.core.registry import DeviceRegistry
from repro.experiments.parallel import ExperimentEngine, ExperimentTask
from repro.experiments.runner import run_rssi_experiment
from repro.experiments.scenarios import Scenario, build_scenario
from repro.net.addresses import IPv4Address

ATTACK_KINDS = ("replay", "synthesis", "inaudible", "laser", "remote_playback", "live_guest")


@dataclass
class DefenseMatrixResult:
    """blocked / total per (defense, attack-or-legit source)."""

    counts: Dict[str, Dict[str, List[int]]] = field(default_factory=dict)
    # counts[defense][source] = [blocked, total]

    def record(self, defense: str, source: str, blocked: bool) -> None:
        cell = self.counts.setdefault(defense, {}).setdefault(source, [0, 0])
        cell[1] += 1
        if blocked:
            cell[0] += 1

    def absorb(self, other: "DefenseMatrixResult") -> None:
        """Fold another (disjoint or overlapping) matrix's counts in."""
        for defense, sources in other.counts.items():
            for source, (blocked, total) in sources.items():
                cell = self.counts.setdefault(defense, {}).setdefault(source, [0, 0])
                cell[0] += blocked
                cell[1] += total

    def block_rate(self, defense: str, source: str) -> float:
        blocked, total = self.counts.get(defense, {}).get(source, (0, 0))
        return blocked / total if total else float("nan")

    def render(self) -> str:
        """Render as paper-style text."""
        defenses = sorted(self.counts)
        sources = list(ATTACK_KINDS) + ["live_owner"]
        rows = []
        for source in sources:
            row = [source]
            for defense in defenses:
                blocked, total = self.counts.get(defense, {}).get(source, (0, 0))
                row.append(f"{blocked}/{total}" if total else "-")
            rows.append(row)
        return render_table(
            "Defense comparison: blocked / issued per attack class "
            "(live_owner should NOT be blocked)",
            ["source", *defenses],
            rows,
        )


def _make_attacks(scenario: Scenario, rng: np.random.Generator) -> Dict[str, object]:
    env = scenario.env
    victim = scenario.owners[0].voiceprint
    tv_position = env.speaker_beacon.position.offset(dx=1.5, dy=0.8)
    return {
        "replay": ReplayAttack(env, rng, victim),
        "synthesis": SynthesisAttack(env, rng, victim),
        "inaudible": InaudibleAttack(env, rng, victim),
        "laser": LaserAttack(env, rng, victim),
        "remote_playback": CompromisedPlaybackAttack(env, rng, victim, tv_position),
    }


def _run_defense_arm(
    defense: str,
    seed: int,
    trials_per_attack: int,
    legit_trials: int,
) -> DefenseMatrixResult:
    """One defense's arm of the matrix: its own scenario and rng."""
    result = DefenseMatrixResult()
    scenario = build_scenario(
        "house", "echo", deployment=0, seed=seed,
        owner_count=1, with_floor_tracking=False,
        with_guard=(defense == "voiceguard"),
    )
    env = scenario.env
    owner = scenario.owners[0]
    rng = env.rng.stream(f"ablation.{defense}")
    if defense == "voice_match":
        verifier = VoiceMatchVerifier()
        verifier.enroll(owner.voiceprint, rng)
        scenario.speaker.enable_voice_match(verifier)
    attacks = _make_attacks(scenario, rng)
    attack_spot = env.testbed.device_point(3).offset(dz=0.2)
    away_spot = env.testbed.device_point(30).offset(dz=-1.0)
    near_spot = env.testbed.device_point(5).offset(dz=-1.0)

    # Attacks: owner away from the speaker room.
    for kind in ATTACK_KINDS:
        for _ in range(trials_per_attack):
            owner.teleport(away_spot)
            env.sim.run_for(2.0)
            command = scenario.corpus.sample(rng)
            duration = full_utterance_duration(command, rng)
            before = set(scenario.speaker.interactions)
            if kind == "live_guest":
                guest_voice = env.rng.stream("guest.voice")
                from repro.audio.voiceprint import UtteranceSource, VoicePrint, live_utterance
                guest = VoicePrint.create("guest", guest_voice)
                utterance = live_utterance(
                    command.text, duration, guest, rng,
                    source=UtteranceSource.LIVE_GUEST,
                )
                env.play_utterance(utterance, attack_spot)
            else:
                attacks[kind].launch(command.text, duration, attack_spot)
            env.sim.run_for(duration + 16.0)
            new = [scenario.speaker.interactions[i]
                   for i in scenario.speaker.interactions if i not in before]
            executed = any(r.executed_at is not None for r in new)
            result.record(defense, kind, blocked=not executed)

    # Legitimate commands: owner near the speaker.
    for _ in range(legit_trials):
        owner.teleport(near_spot)
        env.sim.run_for(2.0)
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        before = set(scenario.speaker.interactions)
        utterance = owner.speak(command.text, duration)
        env.play_utterance(utterance, owner.device_position())
        env.sim.run_for(duration + 16.0)
        new = [scenario.speaker.interactions[i]
               for i in scenario.speaker.interactions if i not in before]
        executed = any(r.executed_at is not None for r in new)
        result.record(defense, "live_owner", blocked=not executed)
    return result


def run_defense_matrix(
    seed: int = 17,
    trials_per_attack: int = 8,
    legit_trials: int = 8,
    workers: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    progress=None,
) -> DefenseMatrixResult:
    """VoiceGuard vs voice-match vs no defense, full attack gallery.

    The three defense arms are independent scenarios and fan out over
    the experiment engine; their counts merge into one matrix.
    """
    tasks = [
        ExperimentTask(
            fn=_run_defense_arm,
            args=(defense, seed, trials_per_attack, legit_trials),
            label=f"defense/{defense}",
        )
        for defense in ("none", "voice_match", "voiceguard")
    ]
    engine = ExperimentEngine(workers=workers, use_cache=use_cache,
                              cache_dir=cache_dir, progress=progress)
    result = DefenseMatrixResult()
    for arm in engine.run(tasks):
        result.absorb(arm)
    return result


@dataclass
class FloorAblationResult:
    with_tracking: object  # RssiExperimentResult
    without_tracking: object

    def render(self) -> str:
        """Render as paper-style text."""
        rows = []
        for label, res in (("floor tracking ON", self.with_tracking),
                           ("floor tracking OFF", self.without_tracking)):
            rows.append([
                label,
                f"{res.malicious_correct}/{res.malicious_total}",
                f"{res.matrix.recall:.1%}",
                f"{res.matrix.accuracy:.1%}",
            ])
        return render_table(
            "Floor-tracking ablation (two-floor house): the above-speaker "
            "leak turns into missed attacks without it",
            ["configuration", "attacks blocked", "recall", "accuracy"],
            rows,
        )


def run_floor_ablation(
    seed: int = 19,
    legit: int = 50,
    malicious: int = 40,
    workers: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    progress=None,
) -> FloorAblationResult:
    common = dict(seed=seed, legit_count=legit, malicious_count=malicious)
    tasks = [
        ExperimentTask(fn=run_rssi_experiment, args=("house", "echo", 0),
                       kwargs=dict(common), label="floor/tracking-on"),
        ExperimentTask(fn=run_rssi_experiment, args=("house", "echo", 0),
                       kwargs=dict(common, with_floor_tracking=False),
                       label="floor/tracking-off"),
    ]
    engine = ExperimentEngine(workers=workers, use_cache=use_cache,
                              cache_dir=cache_dir, progress=progress)
    with_tracking, without = engine.run(tasks)
    return FloorAblationResult(with_tracking=with_tracking, without_tracking=without)


@dataclass
class SignatureAblationResult:
    reconnects: int
    silent_reconnects_tracked: int  # AVS re-identified without DNS
    commands_checked_with: int
    commands_checked_without: int
    commands_total: int

    def render(self) -> str:
        """Render as paper-style text."""
        return (
            "AVS-signature ablation: of "
            f"{self.commands_total} commands issued across {self.reconnects} reconnects, "
            f"{self.commands_checked_with} were recognized with signature tracking vs "
            f"{self.commands_checked_without} without (DNS-only loses the server after "
            "silent IP changes)"
        )


def _run_signature_arm(use_signature: bool, seed: int, commands: int) -> Dict[str, int]:
    """One arm (signatures on or off) of the AVS-signature ablation."""
    scenario = build_scenario(
        "house", "echo", deployment=0, seed=seed,
        owner_count=1, with_floor_tracking=False,
    )
    scenario.guard.recognition.use_signature_tracking = use_signature
    if not use_signature:
        # Forget what boot-time signature matching already learned.
        state = scenario.guard.recognition.speaker_state(scenario.speaker.ip)
        if state.avs_ip_source == "signature":
            state.avs_ip = None
    env = scenario.env
    owner = scenario.owners[0]
    owner.teleport(env.testbed.device_point(5).offset(dz=-1.0))
    rng = env.rng.stream("sig.ablation")
    reconnects = 0
    for index in range(commands):
        # Force a reconnect before each command by dropping the
        # speaker's live AVS connection (cloud-side churn).
        if scenario.speaker._conn is not None and index > 0:
            scenario.speaker._conn.abort("cloud-restart")
            reconnects += 1
            env.sim.run_for(8.0)
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        utterance = owner.speak(command.text, duration)
        env.play_utterance(utterance, owner.device_position())
        env.sim.run_for(duration + 16.0)
    checked = len([e for e in scenario.guard.log.commands() if e.verdict is not None])
    return {"checked": checked, "reconnects": reconnects}


def run_signature_ablation(
    seed: int = 21,
    commands: int = 25,
    workers: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    progress=None,
) -> SignatureAblationResult:
    """Measure guarded-command coverage with and without signatures.

    Between commands the AVS session is aborted so the Echo reconnects,
    half the time without a DNS query; DNS-only tracking then loses the
    AVS flow and commands pass unchecked.  The two arms are independent
    scenarios and fan out over the experiment engine (reconnects are
    reported from the signature arm, as before).
    """
    tasks = [
        ExperimentTask(fn=_run_signature_arm, args=(use_signature, seed, commands),
                       label=f"signature/{'on' if use_signature else 'off'}")
        for use_signature in (True, False)
    ]
    engine = ExperimentEngine(workers=workers, use_cache=use_cache,
                              cache_dir=cache_dir, progress=progress)
    with_sig, without_sig = engine.run(tasks)
    return SignatureAblationResult(
        reconnects=with_sig["reconnects"],
        silent_reconnects_tracked=with_sig["checked"],
        commands_checked_with=with_sig["checked"],
        commands_checked_without=without_sig["checked"],
        commands_total=commands,
    )


@dataclass
class FirewallComparisonResult:
    proxy_executed: int
    proxy_total: int
    proxy_mean_reply_delay: float
    firewall_executed: int
    firewall_total: int
    firewall_mean_reply_delay: float
    firewall_sessions_broken: int
    proxy_sessions_broken: int = 0

    def render(self) -> str:
        """Render as paper-style text."""
        rows = [
            ["VoiceGuard proxy", f"{self.proxy_executed}/{self.proxy_total}",
             f"{self.proxy_mean_reply_delay:.2f}s", self.proxy_sessions_broken],
            ["packet-dropping firewall", f"{self.firewall_executed}/{self.firewall_total}",
             f"{self.firewall_mean_reply_delay:.2f}s", self.firewall_sessions_broken],
        ]
        return render_table(
            "Hold-and-release vs firewall blocking (mixed workload, "
            "legitimate commands scored)",
            ["actuator", "legit commands executed", "mean cloud-reply delay",
             "sessions broken"],
            rows,
        )


def _run_proxy_arm(seed: int, commands: int) -> tuple:
    """VoiceGuard-proxy arm: (executed, mean delay, total, broken sessions)."""
    scenario = build_scenario(
        "house", "echo", deployment=0, seed=seed,
        owner_count=1, with_floor_tracking=False,
    )
    sessions_before = scenario.avs_cloud.stats.sessions_closed
    executed, mean_delay, total = _run_mixed_workload(scenario, commands, "fw.proxy")
    sessions_broken = scenario.avs_cloud.stats.sessions_closed - sessions_before
    return executed, mean_delay, total, sessions_broken


def _run_firewall_arm(seed: int, commands: int) -> tuple:
    """Packet-dropping-firewall arm: same tuple as :func:`_run_proxy_arm`."""
    scenario = build_scenario(
        "house", "echo", deployment=0, seed=seed,
        owner_count=1, with_floor_tracking=False, with_guard=False,
    )
    env = scenario.env
    registry = DeviceRegistry()
    threshold = scenario.calibrations[scenario.devices[0].name].threshold
    registry.register(scenario.devices[0], threshold)
    method = RssiDecisionMethod(
        env.sim, env.push, registry, env.speaker_beacon, timeout=5.0,
    )

    def decide(callback) -> None:
        context = DecisionContext(window_id=0, speaker_ip="", requested_at=env.sim.now)
        method.decide(context, lambda result: callback(result.legitimate))

    firewall = FirewallTap(
        "firewall", IPv4Address("192.168.1.60"), {scenario.speaker.ip}, decide
    )
    scenario.network.attach(firewall)
    scenario.network.install_tap(scenario.speaker.ip, firewall)
    sessions_before = scenario.avs_cloud.stats.sessions_closed
    executed, mean_delay, total = _run_mixed_workload(scenario, commands, "fw.fw")
    sessions_broken = scenario.avs_cloud.stats.sessions_closed - sessions_before
    return executed, mean_delay, total, sessions_broken


def run_firewall_comparison(
    seed: int = 23,
    commands: int = 20,
    workers: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    progress=None,
) -> FirewallComparisonResult:
    """Mixed-workload UX under the proxy vs under a firewall.

    Every fifth episode is a replay attack (both actuators block it);
    the interesting part is the *next* legitimate command, issued
    shortly after: the proxy's hold-and-discard leaves the session
    usable, while the firewall's block window and connection breakage
    make the user repeat themselves (the paper's Section I contrast).
    """
    tasks = [
        ExperimentTask(fn=_run_proxy_arm, args=(seed, commands),
                       label="firewall-comparison/proxy"),
        ExperimentTask(fn=_run_firewall_arm, args=(seed + 1, commands),
                       label="firewall-comparison/firewall"),
    ]
    engine = ExperimentEngine(workers=workers, use_cache=use_cache,
                              cache_dir=cache_dir, progress=progress)
    proxy_stats, firewall_stats = engine.run(tasks)

    return FirewallComparisonResult(
        proxy_executed=proxy_stats[0],
        proxy_total=proxy_stats[2],
        proxy_mean_reply_delay=proxy_stats[1],
        firewall_executed=firewall_stats[0],
        firewall_total=firewall_stats[2],
        firewall_mean_reply_delay=firewall_stats[1],
        firewall_sessions_broken=firewall_stats[3],
        proxy_sessions_broken=proxy_stats[3],
    )


def _run_mixed_workload(scenario: Scenario, commands: int, rng_name: str) -> tuple:
    """Legit commands with an attack every fifth episode; returns
    (legit executed, mean legit reply delay, legit total)."""
    env = scenario.env
    owner = scenario.owners[0]
    near = env.testbed.device_point(5).offset(dz=-1.0)
    away = env.testbed.device_point(30).offset(dz=-1.0)
    rng = env.rng.stream(rng_name)
    attack = ReplayAttack(env, env.rng.stream(rng_name + ".attacker"),
                          victim=owner.voiceprint)
    delays = []
    executed = 0
    legit_total = 0
    for index in range(commands):
        command = scenario.corpus.sample(rng)
        duration = full_utterance_duration(command, rng)
        if index % 5 == 4:
            # Attack episode: owner steps out, a replay plays nearby.
            owner.teleport(away)
            env.sim.run_for(2.0)
            attack.launch(command.text, duration, env.testbed.device_point(3))
            env.sim.run_for(duration + 8.0)
            continue
        owner.teleport(near)
        env.sim.run_for(2.0)
        legit_total += 1
        before = set(scenario.speaker.interactions)
        speech_end = env.sim.now + duration
        utterance = owner.speak(command.text, duration)
        env.play_utterance(utterance, owner.device_position())
        env.sim.run_for(duration + 20.0)
        new = [scenario.speaker.interactions[i]
               for i in scenario.speaker.interactions if i not in before]
        for record in new:
            if record.executed_at is not None:
                executed += 1
                delays.append(max(record.executed_at - speech_end, 0.0))
    mean_delay = float(np.mean(delays)) if delays else float("nan")
    return executed, mean_delay, legit_total
